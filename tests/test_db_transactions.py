"""Transaction tests: commit, rollback, trigger deferral, cache safety."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema, connect
from repro.errors import DatabaseError

from tests.conftest import build_notes_app
from repro.cache.autowebcache import AutoWebCache
from repro.cache.external import TriggerInvalidationBridge


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [Column("id", ColumnType.INT), Column("v", ColumnType.INT)],
            primary_key="id",
            indexes=["v"],
        )
    )
    database.update("INSERT INTO t (id, v) VALUES (1, 10)")
    database.update("INSERT INTO t (id, v) VALUES (2, 20)")
    return database


class TestBasics:
    def test_commit_keeps_changes(self, db):
        db.begin()
        db.update("INSERT INTO t (id, v) VALUES (3, 30)")
        db.update("UPDATE t SET v = 11 WHERE id = 1")
        db.commit()
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 3
        assert db.query("SELECT v FROM t WHERE id = 1").scalar() == 11

    def test_rollback_restores_everything(self, db):
        db.begin()
        db.update("INSERT INTO t (id, v) VALUES (3, 30)")
        db.update("UPDATE t SET v = 99 WHERE id = 1")
        db.update("DELETE FROM t WHERE id = 2")
        db.rollback()
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 2
        assert db.query("SELECT v FROM t WHERE id = 1").scalar() == 10
        assert db.query("SELECT v FROM t WHERE id = 2").scalar() == 20

    def test_rollback_restores_indexes(self, db):
        db.begin()
        db.update("UPDATE t SET v = 99 WHERE id = 1")
        db.rollback()
        # Both the secondary index and the pk index are intact.
        assert db.query("SELECT id FROM t WHERE v = 10").rows == [(1,)]
        assert db.query("SELECT id FROM t WHERE v = 99").rows == []
        assert db.query("SELECT v FROM t WHERE id = 1").scalar() == 10

    def test_rollback_restores_auto_increment(self, db):
        db.begin()
        result = db.execute("INSERT INTO t (v) VALUES (5)")
        first_id = result.last_insert_id
        db.rollback()
        result = db.execute("INSERT INTO t (v) VALUES (6)")
        assert result.last_insert_id == first_id  # id was reclaimed

    def test_reads_inside_transaction_see_own_writes(self, db):
        db.begin()
        db.update("UPDATE t SET v = 77 WHERE id = 1")
        assert db.query("SELECT v FROM t WHERE id = 1").scalar() == 77
        db.rollback()

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(DatabaseError):
            db.begin()
        db.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.commit()
        with pytest.raises(DatabaseError):
            db.rollback()

    def test_untouched_tables_not_snapshotted(self, db):
        db.create_table(
            TableSchema("u", [Column("id", ColumnType.INT)], primary_key="id")
        )
        db.begin()
        db.update("INSERT INTO t (id, v) VALUES (9, 90)")
        assert "u" not in db._transaction.snapshots
        db.rollback()

    def test_connection_level_api(self, db):
        connection = connect(db)
        connection.begin()
        assert connection.in_transaction
        statement = connection.create_statement()
        statement.execute_update("DELETE FROM t")
        connection.rollback()
        assert not connection.in_transaction
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 2


class TestTriggersAndTransactions:
    def test_trigger_events_deferred_until_commit(self, db):
        events = []
        db.triggers.on_any(events.append)
        db.begin()
        db.update("UPDATE t SET v = 1 WHERE id = 1")
        assert events == []  # not yet delivered
        db.commit()
        assert len(events) == 1

    def test_rolled_back_events_dropped(self, db):
        events = []
        db.triggers.on_any(events.append)
        db.begin()
        db.update("UPDATE t SET v = 1 WHERE id = 1")
        db.rollback()
        assert events == []

    def test_bridge_ignores_rolled_back_external_writes(self):
        """A rolled-back direct-DB transaction must not invalidate
        cached pages (the write never happened)."""
        db, container = build_notes_app()
        awc = AutoWebCache()
        TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.get("/view_topic", {"topic": "a"})
            db.begin()
            db.update("UPDATE notes SET body = ? WHERE id = ?", ("junk", 1))
            db.rollback()
            hits_before = awc.stats.hits
            page = container.get("/view_topic", {"topic": "a"})
            assert awc.stats.hits == hits_before + 1  # still cached
            assert "x" in page.body
        finally:
            awc.uninstall()

    def test_committed_external_transaction_invalidates(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.get("/view_topic", {"topic": "a"})
            db.begin()
            db.update("UPDATE notes SET body = ? WHERE id = ?", ("patched", 1))
            db.commit()
            page = container.get("/view_topic", {"topic": "a"})
            assert "patched" in page.body
        finally:
            awc.uninstall()
