"""Trace record/replay tests, including the full-application
consistency audit (the paper's central claim, end-to-end on RUBiS)."""

import random

from repro.apps.rubis import RubisDataset, build_rubis
from repro.apps.rubis.workload import bidding_mix
from repro.apps.tpcw import TpcwDataset, build_tpcw
from repro.cache.autowebcache import AutoWebCache
from repro.workload.session import ClientSession
from repro.workload.trace import (
    RequestTrace,
    TraceEntry,
    TraceRecorder,
    body_digest,
    replay,
)

from tests.conftest import build_notes_app


class TestRecorder:
    def test_records_requests_in_order(self, notes_app):
        db, container = notes_app
        recorder = TraceRecorder.attach(container)
        container.post("/add", {"id": "1", "topic": "a", "body": "x"})
        container.get("/view_topic", {"topic": "a"})
        trace = recorder.detach()
        assert len(trace) == 2
        assert trace.entries[0].method == "POST"
        assert trace.entries[1].uri == "/view_topic"
        # Detached: further traffic not recorded.
        container.get("/view_topic", {"topic": "a"})
        assert len(trace) == 2

    def test_chains_previous_observer(self, notes_app):
        _db, container = notes_app
        seen = []
        container.observer = lambda req, resp: seen.append(req.uri)
        recorder = TraceRecorder.attach(container)
        container.get("/view_topic", {"topic": "a"})
        recorder.detach()
        assert seen == ["/view_topic"]

    def test_save_and_load_roundtrip(self, tmp_path, notes_app):
        _db, container = notes_app
        recorder = TraceRecorder.attach(container)
        container.post("/add", {"id": "1", "topic": "a", "body": "x"})
        trace = recorder.detach()
        path = str(tmp_path / "trace.json")
        trace.save(path)
        loaded = RequestTrace.load(path)
        assert loaded.entries == trace.entries


class TestReplay:
    def test_identical_app_is_consistent(self):
        db1, container1 = build_notes_app()
        recorder = TraceRecorder.attach(container1)
        container1.post("/add", {"id": "1", "topic": "a", "body": "x"})
        container1.get("/view_topic", {"topic": "a"})
        container1.post("/score", {"id": "1", "score": "4"})
        container1.get("/view_note", {"id": "1"})
        trace = recorder.detach()

        db2, container2 = build_notes_app()
        report = replay(trace, container2)
        assert report.consistent
        assert report.total == 4

    def test_divergence_detected_and_located(self):
        trace = RequestTrace(
            entries=[
                TraceEntry("GET", "/view_topic", {"topic": "a"}, 200,
                           body_digest("a page that was never served")),
            ]
        )
        _db, container = build_notes_app()
        report = replay(trace, container)
        assert not report.consistent
        assert report.mismatches[0].index == 0
        assert "view_topic" in str(report.mismatches[0])


class TestFullApplicationAudit:
    def run_workload(self, container, dataset, rounds=250, seed=99):
        mix = bidding_mix(dataset)
        session = ClientSession(0, mix, random.Random(seed))
        for _ in range(rounds):
            planned = session.next_request()
            if planned.method == "GET":
                response = container.get(planned.uri, planned.params)
            else:
                response = container.post(planned.uri, planned.params)
            session.observe_response(planned, response.body)
            assert response.status == 200

    def test_rubis_cached_replay_matches_uncached(self):
        """The paper's core claim at application scale: a cached RUBiS
        serves byte-identical pages to an uncached one for the same
        request sequence."""
        dataset = RubisDataset(n_users=40, n_items=60, seed=12)
        baseline = build_rubis(dataset)
        recorder = TraceRecorder.attach(baseline.container)
        self.run_workload(baseline.container, baseline.dataset)
        trace = recorder.detach()
        assert len(trace) == 250

        mirror = build_rubis(RubisDataset(n_users=40, n_items=60, seed=12))
        awc = AutoWebCache()
        awc.install(mirror.servlet_classes)
        try:
            report = replay(trace, mirror.container)
            assert report.consistent, "\n".join(
                str(m) for m in report.mismatches[:5]
            )
            assert awc.stats.hits > 0  # the cache actually participated
        finally:
            awc.uninstall()

    def test_tpcw_hidden_state_detected_by_audit(self):
        """The audit is sensitive: TPC-W's random ad banner makes the
        Home page non-replayable, exactly the hidden-state hazard."""
        app = build_tpcw(TpcwDataset(n_items=40, n_customers=20), ad_seed=1)
        recorder = TraceRecorder.attach(app.container)
        app.container.get("/tpcw/home", {"c_id": "1"})
        trace = recorder.detach()
        # Replaying against the SAME app re-rolls the banner.
        report = replay(trace, app.container)
        assert not report.consistent
