"""Lexer unit tests."""

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_keywords_are_case_insensitive():
    assert values("select FROM Where") == ["SELECT", "FROM", "WHERE"]
    assert kinds("select") == [TokenType.KEYWORD]


def test_identifiers_preserve_case():
    tokens = tokenize("myTable_1")
    assert tokens[0].type is TokenType.IDENTIFIER
    assert tokens[0].value == "myTable_1"


def test_integer_and_decimal_numbers():
    assert values("42 3.14 .5") == ["42", "3.14", ".5"]
    assert kinds("42") == [TokenType.NUMBER]


def test_single_quoted_string():
    tokens = tokenize("'hello world'")
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].value == "hello world"


def test_doubled_quote_escapes():
    tokens = tokenize("'it''s'")
    assert tokens[0].value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(SqlLexError):
        tokenize("'oops")


def test_placeholder():
    tokens = tokenize("x = ?")
    assert tokens[2].type is TokenType.PLACEHOLDER


def test_two_char_operators():
    assert values("<= >= <> !=") == ["<=", ">=", "<>", "!="]


def test_single_char_operators_and_punct():
    assert values("a = (b, c.d);") == ["a", "=", "(", "b", ",", "c", ".", "d", ")", ";"]


def test_unexpected_character_raises_with_position():
    with pytest.raises(SqlLexError) as excinfo:
        tokenize("a @ b")
    assert excinfo.value.position == 2


def test_aggregate_names_are_keywords():
    assert kinds("COUNT") == [TokenType.KEYWORD]
    assert kinds("sum") == [TokenType.KEYWORD]


def test_token_matches_helper():
    token = Token(TokenType.KEYWORD, "SELECT", 0)
    assert token.matches(TokenType.KEYWORD)
    assert token.matches(TokenType.KEYWORD, "SELECT")
    assert not token.matches(TokenType.KEYWORD, "FROM")
    assert not token.matches(TokenType.IDENTIFIER)


def test_whitespace_and_newlines_ignored():
    assert values("a\n\t b") == ["a", "b"]


def test_underscore_identifier():
    tokens = tokenize("_private")
    assert tokens[0].type is TokenType.IDENTIFIER
