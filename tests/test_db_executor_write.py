"""INSERT/UPDATE/DELETE execution tests."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema
from repro.errors import ExecutionError, IntegrityError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("id", ColumnType.INT),
                Column("kind", ColumnType.VARCHAR),
                Column("n", ColumnType.INT),
            ],
            primary_key="id",
            indexes=["kind"],
        )
    )
    for i in range(6):
        database.update(
            "INSERT INTO t (id, kind, n) VALUES (?, ?, ?)",
            (i, "even" if i % 2 == 0 else "odd", i * 10),
        )
    return database


class TestInsert:
    def test_affected_count(self, db):
        assert db.update("INSERT INTO t (id, kind, n) VALUES (100, 'x', 1)") == 1

    def test_auto_increment_via_sql(self, db):
        result = db.execute("INSERT INTO t (kind, n) VALUES ('auto', 0)")
        assert result.last_insert_id == 6
        assert db.query("SELECT kind FROM t WHERE id = 6").scalar() == "auto"

    def test_duplicate_pk(self, db):
        with pytest.raises(IntegrityError):
            db.update("INSERT INTO t (id, kind, n) VALUES (0, 'dup', 0)")

    def test_types_coerced(self, db):
        db.update("INSERT INTO t (id, kind, n) VALUES (?, ?, ?)", ("7", 5, "3"))
        row = db.query("SELECT kind, n FROM t WHERE id = 7").rows[0]
        assert row == ("5", 3)


class TestUpdate:
    def test_update_by_pk(self, db):
        assert db.update("UPDATE t SET n = 999 WHERE id = 2") == 1
        assert db.query("SELECT n FROM t WHERE id = 2").scalar() == 999

    def test_update_by_index(self, db):
        assert db.update("UPDATE t SET n = 0 WHERE kind = 'odd'") == 3

    def test_update_all(self, db):
        assert db.update("UPDATE t SET n = 1") == 6

    def test_update_expression_self_reference(self, db):
        db.update("UPDATE t SET n = n + 5 WHERE id = 1")
        assert db.query("SELECT n FROM t WHERE id = 1").scalar() == 15

    def test_update_no_match(self, db):
        assert db.update("UPDATE t SET n = 1 WHERE id = 12345") == 0

    def test_update_moves_index_bucket(self, db):
        db.update("UPDATE t SET kind = 'even' WHERE id = 1")
        result = db.query("SELECT COUNT(*) FROM t WHERE kind = 'even'")
        assert result.scalar() == 4


class TestDelete:
    def test_delete_by_pk(self, db):
        assert db.update("DELETE FROM t WHERE id = 3") == 1
        assert len(db.query("SELECT id FROM t").rows) == 5

    def test_delete_by_index(self, db):
        assert db.update("DELETE FROM t WHERE kind = 'even'") == 3

    def test_delete_all(self, db):
        assert db.update("DELETE FROM t") == 6
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 0

    def test_delete_no_match(self, db):
        assert db.update("DELETE FROM t WHERE id = 999") == 0


class TestDatabaseApi:
    def test_update_requires_write(self, db):
        with pytest.raises(ExecutionError):
            db.update("SELECT id FROM t")

    def test_stats_accumulate(self, db):
        before = db.stats.queries
        db.query("SELECT COUNT(*) FROM t")
        assert db.stats.queries == before + 1
        before_updates = db.stats.updates
        db.update("DELETE FROM t WHERE id = 0")
        assert db.stats.updates == before_updates + 1

    def test_create_table_via_sql(self, db):
        db.execute("CREATE TABLE fresh (id INT PRIMARY KEY, label VARCHAR(10))")
        db.update("INSERT INTO fresh (id, label) VALUES (1, 'a')")
        assert db.query("SELECT label FROM fresh WHERE id = 1").scalar() == "a"

    def test_drop_table(self, db):
        db.drop_table("t")
        assert "t" not in db.table_names

    def test_parse_cache_reuses_ast(self, db):
        sql = "SELECT COUNT(*) FROM t"
        first = db._parse(sql)
        second = db._parse(sql)
        assert first is second
