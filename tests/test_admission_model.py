"""The admission cost model and policies: edge cases.

The satellite checklist for ``repro.admission``: cold start (no
observations -> admit), zero-hit classes under sustained churn (must
demote), hysteresis bounds (no oscillation around break-even), and
shadow mode never changing cache contents (differential vs AdmitAll).
"""

from __future__ import annotations

import pytest

from repro.admission.model import ClassProfile, CostModel, key_class
from repro.admission.policy import (
    ADMIT,
    DENY,
    SHADOW_DENY,
    AdaptiveAdmission,
    AdmissionPolicy,
    AdmitAll,
)
from repro.cache.autowebcache import AutoWebCache
from repro.obs.histogram import MetricsHub

from tests.conftest import build_notes_app


class TestKeyClass:
    def test_page_key_strips_query(self):
        assert key_class("/rubis/view_item?item=3") == "/rubis/view_item"

    def test_fragment_and_method_schemes(self):
        assert key_class("frag://rubis/category_table?region=1") == (
            "frag://rubis/category_table"
        )
        assert key_class("method://CategoryCatalogue.categories?arg0=1") == (
            "method://CategoryCatalogue.categories"
        )

    def test_bare_key_is_its_own_class(self):
        assert key_class("/plain") == "/plain"


class TestCostModel:
    def test_first_sample_replaces_not_blends(self):
        model = CostModel(alpha=0.2)
        model.observe_recompute("/p", 0.5)
        assert model.snapshot()["/p"]["recompute_seconds"] == 0.5

    def test_later_samples_blend_by_alpha(self):
        model = CostModel(alpha=0.5)
        model.observe_recompute("/p", 1.0)
        model.observe_recompute("/p", 0.0)
        assert model.snapshot()["/p"]["recompute_seconds"] == pytest.approx(0.5)

    def test_negative_recompute_sample_ignored(self):
        model = CostModel()
        model.observe_recompute("/p", -1.0)  # clock ran backwards
        assert model.snapshot() == {}

    def test_hit_ewma_tracks_lookups(self):
        model = CostModel(alpha=0.5)
        model.observe_lookup("/p", hit=False)
        assert model.snapshot()["/p"]["hit_prob"] == 0.0
        model.observe_lookup("/p", hit=True)
        assert model.snapshot()["/p"]["hit_prob"] == pytest.approx(0.5)

    def test_score_arithmetic(self):
        model = CostModel(alpha=1.0, churn_weight=1.0, byte_rent=0.001)
        model.observe_lookup("/p", hit=True)      # hit_prob 1.0
        model.observe_recompute("/p", 0.2)        # recompute 0.2s
        model.observe_insert("/p", 100)           # size 100 B
        model.observe_doom("/p")                  # 1 doom / 1 insert
        # benefit 1.0*0.2 - churn 1.0*1.0*0.2 - rent 0.001*100
        assert model.score("/p") == pytest.approx(0.2 - 0.2 - 0.1)
        assert model.normalized_score("/p") == pytest.approx(-0.5)

    def test_normalized_score_zero_without_recompute_signal(self):
        model = CostModel()
        model.observe_lookup("/p", hit=True)
        assert model.normalized_score("/p") == 0.0
        assert model.score("/unknown") == 0.0
        assert model.normalized_score("/unknown") == 0.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)

    def test_observations_counts_lookups_and_inserts(self):
        model = CostModel()
        model.observe_lookup("/p", hit=False)
        model.observe_insert("/p", 10)
        model.observe_doom("/p")  # dooms are not observations
        assert model.observations("/p") == 2

    def test_snapshot_shape(self):
        model = CostModel()
        model.observe_lookup("/p", hit=True)
        model.observe_insert("/p", 64)
        row = model.snapshot()["/p"]
        assert row["class"] == "/p"
        assert set(row) == {
            "class", "lookups", "hit_prob", "recompute_seconds",
            "size_bytes", "inserts", "dooms", "dooms_per_insert",
            "score", "normalized_score",
        }
        assert model.classes() == ["/p"]

    def test_dooms_per_insert_zero_without_inserts(self):
        profile = ClassProfile("/p")
        profile.dooms = 5
        assert profile.dooms_per_insert == 0.0

    def test_sync_from_hub_folds_histogram_means(self):
        hub = MetricsHub()
        hub.observe("servlet", "/view_topic?topic=a", 0.3)
        hub.observe("servlet", "/view_topic?topic=a", 0.1)
        hub.observe("db", "/view_topic", 9.0)  # wrong phase: skipped
        model = CostModel()
        assert model.sync_from_hub(hub) == 1
        row = model.snapshot()["/view_topic"]
        assert row["recompute_seconds"] == pytest.approx(0.2)


class FixedModel(CostModel):
    """A model whose normalized score is pinned by the test: isolates
    the policy's hysteresis state machine from EWMA dynamics."""

    def __init__(self, value: float = 0.0) -> None:
        super().__init__()
        self.value = value

    def observations(self, cls: str) -> int:
        return 10_000  # always past the cold-start gate

    def normalized_score(self, cls: str) -> float:
        return self.value


class TestColdStart:
    def test_admits_until_min_observations(self):
        # Terrible score, but the model has not seen enough samples:
        # the cold-start rule admits unconditionally.
        policy = AdaptiveAdmission(margin=0.1, min_observations=20)
        policy.model.observe_doom("/p", count=100)
        assert policy.verdict("/p", 100) == ADMIT
        assert not policy.is_demoted("/p")

    def test_brand_new_class_admits(self):
        policy = AdaptiveAdmission(min_observations=1)
        # First-ever verdict: the insert itself is the first observation.
        assert policy.verdict("/never-seen", 10) == ADMIT


class TestChurnDemotes:
    def test_zero_hit_class_under_sustained_churn_demotes(self):
        policy = AdaptiveAdmission(margin=0.1, min_observations=10)
        model = policy.model
        for _ in range(20):  # every lookup misses
            model.observe_lookup("/churny", hit=False)
        model.observe_recompute("/churny", 0.05)
        verdicts = []
        for _ in range(10):  # every insert doomed before any hit
            verdicts.append(policy.verdict("/churny", 200))
            model.observe_doom("/churny")
        assert verdicts[-1] == DENY
        assert policy.is_demoted("/churny")
        assert policy.demoted_classes() == ["/churny"]

    def test_good_class_stays_admitted(self):
        policy = AdaptiveAdmission(margin=0.1, min_observations=5)
        model = policy.model
        for _ in range(20):
            model.observe_lookup("/stable", hit=True)
        model.observe_recompute("/stable", 0.05)
        for _ in range(10):
            assert policy.verdict("/stable", 200) == ADMIT
        assert not policy.is_demoted("/stable")


class TestHysteresis:
    def test_small_negative_score_stays_admitted(self):
        policy = AdaptiveAdmission(model=FixedModel(-0.05), margin=0.1,
                                   min_observations=0)
        assert policy.verdict("/p", 10) == ADMIT

    def test_demotes_below_minus_margin(self):
        model = FixedModel(-0.2)
        policy = AdaptiveAdmission(model=model, margin=0.1,
                                   min_observations=0)
        assert policy.verdict("/p", 10) == DENY
        # Inside the band while demoted: demotion is sticky.
        model.value = 0.05
        assert policy.verdict("/p", 10) == DENY
        assert policy.is_demoted("/p")

    def test_readmits_above_plus_margin(self):
        model = FixedModel(-0.2)
        policy = AdaptiveAdmission(model=model, margin=0.1,
                                   min_observations=0)
        assert policy.verdict("/p", 10) == DENY
        model.value = 0.2
        assert policy.verdict("/p", 10) == ADMIT
        assert not policy.is_demoted("/p")

    def test_no_oscillation_inside_the_band(self):
        # A class jittering between -margin and +margin must never flip
        # state: admitted stays admitted, demoted stays demoted.
        model = FixedModel()
        policy = AdaptiveAdmission(model=model, margin=0.1,
                                   min_observations=0)
        for i in range(20):
            model.value = 0.05 if i % 2 else -0.05
            assert policy.verdict("/p", 10) == ADMIT
        model.value = -0.5
        assert policy.verdict("/p", 10) == DENY
        for i in range(20):
            model.value = 0.05 if i % 2 else -0.05
            assert policy.verdict("/p", 10) == DENY

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveAdmission(margin=-0.1)

    def test_probe_every_readmits_one_in_n(self):
        policy = AdaptiveAdmission(model=FixedModel(-1.0), margin=0.1,
                                   min_observations=0, probe_every=3)
        verdicts = [policy.verdict("/p", 10) for _ in range(6)]
        assert verdicts == [DENY, DENY, ADMIT, DENY, DENY, ADMIT]

    def test_probing_disabled_by_default(self):
        policy = AdaptiveAdmission(model=FixedModel(-1.0), margin=0.1,
                                   min_observations=0)
        assert [policy.verdict("/p", 10) for _ in range(50)] == [DENY] * 50

    def test_snapshot_annotates_admission_state(self):
        model = FixedModel(-1.0)
        policy = AdaptiveAdmission(model=model, margin=0.1,
                                   min_observations=0)
        policy.verdict("/bad", 10)
        model.value = 1.0
        policy.verdict("/good", 10)
        snapshot = policy.snapshot()
        assert snapshot["/bad"]["state"] == "pass-through"
        assert snapshot["/good"]["state"] == "admitted"


class TestShadowMode:
    def test_shadow_verdict_is_shadow_deny(self):
        policy = AdaptiveAdmission(model=FixedModel(-1.0), margin=0.1,
                                   min_observations=0, shadow=True)
        assert policy.shadow
        assert policy.verdict("/p", 10) == SHADOW_DENY

    def test_admit_all_is_the_default_and_stateless(self):
        policy = AdmitAll()
        assert not policy.shadow
        assert policy.verdict("/anything", 10**9) == ADMIT
        policy.observe_lookup("/p", hit=False)
        policy.observe_recompute("/p", 1.0)
        policy.observe_doom("/p")
        assert policy.snapshot() == {}
        assert isinstance(policy, AdmissionPolicy)

    def test_shadow_mode_never_changes_cache_contents(self):
        """Differential: the same churn-heavy workload through AdmitAll
        and through shadow-mode AdaptiveAdmission must leave bit-for-bit
        identical cache contents -- shadow only counts."""

        def run(policy):
            db, container = build_notes_app()
            awc = AutoWebCache(admission=policy)
            awc.install(container.servlet_classes)
            try:
                note_id = 0
                for round_ in range(30):
                    # Zero-hit churn on topic pages: every view is
                    # doomed by the next add before it can hit.
                    container.get("/view_topic", {"topic": "a"})
                    note_id += 1
                    container.post("/add", {
                        "id": str(note_id), "topic": "a",
                        "body": f"b{round_}", "score": "0",
                    })
                    # A stable page that only ever hits.
                    container.get("/view_note", {"id": "1"})
                return awc
            finally:
                awc.uninstall()

        baseline = run(AdmitAll())
        shadow_policy = AdaptiveAdmission(margin=0.1, min_observations=10,
                                          shadow=True)
        shadow = run(shadow_policy)

        base_entries = {e.key: e.body for e in baseline.cache.pages.entries()}
        shadow_entries = {e.key: e.body for e in shadow.cache.pages.entries()}
        assert shadow_entries == base_entries
        assert shadow.cache.pages.total_bytes == baseline.cache.pages.total_bytes
        # The policy did fire -- it just was not enforced.
        assert shadow.stats.shadow_denied > 0
        assert shadow.stats.denied == 0
        assert shadow_policy.is_demoted("/view_topic")
        # Every insert was stored: admitted + shadow-denied covers them.
        assert (shadow.stats.admitted + shadow.stats.shadow_denied
                == shadow.stats.inserts)
        assert baseline.stats.admitted == baseline.stats.inserts
        assert baseline.stats.shadow_denied == 0
