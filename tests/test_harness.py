"""Harness tests: experiment drivers, code size, reporting."""

import pytest

from repro.harness.codesize import measure_components
from repro.harness.experiments import (
    ExperimentDefaults,
    RunSpec,
    improvement_percent,
    run_cell,
    run_code_size_experiment,
    run_response_time_curve,
)
from repro.harness.reporting import render_series, render_table

FAST = ExperimentDefaults(warmup=10.0, duration=30.0)


class TestRunCell:
    def test_uncached_cell(self):
        outcome = run_cell(RunSpec(app="rubis", cached=False, defaults=FAST), 30)
        assert outcome.cache_stats is None
        assert outcome.result.total_requests > 50
        assert outcome.result.errors == 0

    def test_cached_cell_unweaves(self):
        from repro.db.dbapi import Statement

        outcome = run_cell(RunSpec(app="rubis", cached=True, defaults=FAST), 30)
        assert outcome.cache_stats is not None
        assert outcome.weave_report is not None
        method = vars(Statement)["execute_query"]
        assert not getattr(method, "__aw_woven__", False)

    def test_tpcw_cell(self):
        outcome = run_cell(RunSpec(app="tpcw", cached=True, defaults=FAST), 30)
        assert outcome.result.errors == 0
        assert outcome.cache_stats.uncacheable > 0  # hidden-state pages

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_cell(RunSpec(app="wiki", defaults=FAST), 10)

    def test_labels(self):
        assert RunSpec(app="rubis", cached=False).label == "No cache"
        assert RunSpec(app="rubis").label == "AutoWebCache"
        assert "forced miss" in RunSpec(app="rubis", forced_miss=True).label
        assert "Semantics" in RunSpec(app="tpcw", best_seller_window=True).label


class TestCurves:
    def test_curve_shapes(self):
        spec = RunSpec(app="rubis", cached=False, defaults=FAST)
        outcomes = run_response_time_curve(spec, [20, 60])
        assert [o.n_clients for o in outcomes] == [20, 60]
        assert all(o.mean_ms > 0 for o in outcomes)

    def test_improvement_percent(self):
        assert improvement_percent(100.0, 40.0) == pytest.approx(60.0)
        assert improvement_percent(0.0, 10.0) == 0.0


class TestCodeSize:
    def test_components_measured(self):
        sizes = {c.name: c for c in measure_components()}
        assert sizes["cache-library"].code_lines > 0
        assert sizes["weaving-rules"].code_lines > 0
        # The paper's Figure 20 claim: the weaving code is much smaller
        # than the reusable cache library and the applications.
        assert (
            sizes["weaving-rules"].code_lines
            < sizes["cache-library"].code_lines
        )
        assert (
            sizes["weaving-rules"].code_lines
            < sizes["rubis-app"].code_lines + sizes["tpcw-app"].code_lines
        )

    def test_experiment_wrapper(self):
        rows = run_code_size_experiment()
        names = [row[0] for row in rows]
        assert "cache-library" in names
        assert all(len(row) == 4 for row in rows)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            "Title", ["a", "bb"], [[1, 2.5], ["xxx", "y"]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "2.50" in text
        assert "xxx" in text

    def test_render_series(self):
        text = render_series("S", [(1, 2), (3, 4)])
        assert "S" in text and "3" in text
