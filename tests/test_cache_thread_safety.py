"""Cache-core accounting under concurrent mutation.

The satellite bugfix contract: concurrent ``invalidate()`` during
``lookup()``/``insert()`` must never corrupt ``total_bytes`` or the
dependency table.  These tests hammer the structures from real threads
and then assert the accounting invariants exactly.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.cache.api import Cache
from repro.cache.entry import PageEntry, QueryInstance
from repro.cache.page_cache import PageCache
from repro.cache.replacement import make_policy
from repro.cache.stats import CacheStats
from repro.sql.template import templateize
from repro.web.http import HttpRequest


def _instance(note_id: int) -> QueryInstance:
    template, values = templateize(
        "SELECT body FROM notes WHERE id = ?", (note_id,)
    )
    return QueryInstance(template, values)


def _entry(key: str, note_id: int, body: str) -> PageEntry:
    return PageEntry(
        key=key, body=body, dependencies=(_instance(note_id),)
    )


def assert_accounting_exact(pages: PageCache) -> None:
    """total_bytes and the dependency table match the entries exactly."""
    entries = pages.entries()
    assert pages.total_bytes == sum(entry.size for entry in entries)
    live_keys = set(pages.keys())
    registered_keys = {
        page_key
        for template in pages.dependencies.read_templates()
        for page_key, _vector in pages.dependencies.instances_for(template)
    }
    # No orphan registrations (evicted/invalidated pages linger) and no
    # missing registrations (live non-semantic pages untracked).
    assert registered_keys <= live_keys
    expected = {e.key for e in entries if not e.semantic and e.dependencies}
    assert registered_keys == expected


@pytest.mark.concurrency
def test_invalidate_racing_lookup_and_insert_keeps_bytes_exact():
    pages = PageCache()
    n_threads = 8
    rounds = 300
    keys = [f"/page?id={i}" for i in range(16)]
    barrier = threading.Barrier(n_threads)
    errors: list[Exception] = []

    def worker(index: int) -> None:
        rng = random.Random(index)
        try:
            barrier.wait(timeout=5)
            for round_no in range(rounds):
                key = rng.choice(keys)
                action = rng.random()
                if action < 0.45:
                    note_id = int(key.split("=")[1])
                    body = "x" * rng.randint(1, 64)
                    pages.insert(_entry(key, note_id, body))
                elif action < 0.8:
                    pages.lookup(key, now=0.0)
                else:
                    pages.invalidate(key)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    assert_accounting_exact(pages)


@pytest.mark.concurrency
def test_cache_facade_threaded_insert_invalidate_consistent():
    cache = Cache()
    n_threads = 8
    rounds = 150
    barrier = threading.Barrier(n_threads)
    errors: list[Exception] = []

    def worker(index: int) -> None:
        rng = random.Random(1000 + index)
        try:
            barrier.wait(timeout=5)
            for _ in range(rounds):
                note_id = rng.randrange(8)
                request = HttpRequest("GET", "/view", {"id": str(note_id)})
                action = rng.random()
                if action < 0.5:
                    cache.check(request)
                elif action < 0.85:
                    cache.insert(
                        request,
                        "b" * rng.randint(1, 40),
                        [_instance(note_id)],
                    )
                else:
                    cache.invalidate_key(request.cache_key())
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    assert_accounting_exact(cache.pages)
    # Read-lookup arithmetic is exact even under the barrage.
    stats = cache.stats
    assert stats.lookups == (
        stats.hits + stats.semantic_hits + stats.misses + stats.uncacheable
    )


@pytest.mark.concurrency
def test_stats_counters_exact_under_threads():
    stats = CacheStats()
    n_threads = 8
    per_thread = 500
    barrier = threading.Barrier(n_threads)

    def worker(index: int) -> None:
        barrier.wait(timeout=5)
        uri = f"/u{index % 3}"
        for i in range(per_thread):
            if i % 3 == 0:
                stats.record_hit(uri, semantic=False)
            elif i % 3 == 1:
                stats.record_miss(uri, "cold")
            else:
                stats.record_uncacheable(uri)
            stats.record_insert(evictions=1)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    total = n_threads * per_thread
    assert stats.lookups == total
    assert stats.inserts == total
    assert stats.evictions == total
    assert stats.hits + stats.misses_cold + stats.uncacheable == total
    per_type_total = sum(t.reads for t in stats.by_type.values())
    assert per_type_total == total


def test_bounded_cache_eviction_accounting_threaded():
    """Byte-bounded cache under threads: bound respected, bytes exact."""
    pages = PageCache(
        make_policy("lru", None, order_only=True), max_bytes=500
    )
    errors: list[Exception] = []

    def worker(index: int) -> None:
        rng = random.Random(index)
        try:
            for i in range(200):
                key = f"/p{rng.randrange(32)}"
                pages.insert(_entry(key, index, "y" * rng.randint(10, 50)))
                pages.lookup(key, now=0.0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    assert pages.total_bytes <= 500
    assert_accounting_exact(pages)
