"""HTTP model tests."""

from repro.web.http import (
    HttpRequest,
    HttpResponse,
    encode_query_string,
    parse_query_string,
)


class TestQueryString:
    def test_parse_simple(self):
        assert parse_query_string("a=1&b=2") == {"a": "1", "b": "2"}

    def test_parse_empty(self):
        assert parse_query_string("") == {}

    def test_parse_url_encoding(self):
        assert parse_query_string("q=a+b&r=c%26d") == {"q": "a b", "r": "c&d"}

    def test_last_duplicate_wins(self):
        assert parse_query_string("a=1&a=2") == {"a": "2"}

    def test_encode_sorts_keys(self):
        assert encode_query_string({"b": "2", "a": "1"}) == "a=1&b=2"

    def test_roundtrip(self):
        params = {"x": "hello world", "y": "1&2"}
        assert parse_query_string(encode_query_string(params)) == params


class TestHttpRequest:
    def test_method_uppercased(self):
        assert HttpRequest("get", "/x").method == "GET"

    def test_query_string_merged_into_params(self):
        request = HttpRequest("GET", "/items?id=5&k=v", {"k": "override"})
        assert request.uri == "/items"
        assert request.params == {"id": "5", "k": "override"}

    def test_get_parameter_and_default(self):
        request = HttpRequest("GET", "/x", {"a": "1"})
        assert request.get_parameter("a") == "1"
        assert request.get_parameter("b") is None
        assert request.get_parameter("b", "dflt") == "dflt"

    def test_get_int(self):
        request = HttpRequest("GET", "/x", {"n": "7", "bad": "xyz"})
        assert request.get_int("n") == 7
        assert request.get_int("bad", 3) == 3
        assert request.get_int("missing") is None

    def test_cookies(self):
        request = HttpRequest("GET", "/x", cookies={"sid": "abc"})
        assert request.get_cookie("sid") == "abc"
        assert request.get_cookie("nope", "d") == "d"

    def test_cache_key_is_canonical(self):
        r1 = HttpRequest("GET", "/items", {"b": "2", "a": "1"})
        r2 = HttpRequest("GET", "/items?a=1&b=2")
        assert r1.cache_key() == r2.cache_key()

    def test_cache_key_without_params(self):
        assert HttpRequest("GET", "/plain").cache_key() == "/plain"

    def test_cache_key_differs_by_params(self):
        r1 = HttpRequest("GET", "/items", {"a": "1"})
        r2 = HttpRequest("GET", "/items", {"a": "2"})
        assert r1.cache_key() != r2.cache_key()


class TestHttpResponse:
    def test_write_accumulates(self):
        response = HttpResponse()
        response.write("a")
        response.write("b")
        assert response.body == "ab"

    def test_defaults(self):
        response = HttpResponse()
        assert response.status == 200
        assert response.headers["Content-Type"] == "text/html"

    def test_replace_body(self):
        response = HttpResponse()
        response.write("old")
        response.replace_body("new")
        assert response.body == "new"

    def test_send_error(self):
        response = HttpResponse()
        response.send_error(404, "gone")
        assert response.status == 404
        assert "404" in response.body
        assert response.committed

    def test_reset(self):
        response = HttpResponse()
        response.write("x")
        response.set_status(500)
        response.reset()
        assert response.body == ""
        assert response.status == 200

    def test_cookies_and_headers(self):
        response = HttpResponse()
        response.add_cookie("sid", "1")
        response.set_header("X-Test", "v")
        assert response.cookies == {"sid": "1"}
        assert response.headers["X-Test"] == "v"
