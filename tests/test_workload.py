"""Workload layer tests: mixes, sessions, Zipf sampling, metrics."""

import random

import pytest

from repro.apps.rubis import RubisDataset
from repro.apps.rubis.workload import bidding_mix, browsing_mix
from repro.apps.tpcw import TpcwDataset
from repro.apps.tpcw.workload import shopping_mix
from repro.errors import WorkloadError
from repro.workload.metrics import MetricsCollector, RequestSample, SeriesStats
from repro.workload.mix import Interaction, InteractionMix
from repro.workload.session import ClientSession, SessionConfig
from repro.workload.zipf import ZipfSampler


def constant_params(session):
    return {}


class TestInteractionMix:
    def make_mix(self):
        return InteractionMix(
            "m",
            [
                Interaction("r", "GET", "/r", constant_params, 80.0),
                Interaction("w", "POST", "/w", constant_params, 20.0, True),
            ],
        )

    def test_read_fraction(self):
        assert self.make_mix().read_fraction == pytest.approx(0.8)

    def test_draw_distribution(self):
        mix = self.make_mix()
        rng = random.Random(0)
        draws = [mix.draw(rng).name for _ in range(5000)]
        assert 0.75 < draws.count("r") / len(draws) < 0.85

    def test_by_name(self):
        mix = self.make_mix()
        assert mix.by_name("w").is_write
        with pytest.raises(WorkloadError):
            mix.by_name("ghost")

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            InteractionMix("m", [])

    def test_zero_weights_rejected(self):
        with pytest.raises(WorkloadError):
            InteractionMix(
                "m", [Interaction("r", "GET", "/r", constant_params, 0.0)]
            )


class TestBenchmarkMixes:
    def test_rubis_bidding_mix_is_85_percent_reads(self):
        mix = bidding_mix(RubisDataset())
        assert mix.read_fraction == pytest.approx(0.85, abs=0.01)

    def test_rubis_browsing_mix_is_read_only(self):
        assert browsing_mix(RubisDataset()).read_fraction == 1.0

    def test_tpcw_shopping_mix_read_fraction(self):
        mix = shopping_mix(TpcwDataset())
        # The paper quotes ~80% reads for the shopping mix.
        assert 0.78 <= mix.read_fraction <= 0.88

    def test_rubis_mix_covers_all_interactions(self):
        mix = bidding_mix(RubisDataset())
        assert len(mix.interactions) == 26

    def test_tpcw_mix_covers_all_interactions(self):
        assert len(shopping_mix(TpcwDataset()).interactions) == 14


class TestClientSession:
    def make_session(self, mix=None):
        mix = mix or bidding_mix(RubisDataset(n_users=10, n_items=10))
        return ClientSession(
            session_id=1,
            mix=mix,
            rng=random.Random(3),
            config=SessionConfig(think_time_mean=7.0, session_duration=100.0),
            started_at=0.0,
        )

    def test_next_request_has_string_params(self):
        session = self.make_session()
        for _ in range(50):
            planned = session.next_request()
            assert planned.uri.startswith("/rubis/")
            assert all(isinstance(v, str) for v in planned.params.values())

    def test_expiry(self):
        session = self.make_session()
        assert not session.expired(99.0)
        assert session.expired(100.0)

    def test_think_time_positive_and_mean_close(self):
        session = self.make_session()
        times = [session.think_time() for _ in range(4000)]
        assert all(t >= 0 for t in times)
        assert 6.0 < sum(times) / len(times) < 8.0

    def test_infeasible_interactions_redrawn(self):
        mix = shopping_mix(TpcwDataset(n_items=10, n_customers=5))
        session = ClientSession(1, mix, random.Random(5))
        # Without a cart, buy_request/buy_confirm are infeasible and the
        # session must still always produce a request.
        for _ in range(100):
            planned = session.next_request()
            assert planned.uri not in (
                "/tpcw/buy_request",
                "/tpcw/buy_confirm",
            ) or session.state.get("cart") is not None

    def test_observe_response_learns_cart_id(self):
        mix = shopping_mix(TpcwDataset(n_items=10, n_customers=5))
        session = ClientSession(1, mix, random.Random(5))
        planned = type("P", (), {"uri": "/tpcw/shopping_cart"})()
        session.observe_response(planned, "<h1>TPC-W: Shopping cart 17</h1>")
        assert session.state["cart"] == 17


class TestZipf:
    def test_range(self):
        sampler = ZipfSampler(10, s=1.0)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(1000)]
        assert all(0 <= d < 10 for d in draws)

    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(50, s=1.1)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(5000)]
        assert draws.count(0) > draws.count(25)
        assert draws.count(0) > len(draws) * 0.1

    def test_s_zero_is_uniformish(self):
        sampler = ZipfSampler(4, s=0.0)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(8000)]
        for k in range(4):
            assert 0.2 < draws.count(k) / len(draws) < 0.3

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)


class TestMetrics:
    def sample(self, uri="/r", rt=0.1, hit=False, write=False, **kwargs):
        return RequestSample(
            uri=uri,
            issued_at=0.0,
            response_time=rt,
            cache_hit=hit,
            is_write=write,
            **kwargs,
        )

    def test_overall_aggregation(self):
        metrics = MetricsCollector()
        metrics.record(self.sample(rt=0.1, hit=True))
        metrics.record(self.sample(rt=0.3))
        assert metrics.overall.count == 2
        assert metrics.overall.mean == pytest.approx(0.2)
        assert metrics.overall.hit_rate == 0.5

    def test_reads_writes_split(self):
        metrics = MetricsCollector()
        metrics.record(self.sample(write=False))
        metrics.record(self.sample(uri="/w", write=True))
        assert metrics.reads.count == 1
        assert metrics.writes.count == 1

    def test_hit_miss_series_split(self):
        metrics = MetricsCollector()
        metrics.record(self.sample(rt=0.01, hit=True))
        metrics.record(self.sample(rt=0.5, hit=False, miss_reason="cold"))
        assert metrics.by_uri_hits["/r"].count == 1
        assert metrics.by_uri_misses["/r"].count == 1
        assert metrics.detail["/r"] == {"hit": 1, "cold": 1}

    def test_semantic_hits_in_detail(self):
        metrics = MetricsCollector()
        metrics.record(self.sample(hit=True, semantic_hit=True))
        assert metrics.detail["/r"] == {"semantic": 1}

    def test_percentiles(self):
        stats = SeriesStats()
        for i in range(1, 101):
            stats.add(i / 100.0, False)
        assert stats.percentile(50) == pytest.approx(0.5, abs=0.02)
        assert stats.percentile(100) == 1.0
        assert stats.percentile(0) == 0.01

    def test_empty_series(self):
        stats = SeriesStats()
        assert stats.mean == 0.0
        assert stats.percentile(50) == 0.0

    def test_warmup_counter(self):
        metrics = MetricsCollector()
        metrics.record_warmup()
        assert metrics.dropped_warmup == 1
        assert metrics.request_count == 0
