"""Transparency guard: the applications contain zero observability code.

The whole point of the aspect-oriented design is that instrumentation
arrives by weaving, never by editing the application.  This test greps
the application sources for observability identifiers -- if one ever
appears, the transparency argument (and the paper reproduction) is
broken, regardless of whether the code works.
"""

from pathlib import Path

import repro.apps

APPS_ROOT = Path(repro.apps.__file__).parent

#: Identifiers that must never appear in application source.
FORBIDDEN = (
    "repro.obs",
    "repro/obs",
    "Tracer",
    "TracingAspect",
    "MetricsAspect",
    "MetricsHub",
    "LatencyHistogram",
    "open_root",
    "current_context",
    "make_span",
    "SpanContext",
    "render_metrics",
    "render_traces",
)


def app_sources():
    return sorted(APPS_ROOT.rglob("*.py"))


def test_apps_package_is_nonempty():
    # Guard the guard: if the layout moves, fail loudly instead of
    # vacuously passing over an empty glob.
    assert len(app_sources()) > 10


def test_apps_contain_no_observability_identifiers():
    offenders = []
    for path in app_sources():
        text = path.read_text()
        for needle in FORBIDDEN:
            if needle in text:
                offenders.append(f"{path.relative_to(APPS_ROOT)}: {needle}")
    assert not offenders, (
        "observability code leaked into application sources:\n"
        + "\n".join(offenders)
    )


def test_apps_import_nothing_from_obs():
    for path in app_sources():
        for line in path.read_text().splitlines():
            stripped = line.strip()
            if stripped.startswith(("import ", "from ")):
                assert "obs" not in stripped.split("#")[0].split(), (
                    f"{path} imports an observability module: {stripped}"
                )
