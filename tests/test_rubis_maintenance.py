"""RUBiS auction-close maintenance + trigger-bridge integration."""

from repro.apps.rubis import RubisDataset, build_rubis
from repro.apps.rubis.maintenance import close_expired_auctions
from repro.cache.autowebcache import AutoWebCache
from repro.cache.external import TriggerInvalidationBridge


def build_app():
    # Auctions last 100 virtual seconds so they can expire in-test.
    dataset = RubisDataset(
        n_users=20, n_items=30, seed=31, auction_duration=100.0
    )
    return build_rubis(dataset)


def test_close_moves_expired_items():
    app = build_app()
    report = close_expired_auctions(app.database, now=150.0)
    assert report.closed == 30
    assert report.remaining_active == 0
    assert app.database.query("SELECT COUNT(*) FROM old_items").scalar() == 30


def test_close_is_a_noop_before_expiry():
    app = build_app()
    report = close_expired_auctions(app.database, now=50.0)
    assert report.closed == 0
    assert report.remaining_active == 30


def test_close_preserves_item_fields():
    app = build_app()
    before = app.database.query(
        "SELECT name, max_bid, seller FROM items WHERE id = 7"
    ).rows[0]
    close_expired_auctions(app.database, now=150.0)
    after = app.database.query(
        "SELECT name, max_bid, seller FROM old_items WHERE id = 7"
    ).rows[0]
    assert after == before


def test_about_me_shows_sold_items():
    app = build_app()
    seller = int(
        app.database.query("SELECT seller FROM items WHERE id = 0").scalar()
    )
    close_expired_auctions(app.database, now=150.0)
    body = app.container.get("/rubis/about_me", {"user": str(seller)}).body
    assert "Items you sold" in body
    assert "item-0" in body


def test_maintenance_with_bridge_invalidates_stale_pages():
    """The Section 8 scenario end-to-end: a direct-database maintenance
    job closes auctions; the trigger bridge evicts the affected cached
    pages, so browsers never see a closed auction as live."""
    app = build_app()
    awc = AutoWebCache()
    TriggerInvalidationBridge(awc.cache, awc.collector).attach(app.database)
    awc.install(app.servlet_classes)
    try:
        container = app.container
        category = int(
            app.database.query(
                "SELECT category FROM items WHERE id = 3"
            ).scalar()
        )
        live = container.get(
            "/rubis/search_items_by_category",
            {"category": str(category), "page": "0"},
        )
        assert "item-3" in live.body
        container.get("/rubis/view_item", {"item": "3"})

        close_expired_auctions(app.database, now=150.0)

        after = container.get(
            "/rubis/search_items_by_category",
            {"category": str(category), "page": "0"},
        )
        assert "item-3" not in after.body  # page was invalidated
        gone = container.get("/rubis/view_item", {"item": "3"})
        assert gone.status == 500  # the auction is genuinely closed
    finally:
        awc.uninstall()


def test_maintenance_without_bridge_leaves_stale_pages():
    """Counterfactual: without the bridge, the stale page survives --
    the transparency failure Section 8 describes."""
    app = build_app()
    awc = AutoWebCache()
    awc.install(app.servlet_classes)
    try:
        container = app.container
        category = int(
            app.database.query(
                "SELECT category FROM items WHERE id = 3"
            ).scalar()
        )
        container.get(
            "/rubis/search_items_by_category",
            {"category": str(category), "page": "0"},
        )
        close_expired_auctions(app.database, now=150.0)
        stale = container.get(
            "/rubis/search_items_by_category",
            {"category": str(category), "page": "0"},
        )
        assert "item-3" in stale.body  # stale: hazard realised
    finally:
        awc.uninstall()
