"""Weak (time-lagged) consistency mode tests.

``SemanticsRegistry.set_default_ttl`` turns AutoWebCache into a
CachePortal-style TTL cache: pages expire on a timer and writes never
invalidate.  Stale responses become possible within the window -- the
trade-off the related-work section discusses and the weak-consistency
ablation quantifies.
"""

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.cache.semantics import SemanticsRegistry

from tests.conftest import build_notes_app


def make_weak_app(ttl=30.0):
    clock = {"now": 0.0}
    db, container = build_notes_app()
    semantics = SemanticsRegistry().set_default_ttl(ttl)
    awc = AutoWebCache(semantics=semantics, clock=lambda: clock["now"])
    awc.install(container.servlet_classes)
    return clock, db, container, awc


def test_default_ttl_applies_to_every_uri():
    registry = SemanticsRegistry().set_default_ttl(60.0)
    assert registry.ttl_for("/anything") == 60.0
    assert registry.ttl_for("/else") == 60.0


def test_specific_ttl_overrides_default():
    registry = SemanticsRegistry().set_default_ttl(60.0)
    registry.set_ttl_window("/best", 30.0)
    assert registry.ttl_for("/best") == 30.0
    assert registry.ttl_for("/other") == 60.0


def test_invalid_default_ttl():
    with pytest.raises(ValueError):
        SemanticsRegistry().set_default_ttl(0.0)


def test_weak_mode_serves_stale_within_window():
    clock, db, container, awc = make_weak_app(ttl=30.0)
    try:
        container.post("/add", {"id": "1", "topic": "a", "body": "old"})
        container.get("/view_topic", {"topic": "a"})
        container.post("/add", {"id": "2", "topic": "a", "body": "new"})
        stale = container.get("/view_topic", {"topic": "a"})
        assert "new" not in stale.body  # stale: writes do not invalidate
        assert awc.stats.semantic_hits == 1
        assert awc.stats.invalidated_pages == 0
    finally:
        awc.uninstall()


def test_weak_mode_refreshes_after_expiry():
    clock, db, container, awc = make_weak_app(ttl=30.0)
    try:
        container.post("/add", {"id": "1", "topic": "a", "body": "old"})
        container.get("/view_topic", {"topic": "a"})
        container.post("/add", {"id": "2", "topic": "a", "body": "new"})
        clock["now"] = 31.0
        fresh = container.get("/view_topic", {"topic": "a"})
        assert "new" in fresh.body
        assert awc.stats.misses_expired == 1
    finally:
        awc.uninstall()


def test_weak_mode_skips_dependency_bookkeeping():
    clock, db, container, awc = make_weak_app(ttl=30.0)
    try:
        container.post("/add", {"id": "1", "topic": "a", "body": "x"})
        container.get("/view_topic", {"topic": "a"})
        assert awc.cache.pages.dependencies.template_count == 0
        assert awc.stats.intersection_tests == 0
    finally:
        awc.uninstall()


def test_weak_vs_strong_staleness():
    """Lock-step comparison: weak mode serves stale bodies, strong
    mode never does."""
    # Strong configuration.
    db_s, container_s = build_notes_app()
    strong = AutoWebCache()
    strong.install(container_s.servlet_classes)
    try:
        stale_strong = _drive_and_count_stale(container_s)
    finally:
        strong.uninstall()
    assert stale_strong == 0

    # Weak configuration.
    clock, db_w, container_w, weak = make_weak_app(ttl=1000.0)
    try:
        stale_weak = _drive_and_count_stale(container_w)
    finally:
        weak.uninstall()
    assert stale_weak > 0


def _drive_and_count_stale(container) -> int:
    """Interleave writes and reads; count reads missing the newest note."""
    stale = 0
    container.post("/add", {"id": "0", "topic": "a", "body": "seed"})
    for i in range(1, 6):
        container.get("/view_topic", {"topic": "a"})
        container.post("/add", {"id": str(i), "topic": "a", "body": f"v{i}"})
        page = container.get("/view_topic", {"topic": "a"})
        if f"v{i}" not in page.body:
            stale += 1
    return stale
