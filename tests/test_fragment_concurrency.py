"""Concurrent partial dooming: a write killing one fragment while
another fragment of the same page is mid-assembly.

The oracle is the TriggerInvalidationBridge contract from
tests/test_external_bridge_concurrency.py, applied per *fragment*: a
page assembles two fragments (one per note); direct database writers
raise each note's score and its committed floor; readers parse both
scores out of every assembled page and must never see either fragment
below its floor.  A page stitched from one fresh and one stale-beyond-
the-floor fragment -- the mixed-page hazard fragment caching introduces
-- fails this immediately.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.apps.html import fragment
from repro.cache.autowebcache import AutoWebCache
from repro.cache.external import TriggerInvalidationBridge
from repro.cluster import ClusterAutoWebCache
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import AddNoteServlet, make_notes_db

N_NOTES = 2
N_READERS = 10
WRITES_PER_WRITER = 40
READS_PER_READER = 50


class PairServlet(HttpServlet):
    """One fragment per note: the partial-doom surface."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        response.write("<pair>")
        for note_id in range(1, N_NOTES + 1):
            fragment(
                response,
                "pair/note",
                {"id": str(note_id)},
                lambda note_id=note_id: self._write_note(response, note_id),
            )
        response.write("</pair>")

    def _write_note(self, response, note_id: int) -> None:
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT score FROM notes WHERE id = ?", (note_id,)
        )
        if result.next():
            response.write(f"[{note_id}:{result.get('score')}]")


def build_pair_app():
    db = make_notes_db()
    connection = connect(db)
    container = ServletContainer()
    container.register("/pair", PairServlet(connection))
    container.register("/add", AddNoteServlet(connection))
    return db, container


def _parse_scores(body: str) -> dict[int, int]:
    # PairServlet renders "[id:score]" per fragment.
    scores: dict[int, int] = {}
    for chunk in body.split("[")[1:]:
        note_id, rest = chunk.split(":", 1)
        scores[int(note_id)] = int(rest.split("]", 1)[0])
    return scores


def _run_partial_doom_race(db, container, awc):
    for i in range(N_NOTES):
        response = container.post(
            "/add",
            {"id": str(i + 1), "topic": "pair", "body": f"n{i}", "score": "0"},
        )
        assert response.status == 200

    floor = {i + 1: 0 for i in range(N_NOTES)}
    floor_lock = threading.Lock()
    violations: list[str] = []
    errors: list[str] = []
    barrier = threading.Barrier(N_NOTES + N_READERS)

    def writer(note_id: int) -> None:
        try:
            barrier.wait(timeout=10)
            for value in range(1, WRITES_PER_WRITER + 1):
                # The trigger invalidates synchronously inside
                # update(): the doomed fragment AND every page whose
                # body embeds its text are gone before the floor rises.
                db.update(
                    "UPDATE notes SET score = ? WHERE id = ?", (value, note_id)
                )
                with floor_lock:
                    floor[note_id] = value
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"writer {note_id}: {type(exc).__name__}: {exc}")

    def reader(index: int) -> None:
        try:
            barrier.wait(timeout=10)
            for _ in range(READS_PER_READER):
                with floor_lock:
                    committed = dict(floor)
                response = container.get("/pair")
                assert response.status == 200
                seen = _parse_scores(response.body)
                assert set(seen) == set(committed), response.body
                for note_id, value in seen.items():
                    if value < committed[note_id]:
                        violations.append(
                            f"note {note_id}: fragment showed {value}, "
                            f"floor was {committed[note_id]} "
                            f"(page: {response.body})"
                        )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"reader {index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=writer, args=(i + 1,), daemon=True)
        for i in range(N_NOTES)
    ] + [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(N_READERS)
    ]
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0002)
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        sys.setswitchinterval(old_interval)
    assert not any(thread.is_alive() for thread in threads), "stress hung"
    assert errors == []
    assert violations == [], violations[:5]
    assert awc.cache.open_flights == 0


@pytest.mark.concurrency
def test_partial_fragment_doom_never_serves_mixed_page_single_node():
    db, container = build_pair_app()
    awc = AutoWebCache()
    TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
    awc.install(container.servlet_classes)
    try:
        _run_partial_doom_race(db, container, awc)
    finally:
        awc.uninstall()


@pytest.mark.concurrency
def test_partial_fragment_doom_never_serves_mixed_page_cluster():
    """Same oracle on a 4-node ring: the page and its two fragments
    hash to different shards, so the doom must climb the router-level
    containment closure before the writer's update() returns."""
    db, container = build_pair_app()
    awc = ClusterAutoWebCache(n_nodes=4)
    TriggerInvalidationBridge(awc.router, awc.collector).attach(db)
    awc.install(container.servlet_classes)
    try:
        _run_partial_doom_race(db, container, awc)
        for node in awc.router.nodes():
            assert node.last_applied_seq == awc.bus.seq
    finally:
        awc.uninstall()
