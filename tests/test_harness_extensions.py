"""Harness tests for the extension configurations (result cache, weak
TTL) and spec labelling."""

import pytest

from repro.cache.analysis import InvalidationPolicy
from repro.harness.experiments import ExperimentDefaults, RunSpec, run_cell

FAST = ExperimentDefaults(warmup=10.0, duration=25.0)


class TestLabels:
    def test_all_labels_distinct(self):
        specs = [
            RunSpec(app="rubis", cached=False),
            RunSpec(app="rubis", cached=False, result_cache=True),
            RunSpec(app="rubis"),
            RunSpec(app="rubis", result_cache=True),
            RunSpec(app="rubis", forced_miss=True),
            RunSpec(app="rubis", weak_ttl=30.0),
            RunSpec(app="tpcw", best_seller_window=True),
        ]
        labels = [spec.label for spec in specs]
        assert len(labels) == len(set(labels))

    def test_weak_label_contains_ttl(self):
        assert "30" in RunSpec(app="rubis", weak_ttl=30.0).label


class TestResultCacheCells:
    def test_result_cache_only_cell(self):
        outcome = run_cell(
            RunSpec(app="rubis", cached=False, result_cache=True, defaults=FAST),
            30,
        )
        assert outcome.cache_stats is None
        assert outcome.result_cache_stats is not None
        assert outcome.result_cache_stats.lookups > 0
        assert outcome.result.errors == 0

    def test_combined_cell(self):
        outcome = run_cell(
            RunSpec(app="rubis", cached=True, result_cache=True, defaults=FAST),
            30,
        )
        assert outcome.cache_stats is not None
        assert outcome.result_cache_stats is not None

    def test_unweaves_after_result_cache_cell(self):
        from repro.db.dbapi import Statement

        run_cell(
            RunSpec(app="rubis", cached=False, result_cache=True, defaults=FAST),
            10,
        )
        method = vars(Statement)["execute_query"]
        assert not getattr(method, "__aw_woven__", False)


class TestWeakTtlCells:
    def test_weak_ttl_cell_has_no_invalidations(self):
        outcome = run_cell(
            RunSpec(app="rubis", weak_ttl=120.0, defaults=FAST), 30
        )
        stats = outcome.cache_stats
        assert stats.invalidated_pages == 0
        assert stats.intersection_tests == 0
        # TTL hits are counted as semantic.
        assert stats.semantic_hits > 0

    def test_weak_ttl_with_policy_still_runs(self):
        outcome = run_cell(
            RunSpec(
                app="rubis",
                weak_ttl=60.0,
                policy=InvalidationPolicy.COLUMN_ONLY,
                defaults=FAST,
            ),
            20,
        )
        assert outcome.result.errors == 0


class TestCurveHelpers:
    def test_quick_defaults(self):
        from repro.harness.experiments import quick_defaults, scaled_spec

        defaults = quick_defaults()
        spec = scaled_spec(RunSpec(app="rubis"), defaults)
        assert spec.defaults.duration == defaults.duration

    def test_run_cell_rejects_bad_app(self):
        with pytest.raises(ValueError):
            run_cell(RunSpec(app="nope", defaults=FAST), 5)
