"""WSGI adapter tests."""

import io
import socket
import threading
import urllib.request

import pytest

from repro.web.container import ServletContainer
from repro.web.servlet import HttpServlet
from repro.web.wsgi import WsgiAdapter, start_threaded_server

from tests.conftest import build_notes_app
from repro.cache.autowebcache import AutoWebCache


class Echo(HttpServlet):
    def do_get(self, request, response):
        response.write(f"q={request.get_parameter('q', '')}"
                       f";c={request.get_cookie('sid', '-')}")

    def do_post(self, request, response):
        response.write(f"posted:{request.get_parameter('v', '')}")


def call(adapter, method="GET", path="/", query="", body="", cookies=""):
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "wsgi.input": io.BytesIO(body.encode()),
    }
    if body:
        environ["CONTENT_LENGTH"] = str(len(body))
        environ["CONTENT_TYPE"] = "application/x-www-form-urlencoded"
    if cookies:
        environ["HTTP_COOKIE"] = cookies
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = headers

    chunks = adapter(environ, start_response)
    captured["body"] = b"".join(chunks).decode()
    return captured


def make_adapter():
    container = ServletContainer()
    container.register("/echo", Echo())
    return WsgiAdapter(container)


def test_get_with_query_string():
    result = call(make_adapter(), path="/echo", query="q=hello")
    assert result["status"].startswith("200")
    assert "q=hello" in result["body"]


def test_post_form_body():
    result = call(make_adapter(), method="POST", path="/echo", body="v=42")
    assert result["body"] == "posted:42"


def test_cookies_passed_through():
    result = call(make_adapter(), path="/echo", cookies="sid=abc; other=1")
    assert "c=abc" in result["body"]


def test_unknown_path_is_404():
    result = call(make_adapter(), path="/ghost")
    assert result["status"].startswith("404")


def test_content_length_header_set():
    result = call(make_adapter(), path="/echo", query="q=x")
    headers = dict(result["headers"])
    assert headers["Content-Length"] == str(len(result["body"]))


def test_error_becomes_500():
    class Boom(HttpServlet):
        def do_get(self, request, response):
            raise RuntimeError("nope")

    container = ServletContainer()
    container.register("/boom", Boom())
    result = call(WsgiAdapter(container), path="/boom")
    assert result["status"].startswith("500")


def test_container_level_failure_becomes_500_not_dropped_connection():
    """Failures outside servlet dispatch (observer, session layer) used
    to propagate raw into wsgiref and kill the connection."""
    container = ServletContainer()
    container.register("/echo", Echo())

    def bad_observer(request, response):
        raise ValueError("observer bug")

    container.observer = bad_observer
    result = call(WsgiAdapter(container), path="/echo", query="q=x")
    assert result["status"].startswith("500")
    assert "500" in result["body"]
    headers = dict(result["headers"])
    assert headers["Content-Length"] == str(len(result["body"]))


def test_adapter_500_path_leaves_consistency_context_closed():
    """After an adapter-level 500 the read aspect's context must be
    closed: the next request through the same thread must not trip
    'a request context is already open'."""
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        db.update(
            "INSERT INTO notes (id, topic, body, score) VALUES (1, 'a', 'x', 0)"
        )
        calls = {"n": 0}

        def flaky_observer(request, response):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("observer bug")

        container.observer = flaky_observer
        adapter = WsgiAdapter(container)
        first = call(adapter, path="/view_note", query="id=1")
        assert first["status"].startswith("500")
        # Same thread, fresh request: context was closed by the aspect's
        # finally even though the adapter errored after dispatch.
        second = call(adapter, path="/view_note", query="id=1")
        assert second["status"].startswith("200")
        assert "x|0" in second["body"]
        assert awc.cache.open_flights == 0
    finally:
        awc.uninstall()


class HeaderEcho(HttpServlet):
    def do_get(self, request, response):
        response.write(";".join(
            f"{name}={value}" for name, value in sorted(request.headers.items())
        ))

    def do_post(self, request, response):
        self.do_get(request, response)


def test_content_type_and_length_mapped_into_headers():
    """CGI's unprefixed CONTENT_TYPE/CONTENT_LENGTH must surface as
    Content-Type/Content-Length request headers."""
    container = ServletContainer()
    container.register("/headers", HeaderEcho())
    result = call(
        WsgiAdapter(container),
        method="POST",
        path="/headers",
        body="v=1",
    )
    assert "Content-Type=application/x-www-form-urlencoded" in result["body"]
    assert "Content-Length=3" in result["body"]


def test_cookie_header_not_duplicated_into_headers():
    """HTTP_COOKIE is parsed into the cookies dict; the raw Cookie
    header must not leak into request.headers as a duplicate."""
    container = ServletContainer()
    container.register("/headers", HeaderEcho())
    result = call(
        WsgiAdapter(container), path="/headers", cookies="sid=abc; other=1"
    )
    assert "Cookie=" not in result["body"]
    # Other HTTP_* headers still map through.
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": "/headers",
        "QUERY_STRING": "",
        "wsgi.input": io.BytesIO(b""),
        "HTTP_COOKIE": "sid=abc",
        "HTTP_USER_AGENT": "pytest",
    }
    captured = {}
    chunks = WsgiAdapter(container)(
        environ, lambda s, h: captured.update(status=s)
    )
    body = b"".join(chunks).decode()
    assert "User-Agent=pytest" in body
    assert "Cookie=" not in body


@pytest.mark.concurrency
def test_threaded_http_server_serves_concurrent_clients():
    """End to end: ThreadingMixIn server + woven cache over real sockets."""
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    server = None
    try:
        for i in range(4):
            db.update(
                "INSERT INTO notes (id, topic, body, score) "
                "VALUES (?, ?, ?, ?)",
                (i, f"t{i}", f"body{i}", 0),
            )
        server, server_thread = start_threaded_server(container)
        port = server.server_port
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def client(topic: str) -> None:
            try:
                barrier.wait(timeout=5)
                for _ in range(5):
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/view_topic?topic={topic}",
                        timeout=10,
                    ) as response:
                        assert response.status == 200
                        assert topic in response.read().decode()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(f"t{i % 4}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert len(awc.cache) == 4  # one page per topic, no duplication
        assert awc.stats.lookups == 40
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        awc.uninstall()


class TestThreadedServerShutdown:
    """Regression: shutdown must close the listening socket and join the
    serving thread -- the old tuple-returning form leaked both."""

    def test_shutdown_releases_port_and_joins_thread(self):
        db, container = build_notes_app()
        handle = start_threaded_server(container)
        port = handle.port
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/view_topic?topic=a", timeout=10
        ) as response:
            assert response.status == 200
        handle.shutdown()
        server, thread = handle  # tuple-unpack compatibility preserved
        assert not thread.is_alive()
        with socket.socket() as probe:
            assert probe.connect_ex(("127.0.0.1", port)) != 0

    def test_shutdown_is_idempotent(self):
        db, container = build_notes_app()
        handle = start_threaded_server(container)
        handle.shutdown()
        handle.shutdown()  # second call must be a no-op, not an error

    def test_context_manager_shuts_down(self):
        db, container = build_notes_app()
        with start_threaded_server(container) as handle:
            port = handle.port
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/view_topic?topic=a", timeout=10
            ) as response:
                assert response.status == 200
        with socket.socket() as probe:
            assert probe.connect_ex(("127.0.0.1", port)) != 0


def test_cached_app_served_over_wsgi():
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        adapter = WsgiAdapter(container)
        call(
            adapter,
            method="POST",
            path="/add",
            body="id=1&topic=a&body=hello&score=0",
        )
        first = call(adapter, path="/view_topic", query="topic=a")
        second = call(adapter, path="/view_topic", query="topic=a")
        assert first["body"] == second["body"]
        assert "hello" in first["body"]
        assert awc.stats.hits == 1
    finally:
        awc.uninstall()


class FailingSessions:
    """A session layer that explodes during resolution (adapter 500 path)."""

    def resolve(self, request, response):
        raise RuntimeError("session store down")


class TestAccessLog:
    def make_logged_adapter(self, container=None, lines=None):
        if container is None:
            container = ServletContainer()
            container.register("/echo", Echo())
        lines = lines if lines is not None else []
        return WsgiAdapter(container, access_log=True, log=lines.append), lines

    def test_off_by_default(self, capsys):
        result = call(make_adapter(), path="/echo", query="q=1")
        assert result["status"].startswith("200")
        assert capsys.readouterr().out == ""

    def test_one_structured_line_per_request(self):
        adapter, lines = self.make_logged_adapter(lines=[])
        result = call(adapter, path="/echo", query="q=hi")
        assert len(lines) == 1
        line = lines[0]
        assert "method=GET" in line
        assert "path=/echo" in line
        assert "status=200" in line
        assert f"bytes={len(result['body'])}" in line
        assert "duration_ms=" in line
        # The trace id is a 16-hex correlation token.
        trace = dict(
            part.split("=", 1) for part in line.split() if "=" in part
        )["trace"]
        assert len(trace) == 16
        int(trace, 16)

    def test_404_path_logged(self):
        adapter, lines = self.make_logged_adapter(lines=[])
        call(adapter, path="/ghost")
        assert "status=404" in lines[0]

    def test_500_path_logs_error_status(self):
        container = ServletContainer(session_manager=FailingSessions())
        container.register("/echo", Echo())
        adapter, lines = self.make_logged_adapter(container, lines=[])
        result = call(adapter, path="/echo")
        assert result["status"].startswith("500")
        assert len(lines) == 1
        assert "status=500" in lines[0]
        assert "path=/echo" in lines[0]

    def test_trace_ids_differ_per_request(self):
        adapter, lines = self.make_logged_adapter(lines=[])
        call(adapter, path="/echo")
        call(adapter, path="/echo")
        traces = {line.rsplit("trace=", 1)[1] for line in lines}
        assert len(traces) == 2
