"""WSGI adapter tests."""

import io

from repro.web.container import ServletContainer
from repro.web.servlet import HttpServlet
from repro.web.wsgi import WsgiAdapter

from tests.conftest import build_notes_app
from repro.cache.autowebcache import AutoWebCache


class Echo(HttpServlet):
    def do_get(self, request, response):
        response.write(f"q={request.get_parameter('q', '')}"
                       f";c={request.get_cookie('sid', '-')}")

    def do_post(self, request, response):
        response.write(f"posted:{request.get_parameter('v', '')}")


def call(adapter, method="GET", path="/", query="", body="", cookies=""):
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "wsgi.input": io.BytesIO(body.encode()),
    }
    if body:
        environ["CONTENT_LENGTH"] = str(len(body))
        environ["CONTENT_TYPE"] = "application/x-www-form-urlencoded"
    if cookies:
        environ["HTTP_COOKIE"] = cookies
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = headers

    chunks = adapter(environ, start_response)
    captured["body"] = b"".join(chunks).decode()
    return captured


def make_adapter():
    container = ServletContainer()
    container.register("/echo", Echo())
    return WsgiAdapter(container)


def test_get_with_query_string():
    result = call(make_adapter(), path="/echo", query="q=hello")
    assert result["status"].startswith("200")
    assert "q=hello" in result["body"]


def test_post_form_body():
    result = call(make_adapter(), method="POST", path="/echo", body="v=42")
    assert result["body"] == "posted:42"


def test_cookies_passed_through():
    result = call(make_adapter(), path="/echo", cookies="sid=abc; other=1")
    assert "c=abc" in result["body"]


def test_unknown_path_is_404():
    result = call(make_adapter(), path="/ghost")
    assert result["status"].startswith("404")


def test_content_length_header_set():
    result = call(make_adapter(), path="/echo", query="q=x")
    headers = dict(result["headers"])
    assert headers["Content-Length"] == str(len(result["body"]))


def test_error_becomes_500():
    class Boom(HttpServlet):
        def do_get(self, request, response):
            raise RuntimeError("nope")

    container = ServletContainer()
    container.register("/boom", Boom())
    result = call(WsgiAdapter(container), path="/boom")
    assert result["status"].startswith("500")


def test_cached_app_served_over_wsgi():
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        adapter = WsgiAdapter(container)
        call(
            adapter,
            method="POST",
            path="/add",
            body="id=1&topic=a&body=hello&score=0",
        )
        first = call(adapter, path="/view_topic", query="topic=a")
        second = call(adapter, path="/view_topic", query="topic=a")
        assert first["body"] == second["body"]
        assert "hello" in first["body"]
        assert awc.stats.hits == 1
    finally:
        awc.uninstall()
