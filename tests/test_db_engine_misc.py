"""Database engine odds and ends."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema
from repro.errors import DatabaseError, SchemaError


@pytest.fixture
def db():
    database = Database("misc")
    database.create_table(
        TableSchema(
            "t",
            [Column("id", ColumnType.INT), Column("v", ColumnType.INT)],
            primary_key="id",
        )
    )
    return database


def test_stats_snapshot_is_independent(db):
    db.update("INSERT INTO t (id, v) VALUES (1, 1)")
    snapshot = db.stats.snapshot()
    db.query("SELECT * FROM t")
    assert db.stats.queries == snapshot.queries + 1
    assert snapshot.queries != db.stats.queries


def test_insert_rows_bulk_load(db):
    count = db.insert_rows("t", [{"id": i, "v": i * 2} for i in range(5)])
    assert count == 5
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 5


def test_insert_rows_updates_auto_increment(db):
    db.insert_rows("t", [{"id": 10, "v": 0}])
    result = db.execute("INSERT INTO t (v) VALUES (1)")
    assert result.last_insert_id == 11


def test_duplicate_create_table_rejected(db):
    with pytest.raises(SchemaError):
        db.create_table(
            TableSchema("t", [Column("id", ColumnType.INT)], primary_key="id")
        )


def test_drop_unknown_table_rejected(db):
    with pytest.raises(SchemaError):
        db.drop_table("ghost")


def test_table_names_sorted(db):
    db.create_table(TableSchema("a_first", [Column("x", ColumnType.INT)]))
    assert db.table_names == ["a_first", "t"]


def test_ddl_inside_transaction_rejected(db):
    db.begin()
    try:
        with pytest.raises(DatabaseError):
            db.execute("CREATE TABLE fresh (id INT PRIMARY KEY)")
    finally:
        db.rollback()


def test_named_database():
    assert Database("mydb").name == "mydb"


def test_explain_uses_parse_cache(db):
    sql = "SELECT v FROM t WHERE id = 1"
    db.explain(sql)
    cached = db._parse(sql)
    assert db._parse(sql) is cached
