"""Exposition: Prometheus text format, trace rendering, the servlets."""

import pytest

from repro.cache.semantics import SemanticsRegistry
from repro.obs import (
    METRICS_URI,
    TRACES_URI,
    MetricsHub,
    Tracer,
    mount_observability,
    render_metrics,
    render_trace,
    render_traces,
)
from repro.web.container import ServletContainer


@pytest.fixture
def populated():
    hub = MetricsHub(bounds=(0.001, 0.01))
    tracer = Tracer()
    hub.observe("servlet", "/view_item", 0.005)
    hub.observe("servlet", "/view_item", 0.05)
    with tracer.span("servlet GET /view_item", tags={"status": "200"}):
        with tracer.span("cache.lookup") as inner:
            inner.set_tag("outcome", "miss")
    return hub, tracer


class TestMetricsExposition:
    def test_histogram_series_shape(self, populated):
        hub, tracer = populated
        text = render_metrics(hub, tracer)
        assert "# TYPE repro_phase_latency_seconds histogram" in text
        assert (
            'repro_phase_latency_seconds_bucket{phase="servlet",'
            'request="/view_item",le="0.001"} 0' in text
        )
        assert (
            'repro_phase_latency_seconds_bucket{phase="servlet",'
            'request="/view_item",le="0.01"} 1' in text
        )
        # +Inf bucket equals the total count, and _count matches.
        assert 'le="+Inf"} 2' in text
        assert (
            'repro_phase_latency_seconds_count{phase="servlet",'
            'request="/view_item"} 2' in text
        )

    def test_tracer_gauges(self, populated):
        hub, tracer = populated
        text = render_metrics(hub, tracer)
        assert "repro_tracer_spans_recorded_total 2" in text
        assert "repro_tracer_traces_buffered 1" in text

    def test_label_escaping(self):
        hub = MetricsHub(bounds=(1.0,))
        hub.observe("servlet", 'with"quote', 0.1)
        text = render_metrics(hub)
        assert 'request="with\\"quote"' in text


class TestTraceRendering:
    def test_tree_indentation_follows_parent_links(self, populated):
        _hub, tracer = populated
        trace_id, spans = tracer.last_trace()
        text = render_trace(trace_id, spans)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace_id}")
        assert "servlet GET /view_item" in lines[1]
        # Child is indented one level deeper than the root.
        assert lines[2].index("cache.lookup") > lines[1].index("servlet")
        assert "outcome=miss" in lines[2]

    def test_orphan_span_renders_at_root(self):
        tracer = Tracer()
        from repro.obs import SpanContext

        remote = SpanContext("feedfacefeedface", "deadbeef")
        with tracer.span("bus.deliver", parent=remote):
            pass
        text = render_trace(*tracer.last_trace())
        assert "bus.deliver" in text

    def test_render_traces_most_recent_first_with_limit(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        text = render_traces(tracer, limit=1)
        assert "second" in text and "first" not in text

    def test_empty_tracer(self):
        assert "no traces" in render_traces(Tracer())


class TestExpositionServlets:
    def make_container(self, populated):
        hub, tracer = populated
        container = ServletContainer()
        semantics = SemanticsRegistry()
        mount_observability(container, hub, tracer, semantics=semantics)
        return container, semantics

    def test_metrics_endpoint(self, populated):
        container, _sem = self.make_container(populated)
        response = container.get(METRICS_URI)
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "repro_phase_latency_seconds_bucket" in response.body

    def test_traces_endpoint(self, populated):
        container, _sem = self.make_container(populated)
        response = container.get(TRACES_URI)
        assert response.status == 200
        assert "servlet GET /view_item" in response.body

    def test_traces_endpoint_single_trace_lookup(self, populated):
        _hub, tracer = populated
        container, _sem = self.make_container(populated)
        trace_id, _spans = tracer.last_trace()
        response = container.get(TRACES_URI, {"trace": trace_id})
        assert trace_id in response.body
        missing = container.get(TRACES_URI, {"trace": "nope"})
        assert missing.status == 404

    def test_mount_marks_uris_uncacheable(self, populated):
        _container, semantics = self.make_container(populated)
        assert METRICS_URI in semantics.uncacheable_uris
        assert TRACES_URI in semantics.uncacheable_uris


#: A hand-built ClusterRouter.snapshot() shape: enough keys for the
#: cluster metric families without spinning up a ring.
CLUSTER_SNAPSHOT = {
    "cluster": {"admitted": 4, "denied": 1, "shadow_denied": 0},
    "bus": {
        "mode": "bounded",
        "queue_depths": {"alpha": 3, "beta": 0},
        "delivery_lags": {
            "alpha": {"last": 0.012, "max": 0.25},
            "beta": {"last": 0.0, "max": 0.0},
        },
    },
    "membership": {
        "alpha": {"state": "alive", "counter": 9, "silence_seconds": 0.4},
        "beta": {"state": "suspect", "counter": 5, "silence_seconds": 3.2},
    },
}


class TestClusterExposition:
    def test_bus_backpressure_gauges(self):
        text = render_metrics(MetricsHub(), cache_snapshot=CLUSTER_SNAPSHOT)
        assert "# TYPE repro_bus_queue_depth gauge" in text
        assert 'repro_bus_queue_depth{node="alpha"} 3' in text
        assert 'repro_bus_queue_depth{node="beta"} 0' in text
        assert (
            'repro_bus_delivery_lag_seconds{node="alpha",window="last"} '
            "0.012000" in text
        )
        assert (
            'repro_bus_delivery_lag_seconds{node="alpha",window="max"} '
            "0.250000" in text
        )

    def test_membership_state_set(self):
        # One series per (node, state), 1 only on the current state --
        # the Prometheus state-set idiom.
        text = render_metrics(MetricsHub(), cache_snapshot=CLUSTER_SNAPSHOT)
        assert 'repro_membership_state{node="alpha",state="alive"} 1' in text
        assert 'repro_membership_state{node="alpha",state="suspect"} 0' in text
        assert 'repro_membership_state{node="beta",state="suspect"} 1' in text
        assert 'repro_membership_state{node="beta",state="dead"} 0' in text
        assert (
            'repro_membership_silence_seconds{node="beta"} 3.200000' in text
        )

    def test_cluster_aggregate_supplies_admission_counters(self):
        # The verdict counters come from the nested "cluster" aggregate,
        # not the top level of the cluster snapshot.
        text = render_metrics(MetricsHub(), cache_snapshot=CLUSTER_SNAPSHOT)
        assert 'repro_admission_verdicts_total{verdict="admitted"} 4' in text
        assert 'repro_admission_verdicts_total{verdict="denied"} 1' in text

    def test_single_node_snapshot_emits_no_cluster_families(self):
        text = render_metrics(MetricsHub(), cache_snapshot={"admitted": 2})
        assert 'verdict="admitted"} 2' in text
        assert "repro_bus_queue_depth" not in text
        assert "repro_membership_state" not in text

    def test_live_cluster_metrics_endpoint(self):
        # End to end: a bounded-bus replicated cluster serving its own
        # /_metrics exposes queue depth, lag and membership for every
        # node, snapshotted at serve time.
        from repro.cluster import ClusterAutoWebCache
        from tests.conftest import build_notes_app

        _db, container = build_notes_app()
        awc = ClusterAutoWebCache(
            n_nodes=3,
            replication=2,
            bus_mode="bounded",
            staleness_bound=5.0,
            bus_pump=False,
        )
        awc.install(container.servlet_classes)
        hub = MetricsHub()
        mount_observability(
            container, hub, Tracer(), semantics=awc.semantics, stats=awc.stats
        )
        try:
            container.get("/view_topic", {"topic": "0"})
            container.post(
                "/add", {"id": "900", "topic": "0", "body": "note"}
            )
            response = container.get(METRICS_URI)
        finally:
            awc.uninstall()
        assert response.status == 200
        text = response.body
        for node in ("node-0", "node-1", "node-2"):
            assert f'repro_bus_queue_depth{{node="{node}"}}' in text
            assert (
                f'repro_membership_state{{node="{node}",state="alive"}} 1'
                in text
            )
        # The write enqueued without delivering (no pump, no reads
        # after), so at least one queue is visibly non-empty.
        depths = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_bus_queue_depth{")
        ]
        assert sum(depths) > 0
