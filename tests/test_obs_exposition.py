"""Exposition: Prometheus text format, trace rendering, the servlets."""

import pytest

from repro.cache.semantics import SemanticsRegistry
from repro.obs import (
    METRICS_URI,
    TRACES_URI,
    MetricsHub,
    Tracer,
    mount_observability,
    render_metrics,
    render_trace,
    render_traces,
)
from repro.web.container import ServletContainer


@pytest.fixture
def populated():
    hub = MetricsHub(bounds=(0.001, 0.01))
    tracer = Tracer()
    hub.observe("servlet", "/view_item", 0.005)
    hub.observe("servlet", "/view_item", 0.05)
    with tracer.span("servlet GET /view_item", tags={"status": "200"}):
        with tracer.span("cache.lookup") as inner:
            inner.set_tag("outcome", "miss")
    return hub, tracer


class TestMetricsExposition:
    def test_histogram_series_shape(self, populated):
        hub, tracer = populated
        text = render_metrics(hub, tracer)
        assert "# TYPE repro_phase_latency_seconds histogram" in text
        assert (
            'repro_phase_latency_seconds_bucket{phase="servlet",'
            'request="/view_item",le="0.001"} 0' in text
        )
        assert (
            'repro_phase_latency_seconds_bucket{phase="servlet",'
            'request="/view_item",le="0.01"} 1' in text
        )
        # +Inf bucket equals the total count, and _count matches.
        assert 'le="+Inf"} 2' in text
        assert (
            'repro_phase_latency_seconds_count{phase="servlet",'
            'request="/view_item"} 2' in text
        )

    def test_tracer_gauges(self, populated):
        hub, tracer = populated
        text = render_metrics(hub, tracer)
        assert "repro_tracer_spans_recorded_total 2" in text
        assert "repro_tracer_traces_buffered 1" in text

    def test_label_escaping(self):
        hub = MetricsHub(bounds=(1.0,))
        hub.observe("servlet", 'with"quote', 0.1)
        text = render_metrics(hub)
        assert 'request="with\\"quote"' in text


class TestTraceRendering:
    def test_tree_indentation_follows_parent_links(self, populated):
        _hub, tracer = populated
        trace_id, spans = tracer.last_trace()
        text = render_trace(trace_id, spans)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace_id}")
        assert "servlet GET /view_item" in lines[1]
        # Child is indented one level deeper than the root.
        assert lines[2].index("cache.lookup") > lines[1].index("servlet")
        assert "outcome=miss" in lines[2]

    def test_orphan_span_renders_at_root(self):
        tracer = Tracer()
        from repro.obs import SpanContext

        remote = SpanContext("feedfacefeedface", "deadbeef")
        with tracer.span("bus.deliver", parent=remote):
            pass
        text = render_trace(*tracer.last_trace())
        assert "bus.deliver" in text

    def test_render_traces_most_recent_first_with_limit(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        text = render_traces(tracer, limit=1)
        assert "second" in text and "first" not in text

    def test_empty_tracer(self):
        assert "no traces" in render_traces(Tracer())


class TestExpositionServlets:
    def make_container(self, populated):
        hub, tracer = populated
        container = ServletContainer()
        semantics = SemanticsRegistry()
        mount_observability(container, hub, tracer, semantics=semantics)
        return container, semantics

    def test_metrics_endpoint(self, populated):
        container, _sem = self.make_container(populated)
        response = container.get(METRICS_URI)
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "repro_phase_latency_seconds_bucket" in response.body

    def test_traces_endpoint(self, populated):
        container, _sem = self.make_container(populated)
        response = container.get(TRACES_URI)
        assert response.status == 200
        assert "servlet GET /view_item" in response.body

    def test_traces_endpoint_single_trace_lookup(self, populated):
        _hub, tracer = populated
        container, _sem = self.make_container(populated)
        trace_id, _spans = tracer.last_trace()
        response = container.get(TRACES_URI, {"trace": trace_id})
        assert trace_id in response.body
        missing = container.get(TRACES_URI, {"trace": "nope"})
        assert missing.status == 404

    def test_mount_marks_uris_uncacheable(self, populated):
        _container, semantics = self.make_container(populated)
        assert METRICS_URI in semantics.uncacheable_uris
        assert TRACES_URI in semantics.uncacheable_uris
