"""Concurrency: contextvar isolation of request contexts across threads.

The paper's Tomcat served requests on a thread pool; the consistency
collector therefore must not cross-contaminate concurrent requests.
Our collector is contextvar-based, so each thread (and each asyncio
task) gets its own request context.
"""

import threading

from repro.cache.autowebcache import AutoWebCache

from tests.conftest import build_notes_app


def test_parallel_requests_keep_contexts_separate():
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        for i in range(8):
            db.update(
                "INSERT INTO notes (id, topic, body, score) "
                "VALUES (?, ?, ?, ?)",
                (i, f"t{i % 4}", f"body{i}", 0),
            )
        errors: list[Exception] = []
        barrier = threading.Barrier(4)

        def worker(topic: str) -> None:
            try:
                barrier.wait(timeout=5)
                for _ in range(50):
                    response = container.get("/view_topic", {"topic": topic})
                    assert f">{topic}<" in response.body or topic in response.body
                    assert response.status == 200
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        # Every topic page is cached exactly once; contexts never mixed.
        assert len(awc.cache) == 4
        assert awc.stats.misses_cold == 4
        assert awc.stats.hits == 4 * 50 - 4
    finally:
        awc.uninstall()


def test_interleaved_read_write_threads_stay_consistent():
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        db.update(
            "INSERT INTO notes (id, topic, body, score) VALUES (0, 'a', 'x', 0)"
        )
        stop = threading.Event()
        errors: list[Exception] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    response = container.get("/view_note", {"id": "0"})
                    assert response.status == 200
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer() -> None:
            try:
                for score in range(40):
                    response = container.post(
                        "/score", {"id": "0", "score": str(score)}
                    )
                    assert response.status == 200
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        # Quiescent check (readers stopped): one final write then read
        # must surface the new value.  (During the concurrent phase a
        # read that overlaps a write may legitimately cache the
        # pre-write page an instant before invalidation -- the classic
        # check-then-insert race the paper's single-node deployment
        # shares -- so the in-flight phase only asserts liveness.)
        container.post("/score", {"id": "0", "score": "99"})
        response = container.get("/view_note", {"id": "0"})
        assert "|99" in response.body
    finally:
        awc.uninstall()
