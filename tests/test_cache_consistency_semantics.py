"""ConsistencyCollector and SemanticsRegistry tests."""

import pytest

from repro.cache.consistency import ConsistencyCollector
from repro.cache.entry import QueryInstance
from repro.cache.semantics import SemanticsRegistry
from repro.errors import ConsistencyError
from repro.sql.template import templateize
from repro.web.http import HttpRequest


def instance(sql, params):
    template, values = templateize(sql, params)
    return QueryInstance(template, values)


class TestCollector:
    def test_read_context_records_reads(self):
        collector = ConsistencyCollector()
        context = collector.begin("read", "/p")
        collector.record_read(instance("SELECT a FROM t WHERE b = ?", (1,)))
        assert collector.end() is context
        assert len(context.reads) == 1
        assert collector.current() is None

    def test_write_context_ignores_reads(self):
        collector = ConsistencyCollector()
        context = collector.begin("write", "/p")
        collector.record_read(instance("SELECT a FROM t WHERE b = ?", (1,)))
        collector.record_write(instance("DELETE FROM t WHERE b = ?", (1,)))
        collector.end()
        assert context.reads == []
        assert len(context.writes) == 1

    def test_read_context_records_writes_too(self):
        # A "read" handler that writes must still trigger invalidation.
        collector = ConsistencyCollector()
        context = collector.begin("read", "/p")
        collector.record_write(instance("DELETE FROM t", ()))
        collector.end()
        assert len(context.writes) == 1

    def test_no_context_ignores_everything(self):
        collector = ConsistencyCollector()
        collector.record_read(instance("SELECT a FROM t", ()))
        collector.record_write(instance("DELETE FROM t", ()))
        collector.mark_aborted()  # no-op without context

    def test_nested_begin_rejected(self):
        collector = ConsistencyCollector()
        collector.begin("read", "/p")
        with pytest.raises(ConsistencyError):
            collector.begin("read", "/q")
        collector.end()

    def test_end_without_begin_rejected(self):
        with pytest.raises(ConsistencyError):
            ConsistencyCollector().end()

    def test_mark_aborted(self):
        collector = ConsistencyCollector()
        context = collector.begin("read", "/p")
        collector.mark_aborted()
        collector.end()
        assert context.aborted


class TestSemantics:
    def test_default_everything_cacheable(self):
        registry = SemanticsRegistry()
        assert registry.is_cacheable(HttpRequest("GET", "/x"))
        assert registry.ttl_for("/x") is None

    def test_mark_uncacheable(self):
        registry = SemanticsRegistry().mark_uncacheable("/hidden")
        assert not registry.is_cacheable(HttpRequest("GET", "/hidden"))
        assert registry.is_cacheable(HttpRequest("GET", "/other"))
        assert "/hidden" in registry.uncacheable_uris

    def test_predicate_rule(self):
        registry = SemanticsRegistry().mark_uncacheable_when(
            lambda request: request.get_parameter("private") == "1"
        )
        assert not registry.is_cacheable(HttpRequest("GET", "/x", {"private": "1"}))
        assert registry.is_cacheable(HttpRequest("GET", "/x", {"private": "0"}))

    def test_ttl_window(self):
        registry = SemanticsRegistry().set_ttl_window("/best", 30.0)
        assert registry.ttl_for("/best") == 30.0

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            SemanticsRegistry().set_ttl_window("/x", 0.0)

    def test_chaining(self):
        registry = (
            SemanticsRegistry()
            .mark_uncacheable("/a")
            .set_ttl_window("/b", 5.0)
        )
        assert not registry.is_cacheable(HttpRequest("GET", "/a"))
        assert registry.ttl_for("/b") == 5.0
