"""The cluster router: sharded serving, broadcast invalidation,
node lifecycle, and cluster-wide accounting."""

import pytest

from repro.cache.entry import QueryInstance
from repro.cluster import ClusterAutoWebCache, ClusterRouter, make_cache_factory
from repro.errors import ClusterError
from repro.sql.template import templateize
from repro.web.http import HttpRequest

from tests.conftest import build_notes_app

TOPICS = [f"topic-{i}" for i in range(12)]


@pytest.fixture
def cluster_notes_app():
    """(database, container, cluster awc over 3 nodes); always unweaves."""
    db, container = build_notes_app()
    awc = ClusterAutoWebCache(n_nodes=3)
    awc.install(container.servlet_classes)
    try:
        yield db, container, awc
    finally:
        awc.uninstall()


def populate(container, topics=TOPICS):
    for i, topic in enumerate(topics):
        response = container.post(
            "/add",
            {"id": str(i + 1), "topic": topic, "body": f"b{i}", "score": "0"},
        )
        assert response.status == 200


def warm(container, topics=TOPICS):
    for topic in topics:
        assert container.get("/view_topic", {"topic": topic}).status == 200


def assert_node_accounting_exact(awc: ClusterAutoWebCache) -> None:
    """Per-node byte and dependency-table accounting must be exact."""
    for node in awc.router.nodes():
        pages = node.cache.pages
        entries = pages.entries()
        assert pages.total_bytes == sum(entry.size for entry in entries)
        live = set(pages.keys())
        registered = {
            page_key
            for template in pages.dependencies.read_templates()
            for page_key, _vector in pages.dependencies.instances_for(template)
        }
        expected = {e.key for e in entries if not e.semantic and e.dependencies}
        assert registered <= live
        assert registered == expected


class TestShardedServing:
    def test_pages_spread_across_nodes(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        per_node = [len(node.cache) for node in awc.router.nodes()]
        assert sum(per_node) == len(TOPICS)
        assert sum(1 for count in per_node if count > 0) >= 2

    def test_each_key_lives_only_on_its_owner(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        for node in awc.router.nodes():
            for key in node.cache.pages.keys():
                assert awc.router.owner_name(key) == node.name

    def test_second_read_hits_on_owner(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        hits_before = awc.stats.hits
        warm(container)
        assert awc.stats.hits == hits_before + len(TOPICS)
        assert_node_accounting_exact(awc)

    def test_write_invalidates_page_on_remote_shard(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        # Update one topic's note through the woven app; whatever node
        # owns that topic's page must drop it.
        response = container.post("/score", {"id": "1", "score": "99"})
        assert response.status == 200
        page = container.get("/view_topic", {"topic": "topic-0"})
        assert "(99)" in page.body
        assert awc.stats.invalidated_pages == 1

    def test_unrelated_pages_survive_the_write(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        container.post("/score", {"id": "1", "score": "99"})
        hits_before = awc.stats.hits
        warm(container, TOPICS[1:])  # all other topics still cached
        assert awc.stats.hits == hits_before + len(TOPICS) - 1


class TestWriteUnion:
    def test_process_write_request_returns_union_across_nodes(
        self, cluster_notes_app
    ):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        # A WHERE-less UPDATE intersects every topic page, which are
        # spread over all three nodes: the result must be the union of
        # every shard's casualties, not the local node's.
        template, values = templateize("UPDATE notes SET score = ?", (5,))
        doomed = awc.router.process_write_request(
            "/bulk", [QueryInstance(template, values)]
        )
        assert len(doomed) == len(TOPICS)
        owners = {awc.router.owner_name(key) for key in doomed}
        assert len(owners) >= 2  # casualties from more than one shard
        assert len(awc.router) == 0
        assert_node_accounting_exact(awc)

    def test_empty_write_set_is_a_noop(self, cluster_notes_app):
        _db, _container, awc = cluster_notes_app
        assert awc.router.process_write_request("/noop", []) == set()
        assert awc.stats.write_requests == 1  # still recorded


class TestSoloWindows:
    """Solo-computation staleness windows routed through the cluster."""

    @staticmethod
    def _read_instance(topic: str) -> QueryInstance:
        template, values = templateize(
            "SELECT id, topic, body, score FROM notes WHERE topic = ?",
            (topic,),
        )
        return QueryInstance(template, values)

    def test_bus_write_during_window_discards_insert(self, cluster_notes_app):
        _db, _container, awc = cluster_notes_app
        router = awc.router
        request = HttpRequest("GET", "/view_topic", {"topic": "topic-0"})
        key = request.cache_key()
        window = router.begin_window(key)
        try:
            owner = router.node(router.owner_name(key))
            assert key in owner.cache.open_flight_keys()
            # A WHERE-less UPDATE broadcast on the bus intersects the
            # pending read set; the window must catch it at insert.
            template, values = templateize("UPDATE notes SET score = ?", (9,))
            router.process_write_request("/w", [QueryInstance(template, values)])
            router.insert(
                request, "<stale>", [self._read_instance("topic-0")], window=window
            )
            assert window.stale
            assert owner.cache.stats.stale_inserts == 1
            assert len(router) == 0
        finally:
            router.end_window(window)
        assert key not in router.node(router.owner_name(key)).cache.open_flight_keys()

    def test_clean_window_inserts_normally(self, cluster_notes_app):
        _db, _container, awc = cluster_notes_app
        router = awc.router
        request = HttpRequest("GET", "/view_topic", {"topic": "topic-1"})
        key = request.cache_key()
        window = router.begin_window(key)
        try:
            entry = router.insert(
                request, "<fresh>", [self._read_instance("topic-1")], window=window
            )
            assert not window.stale
            assert entry.key == key
            assert len(router) == 1
        finally:
            router.end_window(window)
        assert router.open_flights == 0
        assert router.check(request) is entry

    def test_invalidate_key_routes_to_owner(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        key = awc.router.nodes()[0].cache.pages.keys()
        if not key:
            pytest.skip("node 0 drew no keys")
        target = key[0]
        assert awc.router.invalidate_key(target) is True
        assert awc.router.invalidate_key(target) is False


class TestLifecycle:
    def test_join_drains_remapped_entries(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        total_before = len(awc.router)
        node = awc.router.add_node("node-3")
        assert len(awc.router) == total_before  # drained, not dropped
        assert node.moved_in == len(node.cache)
        for key in node.cache.pages.keys():
            assert awc.router.owner_name(key) == "node-3"
        assert_node_accounting_exact(awc)
        # Drained entries still serve as hits on the new owner.
        hits_before = awc.stats.hits
        warm(container)
        assert awc.stats.hits == hits_before + len(TOPICS)

    def test_join_with_drop_discards_remapped_entries(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        total_before = len(awc.router)
        node = awc.router.add_node("node-3", drain=False)
        dropped = total_before - len(awc.router)
        assert len(node.cache) == 0
        assert node.moved_in == 0
        # The dropped keys re-enter as cold misses, not invalidations.
        misses_before = awc.stats.misses_cold
        warm(container)
        assert awc.stats.misses_cold == misses_before + dropped
        assert_node_accounting_exact(awc)

    def test_leave_drains_to_survivors(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        total_before = len(awc.router)
        victim = awc.router.node_names[0]
        awc.router.remove_node(victim)
        assert victim not in awc.router.node_names
        assert len(awc.router) == total_before
        hits_before = awc.stats.hits
        warm(container)
        assert awc.stats.hits == hits_before + len(TOPICS)
        assert_node_accounting_exact(awc)

    def test_left_node_no_longer_receives_bus_traffic(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        victim = awc.router.node(awc.router.node_names[0])
        awc.router.remove_node(victim.name)
        seq_before = victim.last_applied_seq
        container.post("/score", {"id": "1", "score": "7"})
        assert victim.last_applied_seq == seq_before

    def test_removing_every_node_empties_the_ring(self):
        router = ClusterRouter(["a", "b"], make_cache_factory())
        router.remove_node("a")
        router.remove_node("b")
        with pytest.raises(ClusterError):
            router.process_write_request("/w", [object()])

    def test_unknown_node_operations_raise(self):
        router = ClusterRouter(["a"], make_cache_factory())
        with pytest.raises(ClusterError, match="no node named"):
            router.node("ghost")
        with pytest.raises(ClusterError):
            router.remove_node("ghost")
        with pytest.raises(ClusterError, match="already joined"):
            router.add_node("a")

    def test_cluster_needs_a_node(self):
        with pytest.raises(ClusterError, match="at least one node"):
            ClusterRouter([], make_cache_factory())
        with pytest.raises(ClusterError, match="duplicate"):
            ClusterRouter(["a", "a"], make_cache_factory())


class TestFlightPinning:
    def test_rehomed_flight_is_poisoned_not_orphaned(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        # Open a flight for a key, then add nodes until the key's owner
        # changes; the pinned flight must go stale so its insert is
        # discarded on the old owner instead of orphaned there.
        request_key = None
        from repro.web.http import HttpRequest

        request = HttpRequest("GET", "/view_topic", {"topic": "topic-0"})
        request_key = request.cache_key()
        old_owner = awc.router.owner_name(request_key)
        flight, is_leader = awc.router.join_flight(request_key)
        assert is_leader
        new_owner = old_owner
        added = []
        for i in range(3, 10):
            name = f"node-{i}"
            awc.router.add_node(name)
            added.append(name)
            new_owner = awc.router.owner_name(request_key)
            if new_owner != old_owner:
                break
        try:
            if new_owner == old_owner:
                pytest.skip("key never re-homed (hash luck)")
            assert flight.stale
            entry = awc.router.insert(request, "late page", [])
            assert entry.key == request_key
            old_node = awc.router.node(old_owner)
            assert old_node.cache.stats.stale_inserts == 1
            assert request_key not in old_node.cache.pages.keys()
        finally:
            awc.router.finish_flight(flight)
        assert awc.router.open_flights == 0
        assert_node_accounting_exact(awc)

    def test_waiters_join_the_pinned_node(self, cluster_notes_app):
        _db, _container, awc = cluster_notes_app
        flight, is_leader = awc.router.join_flight("some-key")
        assert is_leader
        again, leader_again = awc.router.join_flight("some-key")
        assert again is flight and not leader_again
        awc.router.finish_flight(flight)
        assert awc.router.open_flights == 0


class TestClusterStats:
    def test_aggregate_equals_sum_of_nodes(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        warm(container)
        stats = awc.stats
        node_stats = [node.cache.stats for node in awc.router.nodes()]
        assert stats.hits == sum(s.hits for s in node_stats)
        assert stats.misses == sum(s.misses for s in node_stats)
        assert stats.inserts == sum(s.inserts for s in node_stats)
        assert stats.lookups == (
            stats.hits + stats.semantic_hits + stats.misses + stats.uncacheable
        )
        assert 0.0 < stats.hit_rate < 1.0

    def test_write_requests_counted_once_not_per_node(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        assert awc.stats.write_requests == len(TOPICS)

    def test_snapshot_shape_and_consistency(self, cluster_notes_app):
        _db, container, awc = cluster_notes_app
        populate(container)
        warm(container)
        snapshot = awc.cluster_snapshot()
        assert set(snapshot) == {"cluster", "nodes", "bus", "membership"}
        assert all(
            view["state"] == "alive" for view in snapshot["membership"].values()
        )
        assert len(snapshot["nodes"]) == 3
        aggregate = snapshot["cluster"]
        assert aggregate["hits"] == sum(
            node["stats"]["hits"] for node in snapshot["nodes"]
        )
        assert snapshot["bus"]["seq"] == snapshot["bus"]["published"]
        assert aggregate["lookups"] == (
            aggregate["hits"]
            + aggregate["semantic_hits"]
            + aggregate["misses"]
            + aggregate["uncacheable"]
        )

    def test_coalesced_recorded_at_frontend(self, cluster_notes_app):
        _db, _container, awc = cluster_notes_app
        awc.stats.record_coalesced("/view_topic")
        assert awc.stats.coalesced_hits == 1


class TestExternalBridge:
    def test_trigger_bridge_invalidates_across_the_cluster(self):
        from repro.cache.external import TriggerInvalidationBridge

        db, container = build_notes_app()
        awc = ClusterAutoWebCache(n_nodes=3)
        bridge = TriggerInvalidationBridge(awc.router, awc.collector).attach(db)
        awc.install(container.servlet_classes)
        try:
            populate(container)
            warm(container)
            # Maintenance script bypasses the woven app entirely.
            db.update("UPDATE notes SET body = ? WHERE id = ?", ("patched", 1))
            assert bridge.external_writes == 1
            page = container.get("/view_topic", {"topic": "topic-0"})
            assert "patched" in page.body
            assert_node_accounting_exact(awc)
        finally:
            awc.uninstall()
