"""SELECT execution tests."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema
from repro.errors import ExecutionError, SchemaError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "emp",
            [
                Column("id", ColumnType.INT),
                Column("name", ColumnType.VARCHAR),
                Column("dept", ColumnType.INT),
                Column("salary", ColumnType.FLOAT),
                Column("boss", ColumnType.INT),
            ],
            primary_key="id",
            indexes=["dept"],
        )
    )
    database.create_table(
        TableSchema(
            "dept",
            [Column("id", ColumnType.INT), Column("name", ColumnType.VARCHAR)],
            primary_key="id",
        )
    )
    rows = [
        (1, "ann", 10, 120.0, None),
        (2, "bob", 10, 80.0, 1),
        (3, "cal", 20, 95.0, 1),
        (4, "dee", 20, 95.0, 3),
        (5, "eli", 30, 60.0, 3),
    ]
    database.insert_rows(
        "emp",
        [
            dict(zip(("id", "name", "dept", "salary", "boss"), row))
            for row in rows
        ],
    )
    database.insert_rows(
        "dept",
        [{"id": 10, "name": "eng"}, {"id": 20, "name": "ops"}, {"id": 30, "name": "hr"}],
    )
    return database


class TestProjection:
    def test_column_projection(self, db):
        result = db.query("SELECT name FROM emp WHERE id = 3")
        assert result.rows == [("cal",)]

    def test_star(self, db):
        result = db.query("SELECT * FROM emp WHERE id = 1")
        assert result.columns == ["id", "name", "dept", "salary", "boss"]

    def test_alias(self, db):
        result = db.query("SELECT name AS who FROM emp WHERE id = 1")
        assert result.columns == ["who"]

    def test_arithmetic_projection(self, db):
        result = db.query("SELECT salary * 2 FROM emp WHERE id = 2")
        assert result.rows == [(160.0,)]

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT salary FROM emp WHERE dept = 20")
        assert result.rows == [(95.0,)]


class TestWhere:
    def test_equality_pk_index(self, db):
        result = db.query("SELECT name FROM emp WHERE id = ?", (4,))
        assert result.rows == [("dee",)]
        assert result.rows_examined == 1  # index point lookup

    def test_secondary_index(self, db):
        result = db.query("SELECT name FROM emp WHERE dept = 10 ORDER BY id")
        assert [r[0] for r in result.rows] == ["ann", "bob"]
        assert result.rows_examined == 2

    def test_range_scan(self, db):
        result = db.query("SELECT name FROM emp WHERE salary > 90 ORDER BY name")
        assert [r[0] for r in result.rows] == ["ann", "cal", "dee"]
        assert result.rows_examined == 5  # full scan

    def test_and_or(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE dept = 20 AND salary = 95 OR id = 5 "
            "ORDER BY id"
        )
        assert [r[0] for r in result.rows] == ["cal", "dee", "eli"]

    def test_in_and_between(self, db):
        result = db.query("SELECT name FROM emp WHERE id IN (1, 5) ORDER BY id")
        assert [r[0] for r in result.rows] == ["ann", "eli"]
        result = db.query(
            "SELECT name FROM emp WHERE salary BETWEEN 80 AND 95 ORDER BY id"
        )
        assert len(result.rows) == 3

    def test_like(self, db):
        result = db.query("SELECT name FROM emp WHERE name LIKE 'a%'")
        assert result.rows == [("ann",)]

    def test_is_null(self, db):
        result = db.query("SELECT name FROM emp WHERE boss IS NULL")
        assert result.rows == [("ann",)]
        result = db.query("SELECT COUNT(*) FROM emp WHERE boss IS NOT NULL")
        assert result.scalar() == 4

    def test_null_comparisons_are_false(self, db):
        result = db.query("SELECT name FROM emp WHERE boss = 99")
        assert result.rows == []

    def test_not(self, db):
        result = db.query("SELECT COUNT(*) FROM emp WHERE NOT dept = 10")
        assert result.scalar() == 3


class TestJoins:
    def test_implicit_join(self, db):
        result = db.query(
            "SELECT emp.name, dept.name FROM emp, dept "
            "WHERE emp.dept = dept.id AND dept.name = 'ops' ORDER BY emp.id"
        )
        assert [r[0] for r in result.rows] == ["cal", "dee"]

    def test_explicit_inner_join(self, db):
        result = db.query(
            "SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.id "
            "WHERE dept.name = 'hr'"
        )
        assert result.rows == [("eli",)]

    def test_left_join_produces_null_row(self, db):
        db.update("INSERT INTO dept (id, name) VALUES (40, 'empty')")
        result = db.query(
            "SELECT dept.name, emp.name FROM dept LEFT JOIN emp "
            "ON emp.dept = dept.id WHERE dept.id = 40"
        )
        assert result.rows == [("empty", None)]

    def test_self_alias_join(self, db):
        result = db.query(
            "SELECT e.name, b.name FROM emp AS e, emp AS b "
            "WHERE e.boss = b.id AND e.id = 2"
        )
        assert result.rows == [("bob", "ann")]

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT name FROM emp, dept WHERE emp.dept = dept.id")


class TestAggregates:
    def test_count_star(self, db):
        assert db.query("SELECT COUNT(*) FROM emp").scalar() == 5

    def test_count_column_ignores_null(self, db):
        assert db.query("SELECT COUNT(boss) FROM emp").scalar() == 4

    def test_sum_avg_min_max(self, db):
        row = db.query(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        ).rows[0]
        assert row == (450.0, 90.0, 60.0, 120.0)

    def test_group_by(self, db):
        result = db.query(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept"
        )
        assert result.rows == [(10, 2), (20, 2), (30, 1)]

    def test_group_by_having(self, db):
        result = db.query(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
            "HAVING COUNT(*) > 1 ORDER BY dept"
        )
        assert [r[0] for r in result.rows] == [10, 20]

    def test_aggregate_on_empty_set(self, db):
        result = db.query("SELECT SUM(salary), COUNT(*) FROM emp WHERE dept = 99")
        assert result.rows[0] == (None, 0)

    def test_count_distinct(self, db):
        assert db.query("SELECT COUNT(DISTINCT salary) FROM emp").scalar() == 4

    def test_order_by_aggregate_alias(self, db):
        result = db.query(
            "SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept "
            "ORDER BY total DESC"
        )
        assert [r[0] for r in result.rows] == [10, 20, 30]


class TestOrderLimit:
    def test_order_by_unprojected_column(self, db):
        result = db.query("SELECT name FROM emp ORDER BY salary DESC")
        assert [r[0] for r in result.rows] == ["ann", "cal", "dee", "bob", "eli"]

    def test_order_stable_multi_key(self, db):
        result = db.query("SELECT name FROM emp ORDER BY salary DESC, name DESC")
        assert [r[0] for r in result.rows][:3] == ["ann", "dee", "cal"]

    def test_limit_offset(self, db):
        result = db.query("SELECT name FROM emp ORDER BY id LIMIT 2 OFFSET 1")
        assert [r[0] for r in result.rows] == ["bob", "cal"]

    def test_limit_placeholder(self, db):
        result = db.query("SELECT name FROM emp ORDER BY id LIMIT ?", (3,))
        assert len(result.rows) == 3

    def test_nulls_sort_deterministically(self, db):
        result = db.query("SELECT name FROM emp ORDER BY boss, id")
        assert result.rows[0] == ("ann",)  # NULL first ascending


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.query("SELECT a FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT ghost FROM emp")

    def test_missing_parameter(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT name FROM emp WHERE id = ?")

    def test_query_requires_select(self, db):
        with pytest.raises(ExecutionError):
            db.query("DELETE FROM emp")
