"""Consistent-hash ring: placement, balance, minimal remapping."""

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.errors import ClusterError

KEYS = [f"GET /rubis/view_item?item={i}" for i in range(500)]


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")

    def test_32_bit_range(self):
        for key in KEYS[:50]:
            assert 0 <= stable_hash(key) < 2**32


class TestPlacement:
    def test_single_node_owns_everything(self):
        ring = HashRing(["a"])
        assert all(ring.node_for(key) == "a" for key in KEYS)

    def test_placement_is_deterministic(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["c", "a", "b"])  # insertion order must not matter
        assert [one.node_for(k) for k in KEYS] == [two.node_for(k) for k in KEYS]

    def test_every_node_gets_a_share(self):
        ring = HashRing(["a", "b", "c", "d"])
        spread = ring.spread(KEYS)
        assert set(spread) == {"a", "b", "c", "d"}
        assert all(count > 0 for count in spread.values())

    def test_balance_within_reason(self):
        ring = HashRing(["a", "b", "c", "d"])
        spread = ring.spread(KEYS)
        mean = len(KEYS) / 4
        for count in spread.values():
            assert count > 0.4 * mean, spread
            assert count < 2.0 * mean, spread

    def test_more_vnodes_smooths_balance(self):
        coarse = HashRing(["a", "b", "c", "d"], vnodes=2)
        fine = HashRing(["a", "b", "c", "d"], vnodes=256)

        def skew(ring):
            spread = ring.spread(KEYS)
            return max(spread.values()) - min(spread.values())

        assert skew(fine) <= skew(coarse)


class TestRemapping:
    def test_add_node_remaps_only_to_new_node(self):
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("d")
        moved = 0
        for key in KEYS:
            after = ring.node_for(key)
            if after != before[key]:
                moved += 1
                assert after == "d"  # keys only move to the newcomer
        assert 0 < moved < len(KEYS) / 2  # ~1/4 expected, never a reshuffle

    def test_remove_node_remaps_only_its_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove_node("d")
        for key in KEYS:
            if before[key] != "d":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "d"

    def test_add_then_remove_restores_placement(self):
        ring = HashRing(["a", "b"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("c")
        ring.remove_node("c")
        assert {key: ring.node_for(key) for key in KEYS} == before


class TestReplicaSets:
    """Successor-placement property tests (replication factor R)."""

    def test_primary_matches_node_for(self):
        ring = HashRing(["a", "b", "c", "d", "e"])
        for key in KEYS:
            assert ring.nodes_for(key, 3)[0] == ring.node_for(key)

    def test_replicas_are_distinct_physical_nodes(self):
        # Replica sets must never collapse onto one physical node while
        # the ring has more nodes than the replication factor, no matter
        # how vnode points interleave.
        for vnodes in (1, 2, 8, DEFAULT_VNODES):
            ring = HashRing(["a", "b", "c", "d", "e"], vnodes=vnodes)
            for r in (2, 3, 4):
                for key in KEYS:
                    replicas = ring.nodes_for(key, r)
                    assert len(replicas) == r
                    assert len(set(replicas)) == r, (vnodes, r, replicas)

    def test_small_ring_degrades_to_all_nodes(self):
        ring = HashRing(["a", "b"])
        for key in KEYS[:50]:
            replicas = ring.nodes_for(key, 3)
            assert sorted(replicas) == ["a", "b"]

    def test_replica_sets_deterministic(self):
        one = HashRing(["a", "b", "c", "d"])
        two = HashRing(["d", "c", "b", "a"])
        assert [one.nodes_for(k, 2) for k in KEYS] == [
            two.nodes_for(k, 2) for k in KEYS
        ]

    def test_join_moves_minimal_replica_fraction(self):
        # With R=2 on n nodes, a joining node should enter ~2/(n+1) of
        # the replica sets; every other set must be untouched, and a
        # changed set may differ from the old one only by the newcomer
        # (successor placement: the walk is identical except where the
        # new node's points intercept it).
        ring = HashRing(["a", "b", "c", "d", "e"])
        before = {key: ring.nodes_for(key, 2) for key in KEYS}
        ring.add_node("f")
        changed = 0
        for key in KEYS:
            after = ring.nodes_for(key, 2)
            if after == before[key]:
                continue
            changed += 1
            assert "f" in after, (before[key], after)
            assert set(after) - {"f"} <= set(before[key]), (before[key], after)
        expected = 2 / 6  # R/(n+1) of sets gain the newcomer, in expectation
        assert changed < len(KEYS) * expected * 2.0
        assert changed > len(KEYS) * expected * 0.3

    def test_leave_moves_minimal_replica_fraction(self):
        ring = HashRing(["a", "b", "c", "d", "e"])
        before = {key: ring.nodes_for(key, 2) for key in KEYS}
        ring.remove_node("e")
        for key in KEYS:
            after = ring.nodes_for(key, 2)
            if "e" not in before[key]:
                # Sets not involving the leaver are bit-for-bit stable.
                assert after == before[key]
            else:
                # The survivor keeps its slot; only the leaver's slot
                # is refilled by the next distinct successor.
                survivors = [n for n in before[key] if n != "e"]
                assert set(survivors) <= set(after)
                assert "e" not in after

    def test_nonpositive_replica_count_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError, match="at least one"):
            ring.nodes_for("key", 0)


class TestErrors:
    def test_empty_ring_raises_cluster_error(self):
        ring = HashRing()
        with pytest.raises(ClusterError, match="empty"):
            ring.node_for("anything")

    def test_fully_drained_ring_raises_cluster_error(self):
        ring = HashRing(["only"])
        ring.remove_node("only")
        with pytest.raises(ClusterError):
            ring.node_for("anything")

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError, match="already"):
            ring.add_node("a")

    def test_removing_unknown_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError, match="not on the ring"):
            ring.remove_node("b")

    def test_nonpositive_vnodes_rejected(self):
        with pytest.raises(ClusterError):
            HashRing(["a"], vnodes=0)

    def test_membership_introspection(self):
        ring = HashRing(["b", "a"], vnodes=DEFAULT_VNODES)
        assert ring.nodes == ["a", "b"]
        assert len(ring) == 2
        assert "a" in ring and "z" not in ring
