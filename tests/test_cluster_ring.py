"""Consistent-hash ring: placement, balance, minimal remapping."""

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.errors import ClusterError

KEYS = [f"GET /rubis/view_item?item={i}" for i in range(500)]


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")

    def test_32_bit_range(self):
        for key in KEYS[:50]:
            assert 0 <= stable_hash(key) < 2**32


class TestPlacement:
    def test_single_node_owns_everything(self):
        ring = HashRing(["a"])
        assert all(ring.node_for(key) == "a" for key in KEYS)

    def test_placement_is_deterministic(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["c", "a", "b"])  # insertion order must not matter
        assert [one.node_for(k) for k in KEYS] == [two.node_for(k) for k in KEYS]

    def test_every_node_gets_a_share(self):
        ring = HashRing(["a", "b", "c", "d"])
        spread = ring.spread(KEYS)
        assert set(spread) == {"a", "b", "c", "d"}
        assert all(count > 0 for count in spread.values())

    def test_balance_within_reason(self):
        ring = HashRing(["a", "b", "c", "d"])
        spread = ring.spread(KEYS)
        mean = len(KEYS) / 4
        for count in spread.values():
            assert count > 0.4 * mean, spread
            assert count < 2.0 * mean, spread

    def test_more_vnodes_smooths_balance(self):
        coarse = HashRing(["a", "b", "c", "d"], vnodes=2)
        fine = HashRing(["a", "b", "c", "d"], vnodes=256)

        def skew(ring):
            spread = ring.spread(KEYS)
            return max(spread.values()) - min(spread.values())

        assert skew(fine) <= skew(coarse)


class TestRemapping:
    def test_add_node_remaps_only_to_new_node(self):
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("d")
        moved = 0
        for key in KEYS:
            after = ring.node_for(key)
            if after != before[key]:
                moved += 1
                assert after == "d"  # keys only move to the newcomer
        assert 0 < moved < len(KEYS) / 2  # ~1/4 expected, never a reshuffle

    def test_remove_node_remaps_only_its_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove_node("d")
        for key in KEYS:
            if before[key] != "d":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "d"

    def test_add_then_remove_restores_placement(self):
        ring = HashRing(["a", "b"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("c")
        ring.remove_node("c")
        assert {key: ring.node_for(key) for key in KEYS} == before


class TestErrors:
    def test_empty_ring_raises_cluster_error(self):
        ring = HashRing()
        with pytest.raises(ClusterError, match="empty"):
            ring.node_for("anything")

    def test_fully_drained_ring_raises_cluster_error(self):
        ring = HashRing(["only"])
        ring.remove_node("only")
        with pytest.raises(ClusterError):
            ring.node_for("anything")

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError, match="already"):
            ring.add_node("a")

    def test_removing_unknown_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError, match="not on the ring"):
            ring.remove_node("b")

    def test_nonpositive_vnodes_rejected(self):
        with pytest.raises(ClusterError):
            HashRing(["a"], vnodes=0)

    def test_membership_introspection(self):
        ring = HashRing(["b", "a"], vnodes=DEFAULT_VNODES)
        assert ring.nodes == ["a", "b"]
        assert len(ring) == 2
        assert "a" in ring and "z" not in ring
