"""Span/trace model and tracer ring buffer."""

import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    SpanContext,
    activate,
    current_context,
    deactivate,
    make_span,
    new_span_id,
    new_trace_id,
    open_root,
)
from repro.obs.tracer import Tracer


class TestSpanModel:
    def test_root_span_starts_a_new_trace(self):
        span = make_span("root", parent=None)
        assert span.parent_id is None
        assert len(span.trace_id) == 16
        assert len(span.span_id) == 8

    def test_child_joins_parent_trace(self):
        parent = SpanContext(new_trace_id(), new_span_id())
        child = make_span("child", parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_tags_and_error_marking(self):
        span = make_span("op", parent=None, tags={"k": "v"})
        span.set_tag("n", 7)
        assert span.tags == {"k": "v", "n": "7"}
        assert span.status == "ok"
        span.mark_error("boom")
        assert span.status == "error"
        assert span.error == "boom"

    def test_null_span_absorbs_everything(self):
        assert NULL_SPAN.set_tag("a", 1) is NULL_SPAN
        NULL_SPAN.mark_error("ignored")
        assert NULL_SPAN.status == "ok"


class TestAmbientContext:
    def test_activate_deactivate_restores(self):
        assert current_context() is None
        ctx = SpanContext(new_trace_id(), new_span_id())
        token = activate(ctx)
        assert current_context() is ctx
        deactivate(token)
        assert current_context() is None

    def test_open_root_gives_correlation_context(self):
        ctx, token = open_root()
        try:
            assert current_context() is ctx
        finally:
            deactivate(token)


class TestTracer:
    def test_nested_spans_share_trace_and_link_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        trace_id, spans = tracer.last_trace()
        assert trace_id == outer.trace_id
        assert [s.name for s in spans] == ["outer", "inner"]
        assert all(s.finished and s.duration >= 0 for s in spans)

    def test_sibling_top_level_spans_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len(tracer) == 2

    def test_explicit_parent_overrides_ambient(self):
        tracer = Tracer()
        remote = SpanContext(new_trace_id(), new_span_id())
        with tracer.span("local"):
            with tracer.span("stitched", parent=remote) as span:
                assert span.trace_id == remote.trace_id
                assert span.parent_id == remote.span_id

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("nope")
        _id, (span,) = tracer.last_trace()
        assert span.status == "error"
        assert "ValueError: nope" in span.error

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.set_tag("a", 1)
        assert len(tracer) == 0
        assert tracer.spans_recorded == 0

    def test_ring_buffer_evicts_oldest_trace(self):
        tracer = Tracer(capacity=2)
        ids = []
        for name in ("t1", "t2", "t3"):
            with tracer.span(name) as span:
                ids.append(span.trace_id)
        assert len(tracer) == 2
        assert tracer.traces_evicted == 1
        assert tracer.trace(ids[0]) == []
        assert [s.name for s in tracer.trace(ids[2])] == ["t3"]

    def test_straggler_span_refreshes_trace(self):
        tracer = Tracer(capacity=2)
        with tracer.span("old") as old:
            pass
        with tracer.span("mid"):
            pass
        # A late span for the oldest trace moves it to the young end...
        with tracer.span("late", parent=old.context):
            pass
        # ...so the next new trace evicts "mid" instead.
        with tracer.span("new"):
            pass
        names = {s.name for _id, spans in tracer.traces() for s in spans}
        assert names == {"old", "late", "new"}

    def test_context_isolated_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            # No ambient context leaks across threads: this span roots
            # a brand-new trace.
            with tracer.span("threaded") as span:
                seen["trace"] = span.trace_id
                seen["parent"] = span.parent_id

        with tracer.span("main") as main_span:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] is None
        assert seen["trace"] != main_span.trace_id

    def test_reset_clears_buffer_and_counters(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.spans_recorded == 0
        assert tracer.last_trace() is None
