"""Cache warming tests."""

from repro.apps.rubis import RubisDataset, build_rubis
from repro.apps.rubis.workload import bidding_mix
from repro.cache.autowebcache import AutoWebCache
from repro.cache.warming import warm_from_mix, warm_from_trace
from repro.workload.mix import Interaction, InteractionMix
from repro.workload.trace import RequestTrace, TraceEntry, TraceRecorder


def build_cached_rubis():
    app = build_rubis(RubisDataset(n_users=30, n_items=50, seed=21))
    awc = AutoWebCache()
    awc.install(app.servlet_classes)
    return app, awc


def test_warm_from_mix_fills_cache():
    app, awc = build_cached_rubis()
    try:
        report = warm_from_mix(
            app.container, awc.cache, bidding_mix(app.dataset),
            target_pages=40, seed=5,
        )
        assert report.pages_cached >= 40
        assert report.errors == 0
        assert report.requests_issued >= 40
        # Warming issued no writes: nothing was ever invalidated.
        assert awc.stats.write_requests == 0
    finally:
        awc.uninstall()


def test_warm_respects_request_budget():
    app, awc = build_cached_rubis()
    try:
        report = warm_from_mix(
            app.container, awc.cache, bidding_mix(app.dataset),
            target_pages=10_000, max_requests=25, seed=5,
        )
        # Skipped write draws spend budget too (they are draws from the
        # mix), so issued + skipped exactly exhausts the budget.
        assert report.requests_issued + report.writes_skipped == 25
        assert report.requests_issued > 0
    finally:
        awc.uninstall()


def test_warm_write_only_mix_terminates():
    """Regression: a mix with no read interactions must not spin forever.

    The pre-fix loop `continue`d on write draws without spending budget,
    so a write-heavy mix never incremented ``issued`` and looped
    indefinitely.
    """
    app, awc = build_cached_rubis()
    try:
        write_only = InteractionMix(
            name="write-only",
            interactions=[
                Interaction(
                    name="store_bid",
                    method="POST",
                    uri="/rubis/store_bid",
                    params=lambda session: {
                        "item": "1", "user": "1", "bid": "10"
                    },
                    weight=1.0,
                    is_write=True,
                )
            ],
        )
        report = warm_from_mix(
            app.container, awc.cache, write_only,
            target_pages=10, max_requests=50, seed=5,
        )
        assert report.requests_issued == 0
        assert report.writes_skipped == 50
        assert report.pages_cached == 0
        # Warming never mutated state or touched the container.
        assert awc.stats.write_requests == 0
    finally:
        awc.uninstall()


def test_warmed_pages_hit_afterwards():
    app, awc = build_cached_rubis()
    try:
        warm_from_mix(
            app.container, awc.cache, bidding_mix(app.dataset),
            target_pages=20, seed=5,
        )
        hits_before = awc.stats.hits
        app.container.get("/rubis/browse_categories")
        assert awc.stats.hits == hits_before + 1
    finally:
        awc.uninstall()


def test_warm_from_trace_replays_gets_only():
    # Record organic traffic on an uncached instance.
    source = build_rubis(RubisDataset(n_users=30, n_items=50, seed=21))
    recorder = TraceRecorder.attach(source.container)
    source.container.get("/rubis/view_item", {"item": "3"})
    source.container.post(
        "/rubis/store_bid", {"item": "3", "user": "1", "bid": "50"}
    )
    source.container.get("/rubis/browse_categories")
    trace = recorder.detach()

    app, awc = build_cached_rubis()
    try:
        report = warm_from_trace(app.container, awc.cache, trace)
        assert report.requests_issued == 2  # POST skipped
        # view_item page + browse_categories page + its category-table
        # fragment: warming fills fragment entries too.
        assert report.pages_cached == 3
        assert awc.stats.write_requests == 0
    finally:
        awc.uninstall()


def test_warm_from_empty_trace():
    app, awc = build_cached_rubis()
    try:
        report = warm_from_trace(app.container, awc.cache, RequestTrace())
        assert report.requests_issued == 0
        assert report.pages_cached == 0
    finally:
        awc.uninstall()
