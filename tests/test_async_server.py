"""The asyncio serving tier: wire buffers, doom semantics, byte identity.

Unit layers first (``PageEntry.wire``/``doom``, ``PageCache.hit``,
``Cache.fast_check`` miss-taxonomy preservation), then the server over
real sockets: the PR-6 assembly-hygiene guarantees -- Content-Length
derived from the assembled body, buffers byte-identical to a fresh
render, doom-then-rerender -- extended to the async fast path.
"""

from __future__ import annotations

import http.client
import socket

from repro.cache.api import Cache
from repro.cache.autowebcache import AutoWebCache
from repro.cache.entry import PageEntry
from repro.cache.page_cache import PageCache
from repro.cache.semantics import SemanticsRegistry
from repro.cluster import ClusterAutoWebCache
from repro.harness.loadgen import AsyncLoadDriver
from repro.web.asyncserver import build_wire, start_async_server
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest

from tests.conftest import build_notes_app


def raw_exchange(port: int, target: str) -> bytes:
    """One raw GET with ``Connection: close``; returns the full wire
    response (the server closes, so EOF delimits it exactly)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            .encode("latin-1")
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


class TestWireBuffer:
    def test_wire_builds_once_and_pins(self):
        entry = PageEntry(key="/p", body="hello")
        calls = []

        def build(e):
            calls.append(e.key)
            return build_wire(e)

        first = entry.wire(build)
        second = entry.wire(build)
        assert first is second
        assert calls == ["/p"]
        assert b"hello" in first
        assert b"Content-Length: 5" in first

    def test_doom_kills_buffer(self):
        entry = PageEntry(key="/p", body="hello")
        assert entry.wire(build_wire) is not None
        entry.doom()
        assert entry.doomed
        assert entry.wire(build_wire) is None

    def test_invalidation_dooms_the_entry(self):
        pages = PageCache()
        entry = PageEntry(key="/p", body="hello")
        pages.insert(entry)
        entry.wire(build_wire)
        assert pages.invalidate("/p")
        assert entry.doomed
        assert entry.wire(build_wire) is None

    def test_refresh_and_release_do_not_doom(self):
        pages = PageCache()
        entry = PageEntry(key="/p", body="hello")
        pages.insert(entry)
        # In-place refresh: the replaced entry object is not doomed
        # (threads holding it may serve it once more, same tolerance as
        # the staleness window), and the successor is live.
        pages.insert(PageEntry(key="/p", body="fresh"))
        assert not entry.doomed
        # Cluster migration: the released entry stays live -- it is
        # about to be inserted on another node with its buffer intact.
        migrating = PageEntry(key="/q", body="move me")
        pages.insert(migrating)
        migrating.wire(build_wire)
        released = pages.release("/q")
        assert released is migrating
        assert not released.doomed
        assert released.wire(build_wire) is not None

    def test_expired_entry_reports_miss_via_hit(self):
        pages = PageCache()
        pages.insert(PageEntry(key="/p", body="x", expires_at=10.0))
        assert pages.hit("/p", now=20.0) is None
        # The expiry reason is preserved for the woven lookup.
        _entry, reason = pages.lookup("/p", now=20.0)
        assert reason == "expired"


class TestFastCheck:
    def request(self) -> HttpRequest:
        return HttpRequest("GET", "/page", {"id": "1"})

    def test_hit_is_recorded_like_check(self):
        cache = Cache()
        request = self.request()
        cache.insert(request, "body", [])
        entry = cache.fast_check(request)
        assert entry is not None and entry.body == "body"
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 1

    def test_miss_records_nothing_and_preserves_taxonomy(self):
        cache = Cache()
        request = self.request()
        cache.insert(request, "body", [])
        cache.invalidate_key(request.cache_key())
        # The fast-path probe must not consume the "invalidation"
        # reason (PageCache.lookup pops it destructively) nor count a
        # lookup of its own.
        assert cache.fast_check(request) is None
        assert cache.stats.lookups == 0
        assert cache.stats.misses_invalidation == 0
        assert cache.check(request) is None
        assert cache.stats.misses_invalidation == 1
        assert cache.stats.lookups == 1

    def test_forced_miss_mode_disables_fast_path(self):
        cache = Cache(forced_miss=True)
        request = self.request()
        assert cache.fast_check(request) is None
        assert cache.stats.lookups == 0

    def test_uncacheable_uri_is_not_probed(self):
        semantics = SemanticsRegistry().mark_uncacheable("/page")
        cache = Cache(semantics=semantics)
        assert cache.fast_check(self.request()) is None
        assert cache.stats.lookups == 0


class TestAsyncServerHttp:
    def test_fast_path_bytes_identical_to_fresh_render(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "3"}
            )
            with start_async_server(container, cache=awc.cache) as server:
                fresh = raw_exchange(server.port, "/view_topic?topic=a")
                cached = raw_exchange(server.port, "/view_topic?topic=a")
                assert server.stats.slow_requests == 1
                assert server.stats.fast_hits == 1
            assert fresh == cached  # whole response, headers included
            assert fresh.startswith(b"HTTP/1.1 200 OK\r\n")
            head, _, body = fresh.partition(b"\r\n\r\n")
            assert f"Content-Length: {len(body)}".encode() in head
        finally:
            awc.uninstall()

    def test_doom_then_rerender_over_http(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        awc.install(container.servlet_classes)
        try:
            with start_async_server(container, cache=awc.cache) as server:
                conn = http.client.HTTPConnection("127.0.0.1", server.port)
                conn.request("GET", "/view_topic?topic=a")
                before = conn.getresponse().read()
                conn.request("GET", "/view_topic?topic=a")
                assert conn.getresponse().read() == before
                assert server.stats.fast_hits == 1
                conn.request(
                    "POST",
                    "/add",
                    body="id=1&topic=a&body=x&score=3",
                    headers={
                        "Content-Type": "application/x-www-form-urlencoded"
                    },
                )
                posted = conn.getresponse()
                posted.read()
                assert posted.status == 200
                conn.request("GET", "/view_topic?topic=a")
                after = conn.getresponse().read()
                conn.close()
            assert after != before
            assert b"1:x" in after
            # The invalidated page re-rendered through the slow path and
            # its miss kept the correct taxonomy.
            assert awc.stats.misses_invalidation == 1
        finally:
            awc.uninstall()

    def test_content_length_tracks_hole_length_changes(self):
        """PR-6's assembly-hygiene bar on the async path: /stamped swaps
        a per-request hole of growing width into a cached fragment; the
        declared Content-Length must match every assembled body."""
        from tests.test_cache_fragments import add, build_fragment_app

        db, container = build_fragment_app()
        awc = AutoWebCache()
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            with start_async_server(container, cache=awc.cache) as server:
                conn = http.client.HTTPConnection("127.0.0.1", server.port)
                lengths = set()
                for _ in range(11):
                    conn.request("GET", "/stamped?topic=a")
                    response = conn.getresponse()
                    body = response.read()
                    declared = int(response.getheader("Content-Length"))
                    assert declared == len(body)
                    lengths.add(len(body))
                conn.close()
            # The stamp grew from 1 to 2 digits: two distinct assembled
            # lengths, each with a correct Content-Length.
            assert len(lengths) == 2
        finally:
            awc.uninstall()

    def test_sessions_disable_the_fast_path(self):
        db, container = build_notes_app()
        sessioned = ServletContainer(use_sessions=True)
        for uri in container.uris:
            sessioned.register(uri, container.servlet_for(uri))
        awc = AutoWebCache()
        awc.install(sessioned.servlet_classes)
        try:
            with start_async_server(sessioned, cache=awc.cache) as server:
                assert not server.fast_path_enabled
                conn = http.client.HTTPConnection("127.0.0.1", server.port)
                for _ in range(2):
                    conn.request("GET", "/view_topic?topic=a")
                    response = conn.getresponse()
                    response.read()
                    assert response.status == 200
                first_cookie = response.getheader("Set-Cookie")
                conn.close()
                assert server.stats.fast_hits == 0
                assert server.stats.slow_requests == 2
            assert first_cookie  # session machinery ran on every request
        finally:
            awc.uninstall()

    def test_cookie_carrying_request_bypasses_fast_path(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        awc.install(container.servlet_classes)
        try:
            container.get("/view_topic", {"topic": "a"})  # warm the page
            with start_async_server(container, cache=awc.cache) as server:
                conn = http.client.HTTPConnection("127.0.0.1", server.port)
                conn.request(
                    "GET", "/view_topic?topic=a", headers={"Cookie": "k=v"}
                )
                assert conn.getresponse().status == 200
                conn.close()
                assert server.stats.fast_hits == 0
                assert server.stats.slow_requests == 1
        finally:
            awc.uninstall()

    def test_unroutable_uri_gets_404_with_content_length(self):
        db, container = build_notes_app()
        with start_async_server(container) as server:
            payload = raw_exchange(server.port, "/nope")
            assert payload.startswith(b"HTTP/1.1 404 Not Found\r\n")
            head, _, body = payload.partition(b"\r\n\r\n")
            assert f"Content-Length: {len(body)}".encode() in head

    def test_malformed_request_gets_400(self):
        db, container = build_notes_app()
        with start_async_server(container) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                sock.sendall(b"GARBAGE\r\n\r\n")
                payload = sock.recv(65536)
            assert payload.startswith(b"HTTP/1.1 400 Bad Request\r\n")
            assert server.stats.bad_requests == 1

    def test_shutdown_is_idempotent_and_releases_the_port(self):
        db, container = build_notes_app()
        server = start_async_server(container)
        port = server.port
        assert raw_exchange(port, "/view_topic?topic=a").startswith(
            b"HTTP/1.1 200"
        )
        server.shutdown()
        server.shutdown()  # second call is a no-op
        with socket.socket() as probe:
            assert probe.connect_ex(("127.0.0.1", port)) != 0

    def test_concurrent_load_all_served(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.post(
                "/add", {"id": "2", "topic": "b", "body": "y", "score": "0"}
            )
            with start_async_server(container, cache=awc.cache) as server:
                result = AsyncLoadDriver(
                    "127.0.0.1",
                    server.port,
                    ["/view_topic?topic=a", "/view_topic?topic=b"],
                    n_connections=4,
                    iterations=25,
                ).run()
                stats = server.stats.snapshot()
            assert result.errors == []
            assert result.server_errors == 0
            assert result.statuses == {200: 100}
            assert stats["fast_hits"] + stats["slow_requests"] == 100
            assert stats["fast_hits"] >= 90  # 2 cold misses at most + races
        finally:
            awc.uninstall()

    def test_cluster_with_batched_bus(self):
        """The async tier in front of a sharded cluster whose bus
        group-commits: fast hits route through the owning shard, writes
        batch onto the bus, invalidation still dooms the buffer."""
        db, container = build_notes_app()
        awc = ClusterAutoWebCache(n_nodes=2, bus_batching=True)
        awc.install(container.servlet_classes)
        try:
            assert awc.bus.batched
            with start_async_server(container, cache=awc.cache) as server:
                conn = http.client.HTTPConnection("127.0.0.1", server.port)
                conn.request("GET", "/view_topic?topic=a")
                before = conn.getresponse().read()
                conn.request("GET", "/view_topic?topic=a")
                assert conn.getresponse().read() == before
                assert server.stats.fast_hits == 1
                conn.request(
                    "POST",
                    "/add",
                    body="id=1&topic=a&body=x&score=3",
                    headers={
                        "Content-Type": "application/x-www-form-urlencoded"
                    },
                )
                posted = conn.getresponse()
                posted.read()
                assert posted.status == 200
                conn.request("GET", "/view_topic?topic=a")
                after = conn.getresponse().read()
                conn.close()
            assert b"1:x" in after
            assert awc.bus.stats.published >= 1
            assert awc.bus.stats.batches >= 1
        finally:
            awc.uninstall()
