"""Back-end result-set cache tests (Section 9's complementary cache)."""

import pytest

from repro.cache.analysis import InvalidationPolicy
from repro.cache.aspects_result import ResultCacheAspect, ResultCacheInstaller
from repro.cache.autowebcache import AutoWebCache
from repro.cache.result_cache import ResultCache
from repro.cache.semantics import SemanticsRegistry
from repro.db import connect
from repro.errors import CacheError

from tests.conftest import build_notes_app, make_notes_db


def add_note(db, note_id, topic, body, score=0):
    db.update(
        "INSERT INTO notes (id, topic, body, score) VALUES (?, ?, ?, ?)",
        (note_id, topic, body, score),
    )


class TestResultCacheUnit:
    def test_lookup_insert_cycle(self):
        from repro.db.executor import QueryResult
        from repro.sql.template import templateize

        cache = ResultCache()
        template, values = templateize("SELECT a FROM t WHERE b = ?", (1,))
        assert cache.lookup(template, values) is None
        result = QueryResult(columns=["a"], rows=[(10,)])
        cache.insert(template, values, result)
        assert cache.lookup(template, values) is result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_invalidation_by_write(self):
        from repro.db.executor import QueryResult
        from repro.sql.template import templateize
        from repro.cache.entry import QueryInstance

        cache = ResultCache(policy=InvalidationPolicy.WHERE_MATCH)
        t1, v1 = templateize("SELECT a FROM t WHERE b = ?", (1,))
        t2, v2 = templateize("SELECT a FROM t WHERE b = ?", (2,))
        cache.insert(t1, v1, QueryResult(columns=["a"], rows=[]))
        cache.insert(t2, v2, QueryResult(columns=["a"], rows=[]))
        write, wv = templateize("UPDATE t SET a = ? WHERE b = ?", (9, 1))
        removed = cache.process_write(QueryInstance(write, wv))
        assert removed == 1  # only the b=1 entry
        assert cache.lookup(t1, v1) is None
        assert cache.lookup(t2, v2) is not None


class TestWovenResultCache:
    def test_second_query_served_from_cache(self):
        db = make_notes_db()
        add_note(db, 1, "a", "x")
        connection = connect(db)
        installer = ResultCacheInstaller()
        installer.install()
        try:
            statement = connection.create_statement()
            sql = "SELECT body FROM notes WHERE topic = ? ORDER BY id"
            first = statement.execute_query(sql, ("a",))
            queries_before = db.stats.queries
            second = statement.execute_query(sql, ("a",))
            assert db.stats.queries == queries_before  # no DB work
            assert first.all_dicts() == second.all_dicts()
            assert installer.stats.hits == 1
        finally:
            installer.uninstall()

    def test_hits_get_fresh_cursors(self):
        db = make_notes_db()
        add_note(db, 1, "a", "x")
        add_note(db, 2, "a", "y")
        connection = connect(db)
        installer = ResultCacheInstaller()
        installer.install()
        try:
            statement = connection.create_statement()
            sql = "SELECT body FROM notes WHERE topic = ? ORDER BY id"
            first = statement.execute_query(sql, ("a",))
            assert first.next() and first.next() and not first.next()
            second = statement.execute_query(sql, ("a",))
            assert second.next()  # cursor starts fresh
            assert second.get("body") == "x"
        finally:
            installer.uninstall()

    def test_write_invalidates_affected_results_only(self):
        db = make_notes_db()
        add_note(db, 1, "a", "x")
        add_note(db, 2, "b", "y")
        connection = connect(db)
        installer = ResultCacheInstaller()
        installer.install()
        try:
            statement = connection.create_statement()
            sql = "SELECT body FROM notes WHERE topic = ? ORDER BY id"
            statement.execute_query(sql, ("a",))
            statement.execute_query(sql, ("b",))
            statement.execute_update(
                "INSERT INTO notes (id, topic, body, score) "
                "VALUES (3, 'a', 'new', 0)"
            )
            fresh = statement.execute_query(sql, ("a",))
            assert [r["body"] for r in fresh.all_dicts()] == ["x", "new"]
            # Topic b survived the write.
            assert installer.stats.hits >= 0
            queries_before = db.stats.queries
            statement.execute_query(sql, ("b",))
            assert db.stats.queries == queries_before
        finally:
            installer.uninstall()

    def test_update_with_pre_image_precision(self):
        db = make_notes_db()
        add_note(db, 1, "a", "x", score=1)
        add_note(db, 2, "b", "y", score=2)
        connection = connect(db)
        installer = ResultCacheInstaller(policy=InvalidationPolicy.EXTRA_QUERY)
        installer.install()
        try:
            statement = connection.create_statement()
            sql = "SELECT score FROM notes WHERE topic = ? ORDER BY id"
            statement.execute_query(sql, ("a",))
            # Update note 2 (topic b): the pre-image proves topic a's
            # result is unaffected.
            statement.execute_update(
                "UPDATE notes SET score = ? WHERE id = ?", (9, 2)
            )
            queries_before = db.stats.queries
            statement.execute_query(sql, ("a",))
            assert db.stats.queries == queries_before
            # And topic a's own update invalidates it.
            statement.execute_update(
                "UPDATE notes SET score = ? WHERE id = ?", (5, 1)
            )
            fresh = statement.execute_query(sql, ("a",))
            assert fresh.all_dicts() == [{"score": 5}]
        finally:
            installer.uninstall()

    def test_double_install_rejected(self):
        installer = ResultCacheInstaller()
        installer.install()
        try:
            with pytest.raises(CacheError):
                installer.install()
        finally:
            installer.uninstall()

    def test_context_manager_uninstalls(self):
        from repro.db.dbapi import Statement

        with ResultCacheInstaller() as installer:
            installer.install()
        method = vars(Statement)["execute_query"]
        assert not getattr(method, "__aw_woven__", False)


class TestCombinedWithPageCache:
    def test_result_cache_layered_under_page_cache(self):
        db, container = build_notes_app()
        result_cache = ResultCache()
        awc = AutoWebCache(semantics=SemanticsRegistry().mark_uncacheable("/view_topic"))
        awc.install(
            container.servlet_classes,
            extra_aspects=[ResultCacheAspect(result_cache)],
        )
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            # /view_topic pages are uncacheable at the front end, but
            # the backend result cache still absorbs the repeat query.
            container.get("/view_topic", {"topic": "a"})
            queries_before = db.stats.queries
            page = container.get("/view_topic", {"topic": "a"})
            assert db.stats.queries == queries_before
            assert "x" in page.body
            assert awc.stats.uncacheable == 2
            assert result_cache.stats.hits >= 1
            # Consistency still holds through the result cache.
            container.post(
                "/add", {"id": "2", "topic": "a", "body": "fresh", "score": "0"}
            )
            page = container.get("/view_topic", {"topic": "a"})
            assert "fresh" in page.body
        finally:
            awc.uninstall()

    def test_page_hit_bypasses_result_cache(self):
        db, container = build_notes_app()
        result_cache = ResultCache()
        awc = AutoWebCache()
        awc.install(
            container.servlet_classes,
            extra_aspects=[ResultCacheAspect(result_cache)],
        )
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.get("/view_topic", {"topic": "a"})
            lookups_before = result_cache.stats.lookups
            container.get("/view_topic", {"topic": "a"})  # page hit
            assert result_cache.stats.lookups == lookups_before
        finally:
            awc.uninstall()
