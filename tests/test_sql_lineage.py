"""Column-lineage tests: the Catalog, compute_lineage's read sets, the
catalog-free invariant, and the monotone-widening soundness property."""

from __future__ import annotations

import random

from repro.sql.analysis_info import extract_info
from repro.sql.lineage import Catalog, LineageInfo, compute_lineage
from repro.sql.template import templateize


def stmt_of(sql, params=None):
    template, _values = templateize(sql, params)
    return template.statement


CATALOG = Catalog(
    {
        "items": ("id", "name", "seller", "price", "audit_stamp"),
        "bids": ("id", "item_id", "bidder", "amount"),
        "users": ("id", "nickname", "region"),
    }
)


class TestCatalog:
    def test_lookup_is_case_insensitive(self):
        catalog = Catalog({"Items": ("Id", "Name")})
        assert catalog.columns_of("ITEMS") == {"id", "name"}

    def test_unknown_table_is_none(self):
        assert CATALOG.columns_of("nope") is None

    def test_merge_unions_and_other_wins(self):
        merged = Catalog({"t": ("a",)}).merge(Catalog({"t": ("b",), "u": ("c",)}))
        assert merged.columns_of("t") == {"b"}
        assert merged.columns_of("u") == {"c"}
        assert len(merged) == 2

    def test_tables_property(self):
        assert CATALOG.tables == {"items", "bids", "users"}


class TestReadSets:
    def test_projection_and_predicate(self):
        lineage = compute_lineage(
            stmt_of("SELECT name FROM items WHERE seller = ?", (3,)), CATALOG
        )
        assert lineage.read_set == {("items", "name"), ("items", "seller")}
        assert lineage.exact
        assert lineage.tables == {"items"}

    def test_star_expands_through_catalog(self):
        lineage = compute_lineage(stmt_of("SELECT * FROM users"), CATALOG)
        assert lineage.read_set == {
            ("users", "id"), ("users", "nickname"), ("users", "region"),
        }
        assert lineage.exact

    def test_star_without_catalog_stays_wildcard(self):
        lineage = compute_lineage(stmt_of("SELECT * FROM users"), None)
        assert lineage.read_set == {("users", "*")}
        assert not lineage.exact

    def test_star_on_unknown_table_stays_wildcard(self):
        lineage = compute_lineage(stmt_of("SELECT * FROM mystery"), CATALOG)
        assert lineage.read_set == {("mystery", "*")}
        assert not lineage.exact

    def test_join_attributes_qualified_columns(self):
        lineage = compute_lineage(
            stmt_of(
                "SELECT items.name, bids.amount FROM items, bids "
                "WHERE items.id = bids.item_id AND bids.bidder = ?",
                (7,),
            ),
            CATALOG,
        )
        assert lineage.read_set == {
            ("items", "name"), ("items", "id"),
            ("bids", "amount"), ("bids", "item_id"), ("bids", "bidder"),
        }
        assert lineage.exact

    def test_join_resolves_unqualified_unique_owner(self):
        # "amount" exists only on bids; the catalog attributes it.
        lineage = compute_lineage(
            stmt_of(
                "SELECT amount FROM items, bids WHERE items.id = bids.item_id"
            ),
            CATALOG,
        )
        assert ("bids", "amount") in lineage.read_set
        assert ("?", "amount") not in lineage.read_set

    def test_aggregate_and_group_order(self):
        lineage = compute_lineage(
            stmt_of(
                "SELECT seller, MAX(price) FROM items "
                "GROUP BY seller ORDER BY seller"
            ),
            CATALOG,
        )
        assert lineage.read_set == {("items", "seller"), ("items", "price")}
        assert lineage.exact

    def test_subquery_reads_fold_into_outer_set(self):
        lineage = compute_lineage(
            stmt_of(
                "SELECT name FROM items WHERE id IN "
                "(SELECT item_id FROM bids WHERE bidder = ?)",
                (1,),
            ),
            CATALOG,
        )
        assert {("items", "name"), ("items", "id")} <= lineage.read_set
        assert {("bids", "item_id"), ("bids", "bidder")} <= lineage.read_set
        assert lineage.exact

    def test_outputs_carry_per_column_sources(self):
        lineage = compute_lineage(
            stmt_of("SELECT name AS title, price FROM items"), CATALOG
        )
        by_output = {o.output: o.sources for o in lineage.outputs}
        assert by_output["title"] == {("items", "name")}
        assert by_output["price"] == {("items", "price")}

    def test_selection_includes_join_condition(self):
        lineage = compute_lineage(
            stmt_of(
                "SELECT items.name FROM items, bids "
                "WHERE items.id = bids.item_id"
            ),
            CATALOG,
        )
        assert {("items", "id"), ("bids", "item_id")} <= lineage.selection


class TestReadsColumn:
    def test_exact_membership(self):
        lineage = compute_lineage(
            stmt_of("SELECT name FROM items WHERE id = ?", (1,)), CATALOG
        )
        assert lineage.reads_column("items", "name")
        assert lineage.reads_column("ITEMS", "ID")
        assert not lineage.reads_column("items", "audit_stamp")
        assert not lineage.reads_column("bids", "name")

    def test_wildcard_matches_every_column(self):
        lineage = compute_lineage(stmt_of("SELECT * FROM items"), None)
        assert lineage.reads_column("items", "anything")
        assert not lineage.reads_column("users", "anything")

    def test_spill_matches_column_on_any_table(self):
        lineage = LineageInfo(
            outputs=(), selection=frozenset(),
            read_set=frozenset({("?", "price")}),
            tables=frozenset({"items", "bids"}),
        )
        assert lineage.reads_column("items", "price")
        assert lineage.reads_column("bids", "price")
        assert not lineage.reads_column("items", "name")


class TestSoundness:
    """The contract ``docs/lineage.md`` argues: catalog-free equals the
    legacy facts, and catalog knowledge only ever *narrows coverage with
    proof* -- it never makes the template blind to a column the legacy
    set could see attributed to a real base table."""

    STATEMENTS = [
        "SELECT name FROM items WHERE seller = ?",
        "SELECT * FROM items",
        "SELECT * FROM mystery",
        "SELECT items.name, bids.amount FROM items, bids "
        "WHERE items.id = bids.item_id",
        "SELECT amount FROM items, bids WHERE items.id = bids.item_id",
        "SELECT seller, COUNT(*) FROM items GROUP BY seller",
        "SELECT name FROM items WHERE id IN "
        "(SELECT item_id FROM bids WHERE amount > 10)",
        "UPDATE items SET price = ? WHERE id = ?",
        "INSERT INTO bids (item_id, bidder, amount) VALUES (?, ?, ?)",
        "DELETE FROM users WHERE id = ?",
    ]

    def test_catalog_free_equals_extract_info(self):
        for sql in self.STATEMENTS:
            params = tuple(1 for _ in range(sql.count("?")))
            statement = stmt_of(sql, params)
            lineage = compute_lineage(statement, None)
            assert lineage.read_set == extract_info(statement).columns_read, sql

    def test_catalog_never_widens_beyond_wildcards(self):
        # Every entry the catalogued set contains must be *covered* by
        # the catalog-free set (a wildcard/spill may expand to concrete
        # columns, but no genuinely new table/column pair may appear).
        for sql in self.STATEMENTS:
            params = tuple(1 for _ in range(sql.count("?")))
            statement = stmt_of(sql, params)
            free = compute_lineage(statement, None)
            sharpened = compute_lineage(statement, CATALOG)
            for table, column in sharpened.read_set:
                assert free.reads_column(table, column) or table == "?", (
                    sql, table, column
                )

    def test_catalog_never_loses_coverage(self):
        # Monotone widening, the direction invalidation correctness
        # needs: every (table, column) the catalog-free set covers must
        # still be covered after sharpening (over the cataloged tables;
        # the whole point of expansion is dropping *unknowable* pairs a
        # wildcard over-covered, with the schema as proof).
        rng = random.Random(11)
        for sql in self.STATEMENTS:
            params = tuple(1 for _ in range(sql.count("?")))
            statement = stmt_of(sql, params)
            free = compute_lineage(statement, None)
            sharpened = compute_lineage(statement, CATALOG)
            for table in CATALOG.tables:
                for column in CATALOG.columns_of(table) | {"k%d" % rng.randrange(3)}:
                    known = column in CATALOG.columns_of(table)
                    if free.reads_column(table, column) and known:
                        assert sharpened.reads_column(table, column), (
                            sql, table, column
                        )

    def test_unparsed_construct_widens_to_tables(self):
        # A statement shape _compute cannot handle must degrade to the
        # full width of its tables, not raise and not narrow.
        class Hostile:
            def __getattr__(self, name):
                raise RuntimeError("no attribute for you")

        lineage = compute_lineage(Hostile(), CATALOG)
        assert lineage.read_set == {("?", "*")}
        assert not lineage.exact
        assert lineage.reads_column("anything", "at_all")

    def test_write_read_set_is_predicate_only(self):
        lineage = compute_lineage(
            stmt_of("UPDATE items SET price = ? WHERE id = ?", (1, 2)), CATALOG
        )
        assert lineage.outputs == ()
        assert lineage.read_set == {("items", "id")}
        assert lineage.exact
