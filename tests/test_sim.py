"""Simulator tests: clock, resources, cost model, meter, runner."""

import pytest

from repro.apps.rubis import RubisDataset, build_rubis
from repro.apps.rubis.workload import bidding_mix
from repro.cache.autowebcache import AutoWebCache
from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel, RequestWork, RUBIS_COST_MODEL
from repro.sim.meter import WorkMeter
from repro.sim.resources import Resource
from repro.sim.runner import LoadSimulator, SimulationConfig
from repro.web.http import HttpRequest, HttpResponse
from repro.workload.session import SessionConfig


class TestClock:
    def test_advance_forward_only(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(3.0)
        assert clock.now() == 5.0


class TestResource:
    def test_idle_server_serves_immediately(self):
        resource = Resource("r", workers=1)
        assert resource.schedule(10.0, 2.0) == 12.0

    def test_busy_server_queues(self):
        resource = Resource("r", workers=1)
        resource.schedule(0.0, 5.0)
        assert resource.schedule(1.0, 1.0) == 6.0  # waits until 5.0

    def test_multiple_workers_parallel(self):
        resource = Resource("r", workers=2)
        assert resource.schedule(0.0, 5.0) == 5.0
        assert resource.schedule(0.0, 5.0) == 5.0
        assert resource.schedule(0.0, 5.0) == 10.0

    def test_zero_demand_passthrough(self):
        resource = Resource("r", workers=1)
        resource.schedule(0.0, 100.0)
        assert resource.schedule(1.0, 0.0) == 1.0
        assert resource.jobs == 1  # zero-demand jobs not counted

    def test_utilization(self):
        resource = Resource("r", workers=2)
        resource.schedule(0.0, 5.0)
        assert resource.utilization(10.0) == pytest.approx(0.25)

    def test_negative_demand_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r", workers=1).schedule(0.0, -1.0)

    def test_zero_workers_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r", workers=0)

    def test_reset(self):
        resource = Resource("r", workers=1)
        resource.schedule(0.0, 5.0)
        resource.reset()
        assert resource.busy_time == 0.0
        assert resource.schedule(0.0, 1.0) == 1.0


class TestCostModel:
    def test_hit_is_cheap(self):
        model = CostModel()
        hit = RequestWork(cache_hit=True, cache_enabled=True)
        miss = RequestWork(queries=3, rows_examined=50, bytes_out=4096,
                           cache_enabled=True)
        app_hit, db_hit = model.demands(hit)
        app_miss, db_miss = model.demands(miss)
        assert app_hit < app_miss
        assert db_hit == 0.0
        assert db_miss > 0.0

    def test_demand_scales_with_work(self):
        model = CostModel()
        small = RequestWork(queries=1, rows_examined=10, bytes_out=100)
        large = RequestWork(queries=10, rows_examined=1000, bytes_out=10000)
        assert model.demands(small)[0] < model.demands(large)[0]
        assert model.demands(small)[1] < model.demands(large)[1]

    def test_cache_enabled_adds_lookup_cost(self):
        model = CostModel()
        plain = RequestWork(queries=1, bytes_out=100)
        cached = RequestWork(queries=1, bytes_out=100, cache_enabled=True)
        assert model.demands(cached)[0] > model.demands(plain)[0]

    def test_invalidation_tests_charged(self):
        model = CostModel()
        write = RequestWork(updates=1, cache_enabled=True, is_write=True,
                            intersection_tests=100)
        calm = RequestWork(updates=1, cache_enabled=True, is_write=True)
        assert model.demands(write)[0] > model.demands(calm)[0]


class TestWorkMeter:
    def test_measures_query_and_hit_deltas(self):
        app = build_rubis(RubisDataset(n_users=10, n_items=10, seed=2))
        awc = AutoWebCache()
        awc.install(app.servlet_classes)
        try:
            meter = WorkMeter(app.database, awc)
            before = meter.snapshot()
            response = app.container.get("/rubis/view_item", {"item": "1"})
            work = meter.work_since(before, response, is_write=False)
            assert work.queries >= 2
            assert not work.cache_hit
            assert work.miss_reason == "cold"
            assert work.bytes_out == len(response.body)

            before = meter.snapshot()
            response = app.container.get("/rubis/view_item", {"item": "1"})
            work = meter.work_since(before, response, is_write=False)
            assert work.cache_hit
            assert work.queries == 0
        finally:
            awc.uninstall()

    def test_uncached_meter(self):
        app = build_rubis(RubisDataset(n_users=10, n_items=10, seed=2))
        meter = WorkMeter(app.database)
        assert not meter.cache_enabled
        before = meter.snapshot()
        response = app.container.get("/rubis/browse_categories")
        work = meter.work_since(before, response, is_write=False)
        assert not work.cache_enabled
        assert work.queries == 1


class TestLoadSimulator:
    def run_small(self, cached, seed=9):
        app = build_rubis(RubisDataset(n_users=30, n_items=50, seed=3))
        mix = bidding_mix(app.dataset)
        clock = VirtualClock()
        awc = None
        if cached:
            awc = AutoWebCache(clock=clock.now)
            awc.install(app.servlet_classes)
        try:
            config = SimulationConfig(
                n_clients=20,
                warmup=10.0,
                duration=40.0,
                seed=seed,
                session=SessionConfig(think_time_mean=2.0, session_duration=60.0),
            )
            simulator = LoadSimulator(
                app.container, app.database, mix, config, RUBIS_COST_MODEL,
                clock=clock, awc=awc,
            )
            return simulator.run()
        finally:
            if awc is not None:
                awc.uninstall()

    def test_runs_and_collects_metrics(self):
        result = self.run_small(cached=False)
        assert result.total_requests > 100
        assert result.errors == 0
        assert result.metrics.request_count > 0
        assert result.metrics.dropped_warmup > 0
        assert result.mean_response_time_ms > 0

    def test_cached_run_observes_hits(self):
        result = self.run_small(cached=True)
        assert result.hit_rate > 0.2

    def test_deterministic_given_seed(self):
        first = self.run_small(cached=False, seed=4)
        second = self.run_small(cached=False, seed=4)
        assert first.total_requests == second.total_requests
        assert first.mean_response_time_ms == pytest.approx(
            second.mean_response_time_ms
        )

    def test_different_seeds_differ(self):
        first = self.run_small(cached=False, seed=4)
        second = self.run_small(cached=False, seed=5)
        assert first.total_requests != second.total_requests

    def test_more_clients_more_requests(self):
        app = build_rubis(RubisDataset(n_users=30, n_items=50, seed=3))
        mix = bidding_mix(app.dataset)

        def run(n):
            config = SimulationConfig(
                n_clients=n, warmup=5.0, duration=20.0, seed=1,
                session=SessionConfig(think_time_mean=2.0),
            )
            return LoadSimulator(
                app.container, app.database, mix, config, RUBIS_COST_MODEL
            ).run()

        assert run(40).total_requests > run(10).total_requests
