"""Pointcut language tests."""

import pytest

from repro.aop.pointcut import MethodTarget, parse_pointcut
from repro.errors import PointcutSyntaxError


class Base:
    def do_get(self, request, response):
        pass


class Child(Base):
    def do_get(self, request, response):
        pass

    def do_post(self, request, response):
        pass

    def helper(self):
        pass


class Unrelated:
    def do_get(self, request, response):
        pass


def target(cls, name):
    return MethodTarget(cls=cls, method_name=name, function=vars(cls)[name])


def test_exact_type_and_method():
    pc = parse_pointcut("execution(Child.do_get(..))")
    assert pc.matches(target(Child, "do_get"))
    assert not pc.matches(target(Base, "do_get"))
    assert not pc.matches(target(Child, "do_post"))


def test_subtype_matching_with_plus():
    pc = parse_pointcut("execution(Base+.do_get(..))")
    assert pc.matches(target(Base, "do_get"))
    assert pc.matches(target(Child, "do_get"))
    assert not pc.matches(target(Unrelated, "do_get"))


def test_wildcard_type():
    pc = parse_pointcut("execution(*.do_get(..))")
    assert pc.matches(target(Child, "do_get"))
    assert pc.matches(target(Unrelated, "do_get"))


def test_wildcard_method():
    pc = parse_pointcut("execution(Child.do_*(..))")
    assert pc.matches(target(Child, "do_get"))
    assert pc.matches(target(Child, "do_post"))
    assert not pc.matches(target(Child, "helper"))


def test_arity_constraint():
    two_args = parse_pointcut("execution(Child.do_get(a, b))")
    assert two_args.matches(target(Child, "do_get"))
    zero_args = parse_pointcut("execution(Child.helper())")
    assert zero_args.matches(target(Child, "helper"))
    wrong = parse_pointcut("execution(Child.do_get(a))")
    assert not wrong.matches(target(Child, "do_get"))


def test_call_keyword_is_accepted():
    pc = parse_pointcut("call(Child.do_get(..))")
    assert pc.matches(target(Child, "do_get"))


def test_and_combinator():
    pc = parse_pointcut("execution(Base+.do_*(..)) && !execution(*.do_post(..))")
    assert pc.matches(target(Child, "do_get"))
    assert not pc.matches(target(Child, "do_post"))


def test_or_combinator():
    pc = parse_pointcut("execution(*.do_get(..)) || execution(*.helper(..))")
    assert pc.matches(target(Child, "helper"))
    assert pc.matches(target(Child, "do_get"))
    assert not pc.matches(target(Child, "do_post"))


def test_parenthesised_expression():
    pc = parse_pointcut(
        "!(execution(*.do_get(..)) || execution(*.do_post(..)))"
    )
    assert pc.matches(target(Child, "helper"))
    assert not pc.matches(target(Child, "do_get"))


def test_operator_overloads():
    a = parse_pointcut("execution(*.do_get(..))")
    b = parse_pointcut("execution(*.do_post(..))")
    assert (a | b).matches(target(Child, "do_post"))
    assert not (a & b).matches(target(Child, "do_get"))
    assert (~a).matches(target(Child, "helper"))


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "execution(",
        "execution(Foo)",
        "execution(Foo.bar(..)) &&",
        "perform(Foo.bar(..))",
        "execution(Foo.bar(..)) trailing",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(PointcutSyntaxError):
        parse_pointcut(bad)


def test_str_rendering():
    pc = parse_pointcut("execution(Base+.do_get(..))")
    assert "Base+" in str(pc)
