"""Parser unit tests: statement structure and error handling."""

import pytest

from repro.errors import SqlParseError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement


class TestSelect:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert [i.expression.column for i in stmt.items] == ["a", "b"]
        assert stmt.tables[0].name == "t"

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        star = stmt.items[0].expression
        assert isinstance(star, ast.Star) and star.table == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "u"

    def test_where_precedence_or_under_and(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        # AND binds tighter: OR(x=1, AND(y=2, z=3))
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_not_operator(self):
        stmt = parse_statement("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(stmt.where, ast.UnaryOp)
        assert stmt.where.op == "NOT"

    def test_comparison_operators(self):
        for op in ("=", "<", ">", "<=", ">=", "<>"):
            stmt = parse_statement(f"SELECT a FROM t WHERE x {op} 1")
            assert stmt.where.op == op

    def test_bang_equals_normalised(self):
        stmt = parse_statement("SELECT a FROM t WHERE x != 1")
        assert stmt.where.op == "<>"

    def test_like(self):
        stmt = parse_statement("SELECT a FROM t WHERE name LIKE 'ab%'")
        assert stmt.where.op == "LIKE"

    def test_not_like(self):
        stmt = parse_statement("SELECT a FROM t WHERE name NOT LIKE 'ab%'")
        assert stmt.where.op == "NOT LIKE"

    def test_in_list(self):
        stmt = parse_statement("SELECT a FROM t WHERE x IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse_statement("SELECT a FROM t WHERE x NOT IN (1)")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse_statement("SELECT a FROM t WHERE x BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.Between)

    def test_is_null_and_is_not_null(self):
        stmt = parse_statement("SELECT a FROM t WHERE x IS NULL")
        assert isinstance(stmt.where, ast.IsNull) and not stmt.where.negated
        stmt = parse_statement("SELECT a FROM t WHERE x IS NOT NULL")
        assert stmt.where.negated

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_asc_desc(self):
        stmt = parse_statement("SELECT a, b FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit.value == 10
        assert stmt.offset.value == 5

    def test_limit_placeholder(self):
        stmt = parse_statement("SELECT a FROM t LIMIT ?")
        assert isinstance(stmt.limit, ast.Placeholder)

    def test_distinct(self):
        stmt = parse_statement("SELECT DISTINCT a FROM t")
        assert stmt.distinct

    def test_multiple_tables(self):
        stmt = parse_statement("SELECT a FROM t, u WHERE t.id = u.id")
        assert len(stmt.tables) == 2

    def test_inner_join(self):
        stmt = parse_statement("SELECT a FROM t JOIN u ON t.id = u.id")
        assert stmt.joins[0].kind == "INNER"

    def test_left_join(self):
        stmt = parse_statement("SELECT a FROM t LEFT JOIN u ON t.id = u.id")
        assert stmt.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_statement("SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.id")
        assert stmt.joins[0].kind == "LEFT"

    def test_aggregates(self):
        stmt = parse_statement("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t")
        names = [i.expression.name for i in stmt.items]
        assert names == ["COUNT", "SUM", "AVG", "MIN", "MAX"]

    def test_count_distinct(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT x) FROM t")
        assert stmt.items[0].expression.distinct

    def test_arithmetic_precedence(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = 1 + 2 * 3")
        plus = stmt.where.right
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_parenthesised_expression(self):
        stmt = parse_statement("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"

    def test_unary_minus_folds_numeric_literal(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = -5")
        assert stmt.where.right == ast.Literal(value=-5)

    def test_unary_minus_on_column_stays_unary(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = -y")
        assert isinstance(stmt.where.right, ast.UnaryOp)

    def test_qualified_columns(self):
        stmt = parse_statement("SELECT t.a FROM t WHERE t.b = 1")
        assert stmt.items[0].expression.table == "t"


class TestWriteStatements:
    def test_insert(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ("a", "b")
        assert stmt.values[0].value == 1

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlParseError):
            parse_statement("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_without_where(self):
        stmt = parse_statement("UPDATE t SET a = 1")
        assert stmt.where is None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE id = 3")
        assert isinstance(stmt, ast.Delete)

    def test_delete_all(self):
        stmt = parse_statement("DELETE FROM t")
        assert stmt.where is None

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20), x FLOAT)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].type_name == "VARCHAR"

    def test_read_write_classification(self):
        assert parse_statement("SELECT a FROM t").is_read
        assert parse_statement("INSERT INTO t (a) VALUES (1)").is_write
        assert parse_statement("UPDATE t SET a = 1").is_write
        assert parse_statement("DELETE FROM t").is_write


class TestPlaceholders:
    def test_placeholder_indices_assigned_in_order(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = ? AND y = ?")
        assert stmt.where.left.right.index == 0
        assert stmt.where.right.right.index == 1

    def test_placeholders_span_clauses(self):
        stmt = parse_statement("UPDATE t SET a = ? WHERE b = ?")
        assert stmt.assignments[0].value.index == 0
        assert stmt.where.right.index == 1


class TestErrors:
    def test_garbage_statement(self):
        with pytest.raises(SqlParseError):
            parse_statement("FROB THE WIDGET")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT a FROM t extra junk ;;")

    def test_missing_from_table(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT a FROM WHERE x = 1")

    def test_dangling_not(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT a FROM t WHERE x NOT")

    def test_trailing_semicolon_allowed(self):
        stmt = parse_statement("SELECT a FROM t;")
        assert isinstance(stmt, ast.Select)
