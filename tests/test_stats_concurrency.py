"""Exactness of lock-protected statistics counters under threads.

``JdbcConsistencyAspect`` used to keep its own unlocked
``extra_queries`` integer; concurrent pre-image captures lost
increments (`x += 1` is not atomic).  The counter now lives in
:class:`~repro.cache.stats.CacheStats` behind the stats lock, so under
any interleaving the count equals exactly one per captured pre-image.
"""

from __future__ import annotations

import threading

import pytest

from repro.cache.autowebcache import AutoWebCache
from tests.conftest import build_notes_app

N_THREADS = 8
POSTS_PER_THREAD = 25


@pytest.mark.concurrency
def test_extra_queries_counter_is_exact_under_threads():
    db, container = build_notes_app()
    db.execute(
        "INSERT INTO notes (id, topic, body, score) VALUES (?, ?, ?, ?)",
        (1, "t", "hello", 0),
    )
    awc = AutoWebCache()  # default policy: EXTRA_QUERY
    awc.install(container.servlet_classes)
    try:
        barrier = threading.Barrier(N_THREADS)
        errors: list[BaseException] = []

        def hammer(thread_no: int) -> None:
            try:
                barrier.wait()
                for i in range(POSTS_PER_THREAD):
                    container.post(
                        "/score",
                        {"id": "1", "score": str(thread_no * 1000 + i)},
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # Every score POST is one UPDATE under EXTRA_QUERY: exactly one
        # pre-image capture each, none lost to racing increments.
        expected = N_THREADS * POSTS_PER_THREAD
        assert awc.stats.extra_queries == expected
        # The aspect's legacy attribute delegates to the same counter.
        assert awc.jdbc_aspect.extra_queries == expected
        assert awc.stats.write_requests == expected
    finally:
        awc.uninstall()
