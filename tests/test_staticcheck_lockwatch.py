"""Dynamic lockset mode: the woven lock-order recorder.

Unit-level coverage of the recorder semantics (ordering, reentrancy,
same-name nesting, failed try-acquires, static diffing) plus an
end-to-end run: threaded traffic through the real woven cache must take
zero rank-inverting acquisition edges.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.locks import NamedRLock
from repro.staticcheck.lockwatch import LockWatchRecorder, watch_locks

pytestmark = [pytest.mark.staticcheck]

if os.environ.get("REPRO_LOCKWATCH") == "1":
    # Under `make stress-lockwatch` the session fixture has already
    # woven NamedRLock; these tests weave a recorder of their own and
    # deliberately seed violations, which would fail the session-level
    # zero-violation assertion.  The rest of the stress suite provides
    # the real traffic the session recorder watches.
    pytestmark.append(
        pytest.mark.skip(reason="session-level lockwatch recorder active")
    )


@pytest.fixture
def watched():
    recorder = LockWatchRecorder()
    weaver = watch_locks(recorder)
    try:
        yield recorder
    finally:
        weaver.unweave()


def test_ordered_acquisition_is_clean(watched):
    outer = NamedRLock("page-store")
    inner = NamedRLock("dependency-table")
    with outer:
        with inner:
            pass
    assert watched.acquisitions == 2
    assert watched.snapshot_violations() == []
    assert ("page-store", "dependency-table") in watched.edge_set()


def test_rank_inversion_is_flagged(watched):
    outer = NamedRLock("dependency-table")
    inner = NamedRLock("page-store")
    with outer:
        with inner:
            pass
    violations = watched.snapshot_violations()
    assert len(violations) == 1
    assert violations[0].kind == "rank"
    assert violations[0].held == "dependency-table"
    assert violations[0].acquired == "page-store"
    assert "rank" in violations[0].describe()


def test_reentrant_reacquisition_is_not_an_edge(watched):
    lock = NamedRLock("stats")
    with lock:
        with lock:
            pass
    assert watched.snapshot_violations() == []
    assert watched.edge_set() == set()
    # Only the first acquisition of the instance counts.
    assert watched.acquisitions == 1


def test_same_name_distinct_instances_nested_is_flagged(watched):
    first = NamedRLock("stats")
    second = NamedRLock("stats")
    with first:
        with second:
            pass
    violations = watched.snapshot_violations()
    assert [v.kind for v in violations] == ["same-name"]
    assert "self-deadlock" in violations[0].describe()


def test_failed_try_acquire_holds_nothing(watched):
    lock = NamedRLock("page-store")
    other = NamedRLock("dependency-table")
    started = threading.Event()
    release = threading.Event()

    def holder():
        with lock:
            started.set()
            release.wait(5)

    thread = threading.Thread(target=holder)
    thread.start()
    started.wait(5)
    assert lock.acquire(blocking=False) is False
    # The failed attempt must not leave a phantom "held" entry that
    # would turn this acquisition into a page-store -> dependency-table
    # edge on this thread.
    with other:
        pass
    release.set()
    thread.join()
    assert ("page-store", "dependency-table") not in watched.edge_set()
    assert watched.snapshot_violations() == []


def test_diff_against_static_reports_unseen_edges(watched):
    outer = NamedRLock("cache-facade")
    inner = NamedRLock("stats")
    with outer:
        with inner:
            pass
    assert watched.diff_against_static(set()) == {("cache-facade", "stats")}
    assert watched.diff_against_static({("cache-facade", "stats")}) == set()


@pytest.mark.concurrency
def test_threaded_woven_cache_traffic_takes_no_bad_edges(watched):
    from repro.apps.rubis.app import build_rubis
    from repro.cache.autowebcache import AutoWebCache

    app = build_rubis()
    awc = AutoWebCache()
    awc.install(app.container.servlet_classes)
    try:
        def client(offset: int) -> None:
            for i in range(20):
                item = str((i + offset) % 5 + 1)
                app.container.get("/rubis/view_item", {"item": item})
                app.container.get("/rubis/view_bid_history", {"item": item})
                if i % 5 == 4:
                    app.container.post(
                        "/rubis/store_bid",
                        {"item": item, "user": "1", "bid": str(200.0 + i)},
                    )

        threads = [
            threading.Thread(target=client, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        awc.uninstall()

    assert watched.acquisitions > 0, "the woven cache never took a lock"
    violations = watched.snapshot_violations()
    assert violations == [], "\n".join(v.describe() for v in violations)
