"""EXPLAIN tests: the engine picks the expected access paths."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "orders",
            [
                Column("id", ColumnType.INT),
                Column("customer", ColumnType.INT),
                Column("total", ColumnType.FLOAT),
            ],
            primary_key="id",
            indexes=["customer"],
        )
    )
    database.create_table(
        TableSchema(
            "customers",
            [Column("id", ColumnType.INT), Column("name", ColumnType.VARCHAR)],
            primary_key="id",
        )
    )
    database.insert_rows(
        "orders",
        [{"id": i, "customer": i % 3, "total": float(i)} for i in range(9)],
    )
    database.insert_rows(
        "customers", [{"id": i, "name": f"c{i}"} for i in range(3)]
    )
    return database


def test_primary_key_lookup(db):
    plan = db.explain("SELECT total FROM orders WHERE id = 4")
    assert plan == ["orders: primary key id"]


def test_secondary_index_lookup(db):
    plan = db.explain("SELECT total FROM orders WHERE customer = ?", (1,))
    assert plan == ["orders: index eq customer"]


def test_full_scan_for_range(db):
    plan = db.explain("SELECT id FROM orders WHERE total > 3")
    assert plan == ["orders: full scan"]


def test_unindexed_equality_scans(db):
    plan = db.explain("SELECT id FROM orders WHERE total = 3")
    assert plan == ["orders: full scan"]


def test_index_join_via_where(db):
    plan = db.explain(
        "SELECT customers.name FROM orders, customers "
        "WHERE orders.customer = customers.id AND orders.id = 5"
    )
    assert plan == ["orders: primary key id", "customers: index join on id"]


def test_explicit_join_uses_index(db):
    plan = db.explain(
        "SELECT customers.name FROM orders "
        "JOIN customers ON orders.customer = customers.id"
    )
    assert plan == ["orders: full scan", "customers: INNER join index on id"]


def test_left_join_without_index_scans(db):
    db.create_table(
        TableSchema("tags", [Column("label", ColumnType.VARCHAR)])
    )
    plan = db.explain(
        "SELECT orders.id FROM orders LEFT JOIN tags ON tags.label = 'x'"
    )
    assert plan == ["orders: full scan", "tags: LEFT join full scan"]


def test_disjunction_disables_index(db):
    plan = db.explain(
        "SELECT id FROM orders WHERE customer = 1 OR total = 2"
    )
    assert plan == ["orders: full scan"]


def test_explain_rejects_writes(db):
    with pytest.raises(ExecutionError):
        db.explain("DELETE FROM orders")


def test_or_under_and_still_uses_required_conjunct(db):
    plan = db.explain(
        "SELECT id FROM orders WHERE customer = 1 AND (total = 2 OR total = 3)"
    )
    assert plan == ["orders: index eq customer"]
