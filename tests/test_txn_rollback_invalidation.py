"""Transaction-rollback invalidation: rolled-back writes invalidate nothing.

Regression tests for the over-invalidation bug: the JDBC consistency
aspect used to record write instances the moment ``execute_update``
returned, so a write issued inside an explicit transaction that was
later rolled back still doomed every dependent page -- evicting
perfectly fresh content.  Write instances observed while
``connection.in_transaction`` are now *staged* per connection, promoted
to real invalidation work by ``Connection.commit`` and discarded by
``Connection.rollback``.

The committed-path test doubles as the staleness oracle: a committed
transactional write must still invalidate exactly as an autocommit
write does, so the cached page never serves the pre-commit score.
"""

from __future__ import annotations

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import ScoreNoteServlet, ViewNoteServlet, make_notes_db


class TxnScoreServlet(HttpServlet):
    """Write handler: updates a note's score inside an explicit
    transaction, then commits or rolls back per the ``outcome`` param."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        outcome = request.get_parameter("outcome")
        self._connection.begin()
        statement = self._connection.create_statement()
        statement.execute_update(
            "UPDATE notes SET score = ? WHERE id = ?",
            (
                int(request.get_parameter("score")),
                int(request.get_parameter("id")),
            ),
        )
        if outcome == "commit":
            self._connection.commit()
        else:
            self._connection.rollback()
        response.write(outcome)


class TxnPeekServlet(HttpServlet):
    """Read handler that *also* writes inside a transaction it rolls
    back -- the page it renders reflects only pre-transaction state, so
    it is safe to cache, but the rolled-back write must not linger."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        note_id = int(request.get_parameter("id"))
        self._connection.begin()
        statement = self._connection.create_statement()
        statement.execute_update(
            "UPDATE notes SET score = 999 WHERE id = ?", (note_id,)
        )
        self._connection.rollback()
        result = statement.execute_query(
            "SELECT body, score FROM notes WHERE id = ?", (note_id,)
        )
        result.next()
        response.write(f"<p>{result.get('body')}|{result.get('score')}</p>")


def _build_app():
    db = make_notes_db()
    db.execute(
        "INSERT INTO notes (id, topic, body, score) VALUES (?, ?, ?, ?)",
        (1, "tx", "hello", 5),
    )
    connection = connect(db)
    container = ServletContainer()
    container.register("/view_note", ViewNoteServlet(connection))
    container.register("/txn_score", TxnScoreServlet(connection))
    container.register("/txn_peek", TxnPeekServlet(connection))
    container.register("/score", ScoreNoteServlet(connection))
    return db, container


@pytest.fixture
def txn_app():
    db, container = _build_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        yield db, container, awc
    finally:
        awc.uninstall()


def test_rolled_back_write_invalidates_nothing(txn_app):
    _, container, awc = txn_app
    first = container.get("/view_note", {"id": "1"})
    assert "hello|5" in first.body
    assert len(awc.cache) == 1

    container.post(
        "/txn_score", {"id": "1", "score": "42", "outcome": "rollback"}
    )

    assert awc.stats.invalidated_pages == 0
    assert len(awc.cache) == 1
    again = container.get("/view_note", {"id": "1"})
    assert "hello|5" in again.body
    assert awc.stats.hits == 1  # served from cache, not re-rendered


def test_committed_write_still_invalidates(txn_app):
    _, container, awc = txn_app
    container.get("/view_note", {"id": "1"})
    assert len(awc.cache) == 1

    container.post(
        "/txn_score", {"id": "1", "score": "42", "outcome": "commit"}
    )

    assert awc.stats.invalidated_pages == 1
    assert len(awc.cache) == 0
    fresh = container.get("/view_note", {"id": "1"})
    assert "hello|42" in fresh.body  # no staleness through the cache


def test_rollback_then_commit_promotes_only_committed_writes(txn_app):
    """A rollback must not poison the connection: the *next* committed
    transaction on the same connection invalidates normally."""
    _, container, awc = txn_app
    container.get("/view_note", {"id": "1"})

    container.post(
        "/txn_score", {"id": "1", "score": "7", "outcome": "rollback"}
    )
    assert awc.stats.invalidated_pages == 0

    container.post(
        "/txn_score", {"id": "1", "score": "8", "outcome": "commit"}
    )
    assert awc.stats.invalidated_pages == 1
    assert "hello|8" in container.get("/view_note", {"id": "1"}).body


def test_read_context_transaction_rollback_aborts_caching(txn_app):
    """A read request that writes inside a transaction and rolls it
    back renders pre-transaction state -- cacheable in principle, but
    the protocol conservatively refuses to cache an aborted context."""
    _, container, awc = txn_app
    response = container.get("/txn_peek", {"id": "1"})
    assert "hello|5" in response.body  # rollback really undid the write
    assert len(awc.cache) == 0  # aborted context: never cached
    assert awc.stats.invalidated_pages == 0


def test_autocommit_write_unaffected_by_staging(txn_app):
    """Writes outside any transaction keep the original immediate-record
    path."""
    _, container, awc = txn_app
    container.get("/view_note", {"id": "1"})

    container.post("/score", {"id": "1", "score": "11"})
    assert awc.stats.invalidated_pages == 1
    assert "hello|11" in container.get("/view_note", {"id": "1"}).body
