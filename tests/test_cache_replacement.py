"""Replacement policy tests (the paper's future-work extension)."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    UnboundedPolicy,
    make_policy,
)
from repro.errors import CacheError


class TestUnbounded:
    def test_never_needs_eviction(self):
        policy = UnboundedPolicy()
        for i in range(100):
            policy.on_insert(f"k{i}")
        assert not policy.needs_eviction
        assert len(policy) == 100

    def test_victim_raises(self):
        policy = UnboundedPolicy()
        policy.on_insert("k")
        with pytest.raises(CacheError):
            policy.victim()

    def test_remove(self):
        policy = UnboundedPolicy()
        policy.on_insert("k")
        policy.on_remove("k")
        assert len(policy) == 0


class TestLru:
    def test_victim_is_least_recently_used(self):
        policy = LruPolicy(capacity=2)
        policy.on_insert("a")
        policy.on_insert("b")
        assert policy.victim() == "a"

    def test_access_refreshes_recency(self):
        policy = LruPolicy(capacity=2)
        policy.on_insert("a")
        policy.on_insert("b")
        policy.on_access("a")
        assert policy.victim() == "b"

    def test_needs_eviction_over_capacity(self):
        policy = LruPolicy(capacity=2)
        for k in "abc":
            policy.on_insert(k)
        assert policy.needs_eviction
        policy.on_remove(policy.victim())
        assert not policy.needs_eviction

    def test_invalid_capacity(self):
        with pytest.raises(CacheError):
            LruPolicy(capacity=0)

    def test_access_unknown_key_is_noop(self):
        policy = LruPolicy(capacity=2)
        policy.on_access("ghost")
        assert len(policy) == 0


class TestFifo:
    def test_victim_ignores_access(self):
        policy = FifoPolicy(capacity=2)
        policy.on_insert("a")
        policy.on_insert("b")
        policy.on_access("a")
        assert policy.victim() == "a"

    def test_reinsert_keeps_original_position(self):
        policy = FifoPolicy(capacity=2)
        policy.on_insert("a")
        policy.on_insert("b")
        policy.on_insert("a")  # refresh does not move a to the back
        assert policy.victim() == "a"

    def test_empty_victim_raises(self):
        with pytest.raises(CacheError):
            FifoPolicy(capacity=1).victim()


class TestLfu:
    def test_victim_is_least_frequent(self):
        policy = LfuPolicy(capacity=3)
        for k in "abc":
            policy.on_insert(k)
        policy.on_access("a")
        policy.on_access("a")
        policy.on_access("b")
        assert policy.victim() == "c"

    def test_tie_broken_by_insertion_order(self):
        policy = LfuPolicy(capacity=3)
        policy.on_insert("x")
        policy.on_insert("y")
        assert policy.victim() == "x"

    def test_reinsert_resets_count(self):
        policy = LfuPolicy(capacity=3)
        policy.on_insert("a")
        policy.on_access("a")
        policy.on_access("a")
        policy.on_insert("b")
        policy.on_insert("a")  # refresh: count back to 1, newer than b
        assert policy.victim() == "b"

    def test_remove_clears_count(self):
        policy = LfuPolicy(capacity=2)
        policy.on_insert("a")
        policy.on_remove("a")
        assert len(policy) == 0


class TestFactory:
    def test_by_name(self):
        assert isinstance(make_policy("lru", 5), LruPolicy)
        assert isinstance(make_policy("LFU", 5), LfuPolicy)
        assert isinstance(make_policy("fifo", 5), FifoPolicy)
        assert isinstance(make_policy("unbounded", None), UnboundedPolicy)

    def test_none_capacity_is_unbounded(self):
        assert isinstance(make_policy("lru", None), UnboundedPolicy)

    def test_unknown_name(self):
        with pytest.raises(CacheError):
            make_policy("magic", 5)
