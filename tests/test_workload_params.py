"""Parameter-generator tests for the benchmark workloads.

Every generator must produce parameters the servlets accept (valid id
ranges, mandatory fields present) and maintain the session locality the
mixes rely on.
"""

import random

import pytest

from repro.apps.rubis import RubisDataset
from repro.apps.rubis.workload import RubisParamFactory, bidding_mix
from repro.apps.tpcw import TpcwDataset
from repro.apps.tpcw.data import SUBJECTS
from repro.apps.tpcw.workload import TpcwParamFactory, shopping_mix
from repro.workload.session import ClientSession


def rubis_session(seed=1):
    dataset = RubisDataset(n_users=25, n_items=40)
    factory = RubisParamFactory(dataset)
    session = ClientSession(0, bidding_mix(dataset), random.Random(seed))
    return dataset, factory, session


def tpcw_session(seed=1):
    dataset = TpcwDataset(n_items=30, n_customers=15)
    factory = TpcwParamFactory(dataset)
    session = ClientSession(0, shopping_mix(dataset), random.Random(seed))
    return dataset, factory, session


class TestRubisParams:
    def test_own_user_is_stable_within_session(self):
        _d, factory, session = rubis_session()
        first = factory.own_user(session)
        assert all(factory.own_user(session) == first for _ in range(10))

    def test_item_ids_in_range(self):
        dataset, factory, session = rubis_session()
        for _ in range(200):
            assert 0 <= factory.pick_item(session) < dataset.n_items

    def test_view_item_updates_session_state(self):
        _d, factory, session = rubis_session()
        params = factory.view_item(session)
        assert session.state["item"] == int(params["item"])

    def test_bid_targets_current_item(self):
        _d, factory, session = rubis_session()
        factory.view_item(session)
        bid = factory.store_bid(session)
        assert int(bid["item"]) == session.state["item"]
        assert float(bid["bid"]) > 0

    def test_comment_has_all_parties(self):
        _d, factory, session = rubis_session()
        params = factory.store_comment(session)
        assert {"item", "to", "from", "rating", "comment"} <= set(params)

    def test_register_user_nicknames_unique_within_session(self):
        _d, factory, session = rubis_session()
        nicknames = {factory.register_user(session)["nickname"] for _ in range(20)}
        assert len(nicknames) == 20

    def test_register_user_nicknames_unique_across_sessions(self):
        dataset = RubisDataset(n_users=25, n_items=40)
        factory = RubisParamFactory(dataset)
        mix = bidding_mix(dataset)
        s1 = ClientSession(1, mix, random.Random(1))
        s2 = ClientSession(2, mix, random.Random(1))
        n1 = factory.register_user(s1)["nickname"]
        n2 = factory.register_user(s2)["nickname"]
        assert n1 != n2

    def test_category_page_mostly_first_page(self):
        _d, factory, session = rubis_session()
        pages = [int(factory.category_page(session)["page"]) for _ in range(300)]
        assert pages.count(0) > len(pages) * 0.6
        assert max(pages) <= 2

    def test_region_reuse_locality(self):
        _d, factory, session = rubis_session(seed=3)
        regions = [
            factory.category_region_page(session)["region"] for _ in range(200)
        ]
        consecutive_repeats = sum(
            a == b for a, b in zip(regions, regions[1:])
        )
        # Sessions mostly stay in the region they are browsing (~80%).
        assert consecutive_repeats > len(regions) * 0.6


class TestTpcwParams:
    def test_subjects_are_valid(self):
        _d, factory, session = tpcw_session()
        for _ in range(100):
            assert factory.subject(session)["subject"] in SUBJECTS

    def test_search_types_cover_all_three(self):
        _d, factory, session = tpcw_session()
        kinds = {factory.search(session)["type"] for _ in range(100)}
        assert kinds == {"author", "title", "subject"}

    def test_order_display_uses_own_customer(self):
        _d, factory, session = tpcw_session()
        customer = factory.own_customer(session)
        assert factory.order_display(session)["uname"] == f"user{customer}"

    def test_cart_requires_prior_shopping(self):
        _d, factory, session = tpcw_session()
        assert factory.buy_request(session) is None
        assert factory.buy_confirm(session) is None

    def test_buy_confirm_consumes_cart(self):
        _d, factory, session = tpcw_session()
        factory.shopping_cart(session)
        session.state["cart"] = 0  # learned from the response page
        assert factory.buy_request(session) is not None
        assert factory.buy_confirm(session) is not None
        # The cart is consumed: a second confirm is infeasible.
        assert factory.buy_confirm(session) is None

    def test_shopping_cart_reuses_known_cart_id(self):
        _d, factory, session = tpcw_session()
        session.state["cart"] = 7
        params = factory.shopping_cart(session)
        assert params["sc_id"] == "7"

    def test_admin_confirm_cost_in_range(self):
        _d, factory, session = tpcw_session()
        for _ in range(50):
            cost = float(factory.admin_confirm(session)["cost"])
            assert 5.0 <= cost <= 60.0


class TestZipfConcentration:
    @pytest.mark.parametrize("builder", [rubis_session, tpcw_session])
    def test_item_popularity_is_skewed(self, builder):
        _d, factory, session = builder()
        draws = [factory.pick_item(session) for _ in range(2000)]
        top_share = sum(1 for d in draws if d < 5) / len(draws)
        assert top_share > 0.3  # the head dominates
