"""Test fixtures that are importable packages (not data files)."""
