"""Seeded servlets for the fragment/hole cacheability exemption tests.

Each class exercises one edge of the RC02 hole exemption: entropy
confined to ``hole(...)`` thunks is sanctioned (recomputed per request,
never cached); entropy in ``fragment(...)`` thunks is not (the fragment
body IS cached); a fragment nested inside a hole re-enters the
cacheable surface; a helper reachable outside any hole is unconfined.
"""

from __future__ import annotations

import random

from repro.apps.html import fragment, hole
from repro.web.servlet import HttpServlet


class HoleOnly(HttpServlet):
    """Entropy confined to holes (directly and via a helper): clean."""

    def do_get(self, request, response):
        hole(response, "ad", lambda: response.write(str(random.random())))
        hole(response, "picks", lambda: self._picks(response))
        fragment(response, "body", {}, lambda: self._body(response))

    def _picks(self, response):
        response.write(str(random.choice("abc")))

    def _body(self, response):
        response.write("static")


class EntropyInFragment(HttpServlet):
    """Entropy inside a fragment thunk: the fragment body is cached."""

    def do_get(self, request, response):
        fragment(
            response, "body", {},
            lambda: response.write(str(random.random())),
        )


class FragmentInsideHole(HttpServlet):
    """A fragment nested in a hole re-enters the cacheable surface."""

    def do_get(self, request, response):
        hole(response, "outer", lambda: self._outer(response))

    def _outer(self, response):
        fragment(
            response, "inner", {},
            lambda: response.write(str(random.random())),
        )


class EscapedHelper(HttpServlet):
    """A helper reached both through a hole AND directly is unconfined."""

    def do_get(self, request, response):
        hole(response, "ad", lambda: self._banner(response))
        self._banner(response)

    def _banner(self, response):
        response.write(str(random.random()))
