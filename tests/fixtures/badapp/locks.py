"""Seeded lock-order violations (LK01).

Two flavours:

- ``Till``/``Vault`` acquire each other's (unranked) locks in both
  orders: a classic AB/BA deadlock cycle;
- ``BackwardsIndex`` holds ``dependency-table`` while entering
  ``page-store`` -- the reverse of the documented ``LOCK_ORDER`` ranks.
"""

from __future__ import annotations

from repro.locks import NamedRLock


class Vault:
    def __init__(self) -> None:
        self._lock = NamedRLock("badapp-vault")
        self.till: Till | None = None

    def deposit(self, amount: int) -> None:
        with self._lock:
            if self.till is not None:
                self.till.reconcile()


class Till:
    def __init__(self, vault: Vault) -> None:
        self._lock = NamedRLock("badapp-till")
        self._vault = vault

    def reconcile(self) -> None:
        with self._lock:
            self._vault.deposit(0)


class PageMirror:
    def __init__(self) -> None:
        self._lock = NamedRLock("page-store")
        self._entries: list[str] = []

    def push(self, entry: str) -> None:
        with self._lock:
            self._entries.append(entry)


class BackwardsIndex:
    def __init__(self, mirror: PageMirror) -> None:
        self._lock = NamedRLock("dependency-table")
        self._mirror = mirror

    def rebuild(self) -> None:
        with self._lock:
            self._mirror.push("rebuild")
