"""Seeded cacheability violations (RC01..RC06).

Each servlet below carries exactly one deliberate defect; GoodServlet is
clean and exists as the join point two rival aspects fight over (PC03),
OrphanServlet is clean but deliberately outside the caching pointcut's
type pattern (PC02).  PersonalisedCatalogue seeds RC05: of its two
designated method-cache candidates, ``recommendations`` reads session
state the ``method://`` key cannot carry, while ``category_names`` is a
clean function of its SQL.  StampingWriter seeds RC06: its do_post
updates a column (``items.audit_stamp``) that no registered read
template's lineage read set contains, so the write dooms nothing.
"""

from __future__ import annotations

import random

from repro.db.dbapi import Connection, Statement
from repro.db.engine import Database
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet


class BadServlet(HttpServlet):
    """Shared base: holds the connection, mirrors RubisServlet."""

    def __init__(self, connection: Connection) -> None:
        self._connection = connection

    def statement(self) -> Statement:
        return self._connection.create_statement()


class AuditedCounter(BadServlet):
    """RC01: a cacheable do_get that writes a hit counter."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self.statement()
        statement.execute_update(
            "UPDATE page_hits SET hits = hits + 1 WHERE page = ?",
            ("counter",),
        )
        result = statement.execute_query(
            "SELECT hits FROM page_hits WHERE page = ?", ("counter",)
        )
        result.next()
        response.write(f"<p>{result.scalar()} visits so far</p>")


class LuckyNumber(BadServlet):
    """RC02: entropy (random) rendered into a cacheable body."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        draw = random.randrange(100)
        response.write(f"<p>Your lucky number today is {draw}.</p>")


class BackdoorReader(BadServlet):
    """RC03: queries the engine directly, bypassing the woven driver."""

    def __init__(self, connection: Connection, database: Database) -> None:
        super().__init__(connection)
        self._database = database

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        rows = self._database.query("SELECT id, name FROM categories")
        response.write(f"<p>{len(rows.rows)} categories (uncounted!)</p>")


class ScanHeavy(BadServlet):
    """RC04: a read template with no equality-bound position."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self.statement()
        result = statement.execute_query(
            "SELECT id, name FROM categories ORDER BY name"
        )
        while result.next():
            response.write(f"<li>{result.get('name')}</li>")


class GoodServlet(BadServlet):
    """Clean servlet; the PC03 pair both advise its do_get."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self.statement()
        result = statement.execute_query(
            "SELECT name FROM categories WHERE id = ?", ("1",)
        )
        result.next()
        response.write(f"<p>Category: {result.get('name')}</p>")


class OrphanServlet(HttpServlet):
    """PC02: a registered handler the caching pointcut never matches.

    Deliberately NOT a BadServlet subclass -- the caching aspect's
    ``execution(BadServlet+.do_get(..))`` type pattern cannot see it.
    """

    def __init__(self, connection: Connection) -> None:
        self._connection = connection

    def statement(self) -> Statement:
        return self._connection.create_statement()

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self.statement()
        result = statement.execute_query(
            "SELECT name FROM regions WHERE id = ?", ("1",)
        )
        result.next()
        response.write(f"<p>Region: {result.get('name')}</p>")


class PersonalisedCatalogue(BadServlet):
    """RC05 (``recommendations`` only): a method-cache candidate whose
    result depends on the session, not its arguments."""

    def recommendations(self) -> list:
        user = self.get_session("user")
        result = self.statement().execute_query(
            "SELECT id, name FROM items WHERE seller = ?", (user,)
        )
        return result.all_dicts()

    def category_names(self) -> list:
        result = self.statement().execute_query(
            "SELECT name FROM categories WHERE region = ?", ("1",)
        )
        return result.all_dicts()


class StampingWriter(BadServlet):
    """RC06: a do_post UPDATE whose SET column no read ever observes.

    ``audit_stamp`` is in the catalog (so lineage is exact about it) but
    in no registered template's read set -- the write invalidates
    nothing, which is exactly what the dead-write rule reports.
    """

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self.statement()
        statement.execute_update(
            "UPDATE items SET audit_stamp = ? WHERE id = ?",
            ("now", request.get_parameter("id")),
        )
        response.write("<p>stamped</p>")
