"""Seeded pointcut-coverage violations (PC01, PC02, PC03).

- :class:`BadCachingAspect` is badapp's whole caching tier: it covers
  the driver-level SQL sites and every ``BadServlet`` handler -- but its
  type pattern deliberately misses ``OrphanServlet`` (PC02).
- :class:`GhostAspect` advises a servlet that no longer exists (PC01).
- :class:`RivalAspect` shares precedence 10 with BadCachingAspect and
  also advises ``GoodServlet.do_get`` (PC03).
"""

from __future__ import annotations

from repro.aop import Aspect, around
from repro.aop.joinpoint import JoinPoint


class BadCachingAspect(Aspect):
    """badapp's caching advice; pass-through bodies, the pointcuts are
    what the checker reads."""

    precedence = 10

    @around("execution(BadServlet+.do_get(..))")
    def cache_read(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()

    @around("execution(BadServlet+.do_post(..))")
    def invalidate_write(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()

    @around("call(Statement.execute_query(..))")
    def collect_reads(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()

    @around("call(Statement.execute_update(..))")
    def collect_writes(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()

    @around("call(Connection.commit(..))")
    def seal_on_commit(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()

    @around("call(Connection.rollback(..))")
    def discard_on_rollback(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()


class GhostAspect(Aspect):
    """PC01: its pointcut names a servlet that was deleted long ago."""

    precedence = 40

    @around("execution(RetiredServlet.do_refresh(..))")
    def refresh_stale(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()


class RivalAspect(Aspect):
    """PC03: equal precedence with BadCachingAspect on GoodServlet.do_get."""

    precedence = 10

    @around("execution(GoodServlet.do_get(..))")
    def shadow_read(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()
