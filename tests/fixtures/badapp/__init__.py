"""badapp: a deliberately broken servlet application.

Every rule the static checker knows (RC01..RC05, PC01..PC03, LK01) has
exactly one seeded violation here; the golden test asserts the checker
reports all of them with correct file:line anchors and nothing else.
Keep this app broken -- fixing it breaks the test suite, not the app.
"""

from tests.fixtures.badapp.app import badapp_target

__all__ = ["badapp_target"]
