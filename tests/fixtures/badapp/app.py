"""The badapp :class:`CheckTarget`: what the golden test runs the
checker against.  Mirrors :func:`repro.staticcheck.target.default_target`
in miniature, with no baseline (every finding stays active)."""

from __future__ import annotations

from repro.db.dbapi import Connection, ResultSet, Statement
from repro.db.engine import Database
from repro.sql.lineage import Catalog
from repro.staticcheck.target import AppSpec, CheckTarget, repo_root
from repro.web.servlet import HttpServlet
from tests.fixtures.badapp.aspects import (
    BadCachingAspect,
    GhostAspect,
    RivalAspect,
)
from tests.fixtures.badapp.locks import BackwardsIndex, PageMirror, Till, Vault
from tests.fixtures.badapp.servlets import (
    AuditedCounter,
    BackdoorReader,
    GoodServlet,
    LuckyNumber,
    OrphanServlet,
    PersonalisedCatalogue,
    ScanHeavy,
    StampingWriter,
)

#: badapp's schema as the lineage catalog.  ``categories`` is declared
#: at exactly the width ScanHeavy reads, so its full-width scan earns
#: no column-disjointness plan and RC04 still fires; ``items`` carries
#: the never-read ``audit_stamp`` column StampingWriter updates (RC06).
BADAPP_CATALOG = Catalog(
    {
        "categories": ("id", "name"),
        "regions": ("id", "name"),
        "items": ("id", "name", "seller", "audit_stamp"),
        "page_hits": ("page", "hits"),
    }
)


def badapp_target() -> CheckTarget:
    interactions = (
        ("/bad/counter", AuditedCounter, False),
        ("/bad/lucky", LuckyNumber, False),
        ("/bad/backdoor", BackdoorReader, False),
        ("/bad/scan", ScanHeavy, False),
        ("/bad/good", GoodServlet, False),
        ("/bad/orphan", OrphanServlet, False),
        ("/bad/stamp", StampingWriter, True),
    )
    return CheckTarget(
        repo_root=repo_root(),
        apps=(AppSpec(name="badapp", interactions=interactions),),
        aspect_classes=(BadCachingAspect, GhostAspect, RivalAspect),
        caching_aspect_classes=(BadCachingAspect,),
        surface_classes=(Statement, Connection),
        required_sql_sites=(
            (Statement, "execute_query"),
            (Statement, "execute_update"),
            (Connection, "commit"),
            (Connection, "rollback"),
        ),
        method_cache_targets=(
            (PersonalisedCatalogue, "recommendations"),
            (PersonalisedCatalogue, "category_names"),
        ),
        lock_classes=(Till, Vault, BackwardsIndex, PageMirror),
        catalog=BADAPP_CATALOG,
        helper_classes=(
            Statement,
            Connection,
            ResultSet,
            Database,
            HttpServlet,
        ),
        baseline_path=None,
    )
