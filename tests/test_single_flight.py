"""Single-flight (dogpile suppression) semantics.

N concurrent misses on one key must execute the servlet once, with the
consistency rule that an invalidation arriving during the computation
forces waiters to recompute instead of serving the stale body.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import make_notes_db


class GatedViewServlet(HttpServlet):
    """Reads a note, then blocks on a gate so tests control timing.

    ``executions`` counts real servlet runs -- the quantity coalescing
    must keep at one while N threads miss concurrently.
    """

    def __init__(self, connection) -> None:
        self._connection = connection
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.executions = 0
        self._lock = threading.Lock()

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        note_id = int(request.get_parameter("id"))
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT body, score FROM notes WHERE id = ?", (note_id,)
        )
        with self._lock:
            self.executions += 1
        self.entered.set()
        self.gate.wait(timeout=10)
        if result.next():
            response.write(f"<p>{result.get('body')}|{result.get('score')}</p>")
        else:
            response.write("<p>gone</p>")


class ScoreServlet(HttpServlet):
    """Write handler: updates one note's score."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self._connection.create_statement()
        statement.execute_update(
            "UPDATE notes SET score = ? WHERE id = ?",
            (
                int(request.get_parameter("score")),
                int(request.get_parameter("id")),
            ),
        )
        response.write("scored")


def build_gated_app():
    db = make_notes_db()
    db.update(
        "INSERT INTO notes (id, topic, body, score) VALUES (0, 'a', 'x', 5)"
    )
    connection = connect(db)
    container = ServletContainer()
    view = GatedViewServlet(connection)
    container.register("/view", view)
    container.register("/score", ScoreServlet(connection))
    return db, container, view


def _spin_until(predicate, timeout=5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def test_concurrent_misses_execute_servlet_once():
    _db, container, view = build_gated_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        n = 8
        bodies: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(n)

        def worker() -> None:
            barrier.wait(timeout=5)
            response = container.get("/view", {"id": "0"})
            with lock:
                bodies.append(response.body)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for thread in threads:
            thread.start()
        # One leader enters the servlet; the rest must pile onto its
        # flight.  Release the gate only once all 7 are waiting, so the
        # coalescing is forced, not lucky.
        assert view.entered.wait(timeout=5)
        flight = awc.cache.flight_for("/view?id=0")
        assert flight is not None
        assert _spin_until(lambda: flight.waiters == n - 1)
        view.gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert bodies == ["<p>x|5</p>"] * n
        assert view.executions == 1
        assert awc.stats.coalesced_hits == n - 1
        assert awc.stats.inserts == 1
        # Every thread recorded its miss before coalescing.
        assert awc.stats.misses_cold == n
        assert len(awc.cache) == 1
    finally:
        awc.uninstall()


def test_invalidation_during_computation_forces_recompute():
    _db, container, view = build_gated_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        results: dict[str, str] = {}

        def leader() -> None:
            results["leader"] = container.get("/view", {"id": "0"}).body

        def waiter() -> None:
            results["waiter"] = container.get("/view", {"id": "0"}).body

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert view.entered.wait(timeout=5)  # leader read score=5, parked
        flight = awc.cache.flight_for("/view?id=0")
        assert flight is not None
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        assert _spin_until(lambda: flight.waiters == 1)
        # The write lands while the computation is in flight: the
        # leader's page (score=5) is stale the moment it is inserted.
        response = container.post("/score", {"id": "0", "score": "6"})
        assert response.status == 200
        view.gate.set()
        leader_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        # Leader serves what it computed (equivalent to finishing just
        # before the write) but must NOT cache it...
        assert results["leader"] == "<p>x|5</p>"
        assert awc.stats.stale_inserts == 1
        # ...and the waiter recomputed instead of serving the stale body.
        assert results["waiter"] == "<p>x|6</p>"
        assert awc.stats.coalesced_hits == 0
        assert view.executions == 2
        # The recomputed (fresh) page is what the cache holds now.
        cached = awc.cache.pages.peek("/view?id=0")
        assert cached is not None and "|6" in cached.body
    finally:
        awc.uninstall()


def test_write_during_solo_computation_discards_insert():
    """Coalescing off: computations still run under a staleness window.

    Regression test -- a write landing between a solo computation's
    database reads and its insert used to be invisible (no flight to
    buffer it, no dependency registrations to doom), so the stale page
    was cached and served until the next write touching the same data.
    """
    _db, container, view = build_gated_app()
    awc = AutoWebCache(coalesce=False)
    awc.install(container.servlet_classes)
    try:
        assert awc.cache.coalesce is False
        results: dict[str, str] = {}

        def solo() -> None:
            results["solo"] = container.get("/view", {"id": "0"}).body

        thread = threading.Thread(target=solo)
        thread.start()
        assert view.entered.wait(timeout=5)  # read score=5, parked
        assert awc.cache.open_flight_keys() == ["/view?id=0"]
        # The write lands mid-computation; the parked page is stale.
        response = container.post("/score", {"id": "0", "score": "6"})
        assert response.status == 200
        view.gate.set()
        thread.join(timeout=10)
        # The solo reader serves what it computed (equivalent to
        # finishing just before the write) but must NOT cache it.
        assert results["solo"] == "<p>x|5</p>"
        assert awc.stats.stale_inserts == 1
        assert awc.cache.pages.peek("/view?id=0") is None
        assert awc.cache.open_flight_keys() == []
        # The next read recomputes and caches the fresh page.
        assert container.get("/view", {"id": "0"}).body == "<p>x|6</p>"
        cached = awc.cache.pages.peek("/view?id=0")
        assert cached is not None and "|6" in cached.body
    finally:
        awc.uninstall()


def test_forced_miss_mode_disables_coalescing():
    _db, container, view = build_gated_app()
    view.gate.set()  # no parking needed here
    awc = AutoWebCache(forced_miss=True)
    awc.install(container.servlet_classes)
    try:
        assert awc.cache.coalesce is False
        for _ in range(3):
            response = container.get("/view", {"id": "0"})
            assert response.status == 200
        assert view.executions == 3
        assert awc.stats.coalesced_hits == 0
        assert len(awc.cache) == 0 or awc.stats.hits == 0
    finally:
        awc.uninstall()


def test_failed_leader_does_not_strand_waiters():
    """A leader whose page errors leaves waiters free to recompute."""
    db = make_notes_db()
    connection = connect(db)

    class FlakyServlet(HttpServlet):
        calls = 0
        entered = threading.Event()
        gate = threading.Event()
        _lock = threading.Lock()

        def __init__(self, conn) -> None:
            self._connection = conn

        def do_get(self, request, response):
            statement = self._connection.create_statement()
            statement.execute_query("SELECT id FROM notes WHERE id = ?", (1,))
            with FlakyServlet._lock:
                FlakyServlet.calls += 1
                first = FlakyServlet.calls == 1
            if first:
                FlakyServlet.entered.set()
                FlakyServlet.gate.wait(timeout=10)
                raise RuntimeError("leader crashed")
            response.write("ok")

    container = ServletContainer()
    container.register("/flaky", FlakyServlet(connection))
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        statuses: list[int] = []
        bodies: list[str] = []
        lock = threading.Lock()

        def worker() -> None:
            response = container.get("/flaky")
            with lock:
                statuses.append(response.status)
                bodies.append(response.body)

        leader_thread = threading.Thread(target=worker)
        leader_thread.start()
        assert FlakyServlet.entered.wait(timeout=5)
        flight = awc.cache.flight_for("/flaky")
        assert flight is not None
        waiter_thread = threading.Thread(target=worker)
        waiter_thread.start()
        assert _spin_until(lambda: flight.waiters == 1)
        FlakyServlet.gate.set()
        leader_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        # Leader's crash became a 500 page; the waiter recomputed and
        # got the real page.  Nobody hung on the dead flight.
        assert sorted(statuses) == [200, 500]
        assert "ok" in bodies[statuses.index(200)] or "ok" in "".join(bodies)
        assert awc.cache.open_flights == 0
    finally:
        awc.uninstall()


def test_flight_api_leader_and_waiter_lifecycle():
    """Cache-level single-flight API, single-threaded sanity."""
    from repro.cache.api import Cache

    cache = Cache()
    flight, is_leader = cache.join_flight("/k")
    assert is_leader
    again, second_leader = cache.join_flight("/k")
    assert again is flight and not second_leader
    assert flight.waiters == 1
    entry = cache.insert(HttpRequest("GET", "/k"), "body", [])
    cache.finish_flight(flight)
    assert cache.wait_flight(flight) is entry
    assert cache.open_flights == 0
    # A finished flight's key can be recomputed afresh.
    flight2, is_leader2 = cache.join_flight("/k")
    assert is_leader2 and flight2 is not flight
    cache.finish_flight(flight2)


def test_external_invalidate_key_marks_flight_stale():
    from repro.cache.api import Cache

    cache = Cache()
    flight, _ = cache.join_flight("/k")
    cache.invalidate_key("/k")
    assert flight.stale
    entry = cache.insert(HttpRequest("GET", "/k"), "body", [])
    assert entry is not None
    assert len(cache) == 0  # stale: not stored
    assert cache.stats.stale_inserts == 1
    cache.finish_flight(flight)
    assert cache.wait_flight(flight) is None


def test_waiter_timeout_returns_none():
    from repro.cache.api import Cache

    cache = Cache(flight_timeout=0.05)
    flight, _ = cache.join_flight("/k")
    other, is_leader = cache.join_flight("/k")
    assert not is_leader
    started = time.monotonic()
    assert cache.wait_flight(other) is None  # leader never finishes
    assert time.monotonic() - started < 5.0
    cache.finish_flight(flight)


@pytest.mark.concurrency
def test_dogpile_after_invalidation_coalesces_again():
    """The paper's worst case: hot page invalidated under load."""
    _db, container, view = build_gated_app()
    view.gate.set()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        # Warm the page, then invalidate it while readers hammer it.
        container.get("/view", {"id": "0"})
        assert len(awc.cache) == 1
        stop = threading.Event()
        errors: list[Exception] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    response = container.get("/view", {"id": "0"})
                    assert response.status == 200
                    assert "|" in response.body
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for score in range(10, 20):
            container.post("/score", {"id": "0", "score": str(score)})
            time.sleep(0.005)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []
        assert awc.cache.open_flights == 0
        # Quiescent consistency: the cache serves the last written score.
        response = container.get("/view", {"id": "0"})
        assert "|19" in response.body
    finally:
        awc.uninstall()
