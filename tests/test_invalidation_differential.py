"""Property-style differential tests: indexed invalidation is invisible.

Runs the randomized differential harness (many seeds x all three
policies) asserting the indexed protocol's doomed sets and
``intersects_any`` verdicts match brute force exactly, then repeats the
equivalence end-to-end through single-node and 4-node clusters, where
the write path additionally crosses the router's dedupe and the
invalidation bus.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.analysis import InvalidationPolicy
from repro.cluster import ClusterRouter, make_cache_factory
from repro.harness.differential import (
    random_read,
    random_write,
    run_column_differential,
    run_differential,
    run_fragment_differential,
)
from repro.web.http import HttpRequest

POLICIES = [
    InvalidationPolicy.COLUMN_ONLY,
    InvalidationPolicy.WHERE_MATCH,
    InvalidationPolicy.EXTRA_QUERY,
]


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("seed", range(4))
def test_indexed_matches_brute_force(seed, policy):
    result = run_differential(seed=seed, rounds=40, n_pages=60, policy=policy)
    assert result.ok, "\n".join(result.mismatches)
    assert result.writes_tested > 0 and result.pages_doomed > 0


def test_differential_run_actually_prunes():
    """Guard against the harness degenerating into all-fallback runs:
    the equivalence claim is vacuous if the indexes never prune."""
    result = run_differential(
        seed=0, rounds=40, n_pages=60, policy=InvalidationPolicy.EXTRA_QUERY
    )
    assert result.ok
    assert result.templates_skipped > 0
    assert result.instances_skipped > 0
    # Pruning must show up as strictly less protocol work.
    assert result.pair_analyses_indexed < result.pair_analyses_brute


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("seed", range(3))
def test_column_lineage_pruning_matches_brute_force(seed, policy):
    """The column workload (stars, joins, subqueries, aggregates, and
    writes skewed toward never-read bookkeeping columns) through a
    lineage-pruning indexed invalidator vs catalog-equipped brute
    force: identical doomed sets and intersects_any verdicts."""
    result = run_column_differential(
        seed=seed, rounds=40, n_pages=60, policy=policy
    )
    assert result.ok, "\n".join(result.mismatches)
    assert result.writes_tested > 0 and result.pages_doomed > 0


def test_column_differential_actually_prunes_by_lineage():
    """Vacuity guards: the lineage rule must fire (skips > 0, plans
    built > 0) and the never-read probes must fire and doom nothing."""
    result = run_column_differential(
        seed=0, rounds=50, n_pages=80, policy=InvalidationPolicy.EXTRA_QUERY
    )
    assert result.ok, "\n".join(result.mismatches)
    assert result.templates_skipped_by_lineage > 0
    assert result.column_plans_built > 0
    assert result.never_read_probes > 0
    assert result.never_read_doomed == 0
    # Lineage pruning is protocol work saved on top of the indexes.
    assert result.pair_analyses_indexed < result.pair_analyses_brute


def _replay_cluster(
    node_names: list[str], indexed: bool, pages, batches
) -> list[set[str]]:
    router = ClusterRouter(
        node_names,
        make_cache_factory(indexed_invalidation=indexed),
    )
    for uri, reads in pages:
        router.insert(HttpRequest("GET", uri, {}), f"body {uri}", reads)
    return [router.process_write_request("/write", batch) for batch in batches]


@pytest.mark.parametrize("n_nodes", [1, 4])
def test_cluster_indexed_matches_brute_force(n_nodes):
    """Same pages, same write batches, identical ring topology: the
    per-node indexed invalidators must doom exactly the brute-force
    union at every step."""
    rng = random.Random(7)
    pages = [
        (f"/page/{i}", [random_read(rng) for _ in range(rng.randrange(1, 4))])
        for i in range(40)
    ]
    batches = [
        [random_write(rng) for _ in range(rng.randrange(1, 4))]
        for _ in range(20)
    ]
    names = [f"node-{i}" for i in range(n_nodes)]
    doomed_indexed = _replay_cluster(names, True, pages, batches)
    doomed_brute = _replay_cluster(names, False, pages, batches)
    assert doomed_indexed == doomed_brute
    assert any(doomed_indexed), "workload never invalidated anything"


@pytest.mark.parametrize("n_nodes", [1, 4])
@pytest.mark.parametrize("seed", range(4))
def test_fragment_doom_matches_brute_force_closure(seed, n_nodes):
    """Fragment-granular dooming through the router (sharding, bus
    dedupe, node-local closure, cross-shard closure) must equal a
    brute-force invalidator over every entry's dependencies unioned
    with a plain BFS up a reference copy of the containment edges."""
    result = run_fragment_differential(seed=seed, rounds=30, n_nodes=n_nodes)
    assert result.ok, "\n".join(result.mismatches)
    assert result.writes_tested > 0 and result.entries_doomed > 0
    # Vacuity guard: the runs must doom entries *through* containment,
    # not only via direct dependency matches.
    assert result.closure_doomed > 0


def test_fragment_doom_is_topology_invariant():
    """The same seed dooms the same keys on a 1-node and a 4-node ring:
    sharding must be invisible to the consistency argument."""
    single = run_fragment_differential(seed=5, rounds=25, n_nodes=1)
    quad = run_fragment_differential(seed=5, rounds=25, n_nodes=4)
    assert single.ok and quad.ok
    assert single.entries_doomed == quad.entries_doomed
    assert single.closure_doomed == quad.closure_doomed


@pytest.mark.parametrize("bus_mode", ["strong", "bounded"])
@pytest.mark.parametrize("seed", range(4))
def test_fragment_doom_matches_oracle_on_replicated_ring(seed, bus_mode):
    """A 4-node R=2 ring -- every entry written through to two nodes,
    every doom message with two physical casualties per logical key --
    must still return exactly the single-copy oracle's key set, in
    both bus modes.  Bounded mode converges (flush + async ledger
    drain) before each comparison."""
    result = run_fragment_differential(
        seed=seed, rounds=30, n_nodes=4, replication=2, bus_mode=bus_mode
    )
    assert result.ok, "\n".join(result.mismatches)
    assert result.writes_tested > 0 and result.entries_doomed > 0
    assert result.closure_doomed > 0


def test_fragment_doom_is_replication_and_mode_invariant():
    """R=1 vs R=2 and strong vs bounded must doom identical key sets
    for the same seed: replication multiplies copies, not casualties,
    and bounded delivery only moves *when* dooms land, never which."""
    baseline = run_fragment_differential(seed=9, rounds=25, n_nodes=4)
    replicated = run_fragment_differential(
        seed=9, rounds=25, n_nodes=4, replication=2
    )
    bounded = run_fragment_differential(
        seed=9, rounds=25, n_nodes=4, replication=2, bus_mode="bounded"
    )
    assert baseline.ok and replicated.ok and bounded.ok
    assert baseline.entries_doomed == replicated.entries_doomed
    assert replicated.entries_doomed == bounded.entries_doomed
    assert baseline.closure_doomed == bounded.closure_doomed


@pytest.mark.parametrize(
    "n_nodes,replication,bus_mode",
    [(1, 1, "strong"), (4, 2, "strong"), (4, 2, "bounded")],
)
def test_fragment_column_workload_matches_oracle(n_nodes, replication, bus_mode):
    """The column workload end-to-end through the fragment tier: the
    catalog-synced, lineage-pruning ring must doom exactly the oracle's
    key set, including on a replicated ring in bounded mode."""
    result = run_fragment_differential(
        seed=3,
        rounds=25,
        n_nodes=n_nodes,
        replication=replication,
        bus_mode=bus_mode,
        workload="column",
    )
    assert result.ok, "\n".join(result.mismatches)
    assert result.writes_tested > 0 and result.entries_doomed > 0
    assert result.closure_doomed > 0


def test_cluster_stats_aggregate_pruning_counters():
    rng = random.Random(11)
    router = ClusterRouter(
        ["a", "b"], make_cache_factory(indexed_invalidation=True)
    )
    for i in range(20):
        reads = [random_read(rng) for _ in range(2)]
        router.insert(HttpRequest("GET", f"/p/{i}", {}), "x", reads)
    for _ in range(10):
        router.process_write_request("/w", [random_write(rng)])
    aggregate = router.stats.snapshot()["cluster"]
    assert aggregate["pair_analyses"] > 0
    assert (
        aggregate["templates_skipped_by_index"]
        + aggregate["instances_skipped_by_index"]
        > 0
    )
    # The summing properties agree with the snapshot aggregate.
    assert router.stats.pair_analyses == aggregate["pair_analyses"]
    assert (
        router.stats.templates_skipped_by_index
        == aggregate["templates_skipped_by_index"]
    )
