"""Invalidation bus: sequence numbering, ordering, delivery."""

import threading

import pytest

from repro.cache.api import Cache
from repro.cache.entry import QueryInstance
from repro.cluster.bus import BusMessage, InvalidationBus
from repro.cluster.node import CacheNode
from repro.errors import ClusterError
from repro.sql.template import templateize


def write_instance(value: int) -> QueryInstance:
    template, values = templateize(
        "UPDATE notes SET score = ? WHERE id = ?", (value, 1)
    )
    return QueryInstance(template, values)


class TestSequencing:
    def test_sequence_numbers_are_gap_free_and_ascending(self):
        bus = InvalidationBus()
        seen = []
        bus.subscribe("n", lambda message: (seen.append(message.seq), set())[1])
        for i in range(5):
            message, _doomed = bus.publish("router", "/w", [write_instance(i)])
            assert message.seq == i + 1
        assert seen == [1, 2, 3, 4, 5]
        assert bus.seq == 5

    def test_all_subscribers_receive_every_message(self):
        bus = InvalidationBus()
        received = {"a": [], "b": []}
        bus.subscribe("a", lambda m: (received["a"].append(m.seq), set())[1])
        bus.subscribe("b", lambda m: (received["b"].append(m.seq), set())[1])
        for i in range(3):
            bus.publish("router", "/w", [write_instance(i)])
        assert received["a"] == received["b"] == [1, 2, 3]
        assert bus.stats.published == 3
        assert bus.stats.delivered == 6

    def test_publish_returns_union_of_doomed_keys(self):
        bus = InvalidationBus()
        bus.subscribe("a", lambda m: {"page-1", "page-2"})
        bus.subscribe("b", lambda m: {"page-2", "page-3"})
        _message, doomed = bus.publish("router", "/w", [write_instance(1)])
        assert doomed == {"page-1", "page-2", "page-3"}

    def test_unsubscribed_node_stops_receiving(self):
        bus = InvalidationBus()
        seen = []
        bus.subscribe("a", lambda m: (seen.append(m.seq), set())[1])
        bus.publish("router", "/w", [write_instance(1)])
        bus.unsubscribe("a")
        bus.publish("router", "/w", [write_instance(2)])
        assert seen == [1]

    def test_concurrent_publishes_get_distinct_ordered_seqs(self):
        bus = InvalidationBus()
        order = []
        bus.subscribe("n", lambda m: (order.append(m.seq), set())[1])
        barrier = threading.Barrier(8)

        def publisher(i: int) -> None:
            barrier.wait(timeout=5)
            for j in range(25):
                bus.publish("router", "/w", [write_instance(i * 100 + j)])

        threads = [
            threading.Thread(target=publisher, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert order == list(range(1, 201))  # total order, no gaps, no dupes


class TestSubscriptionErrors:
    def test_duplicate_subscribe_rejected(self):
        bus = InvalidationBus()
        bus.subscribe("a", lambda m: set())
        with pytest.raises(ClusterError, match="already subscribed"):
            bus.subscribe("a", lambda m: set())

    def test_unknown_unsubscribe_rejected(self):
        bus = InvalidationBus()
        with pytest.raises(ClusterError, match="not subscribed"):
            bus.unsubscribe("ghost")

    def test_subscribe_returns_join_seq(self):
        bus = InvalidationBus()
        bus.subscribe("a", lambda m: set())
        bus.publish("router", "/w", [write_instance(1)])
        assert bus.subscribe("late", lambda m: set()) == 1


class TestNodeReplay:
    def test_node_rejects_replayed_or_reordered_messages(self):
        node = CacheNode("n", Cache())
        message = BusMessage(seq=3, origin="router", uri="/w",
                             writes=(write_instance(1),))
        node.apply(message)
        assert node.last_applied_seq == 3
        with pytest.raises(ClusterError, match="already applied"):
            node.apply(message)
        with pytest.raises(ClusterError):
            node.apply(BusMessage(seq=2, origin="router", uri="/w",
                                  writes=(write_instance(2),)))

    def test_left_node_absorbs_messages_without_applying(self):
        node = CacheNode("n", Cache())
        node.mark_left()
        doomed = node.apply(
            BusMessage(seq=1, origin="router", uri="/w",
                       writes=(write_instance(1),))
        )
        assert doomed == set()
        assert node.last_applied_seq == 1

    def test_rebase_adopts_bus_position(self):
        node = CacheNode("n", Cache())
        node.rebase(41)
        node.apply(BusMessage(seq=42, origin="router", uri="/w",
                              writes=(write_instance(1),)))
        assert node.last_applied_seq == 42

    def test_lifecycle_transitions(self):
        node = CacheNode("n", Cache())
        node.mark_draining()
        with pytest.raises(ClusterError, match="cannot drain"):
            node.mark_draining()
        node.mark_left()
        snapshot = node.snapshot()
        assert snapshot["state"] == "left"
        assert snapshot["pages"] == 0


class TestBatchedPublish:
    """Group-commit publish mode (PR 8): same totally ordered synchronous
    semantics, fewer bus-lock handoffs."""

    def test_single_publish_matches_unbatched(self):
        plain, batched = InvalidationBus(), InvalidationBus(batched=True)
        for bus in (plain, batched):
            seen = []
            bus.subscribe("n", lambda m, s=seen: (s.append(m.seq), set())[1])
            message, doomed = bus.publish("router", "/w", [write_instance(1)])
            assert message.seq == 1
            assert doomed == set()
            assert seen == [1]
        assert plain.stats.batches == 0
        assert batched.stats.batches == 1

    def test_sequences_stay_gap_free_under_batching(self):
        bus = InvalidationBus(batched=True)
        seen = []
        bus.subscribe("n", lambda m: (seen.append(m.seq), set())[1])
        for i in range(5):
            message, _ = bus.publish("router", "/w", [write_instance(i)])
            assert message.seq == i + 1
        assert seen == [1, 2, 3, 4, 5]
        assert bus.pending_publishes == 0

    def test_concurrent_publishes_group_commit(self):
        """Hold delivery with quiesced() while N threads enqueue: the
        first becomes leader (parked on the bus lock) and must drain the
        rest in one or two lock holds, each with its own seq/message."""
        bus = InvalidationBus(batched=True)
        delivered = []
        bus.subscribe("n", lambda m: (delivered.append(m.seq), set())[1])
        n = 6
        results = {}
        started = threading.Barrier(n + 1)

        def publisher(i):
            started.wait()
            message, _ = bus.publish(f"origin-{i}", f"/w{i}", [write_instance(i)])
            results[i] = message

        threads = [threading.Thread(target=publisher, args=(i,)) for i in range(n)]
        with bus.quiesced():
            for t in threads:
                t.start()
            started.wait()
            # Every publisher is now past the enqueue (leader included);
            # delivery cannot have started while we hold the bus lock.
            deadline = 50
            while bus.pending_publishes < n and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert bus.pending_publishes == n
            assert delivered == []
        for t in threads:
            t.join()
        assert sorted(delivered) == [1, 2, 3, 4, 5, 6]
        assert delivered == sorted(delivered)  # queue order == seq order
        assert {m.seq for m in results.values()} == {1, 2, 3, 4, 5, 6}
        assert bus.stats.published == 6
        # All six were queued before the lock released: one drain round
        # (two at most if a scheduler blip splits the queue).
        assert 1 <= bus.stats.batches <= 2

    def test_batched_mode_preserves_trace_per_publish(self):
        bus = InvalidationBus(batched=True)
        bus.subscribe("n", lambda m: set())
        message, _ = bus.publish(
            "router", "/w", [write_instance(1)], trace=("t1", "s1")
        )
        assert message.trace == ("t1", "s1")
