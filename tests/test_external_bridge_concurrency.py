"""Direct-database writes racing woven requests (Section 8's escape
hatch under contention).

A maintenance script updating rows behind the woven application's back
is the nastiest consistency case: no aspect sees the write, only the
database trigger does.  These tests hammer that path with real threads
and assert the strong-consistency contract holds -- zero stale serves
against a committed-writes floor -- and that the bridge's accounting is
*exact*: every direct write counted once, no woven write miscounted as
external.
"""

import sys
import threading

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.cache.external import TriggerInvalidationBridge
from repro.cluster import ClusterAutoWebCache

from tests.conftest import build_notes_app

N_WRITERS = 4
N_READERS = 12
WRITES_PER_WRITER = 40
READS_PER_READER = 60


def _parse_score(body: str) -> int:
    # ViewNoteServlet renders "<p>{body}|{score}</p>".
    return int(body.split("|")[1].split("<")[0])


def _run_bridge_race(db, container, awc, bridge):
    """Writers bypass the woven app; readers must never see a score
    below the committed floor for that note."""
    for i in range(N_WRITERS):
        response = container.post(
            "/add",
            {"id": str(i + 1), "topic": "race", "body": f"n{i}", "score": "0"},
        )
        assert response.status == 200

    floor = {i + 1: 0 for i in range(N_WRITERS)}
    floor_lock = threading.Lock()
    violations: list[str] = []
    errors: list[str] = []
    barrier = threading.Barrier(N_WRITERS + N_READERS)

    def writer(note_id: int) -> None:
        try:
            barrier.wait(timeout=10)
            for value in range(1, WRITES_PER_WRITER + 1):
                # The trigger fires (and invalidates) synchronously
                # inside update(), so by the time the floor is raised
                # the stale page is already gone cluster-wide.
                db.update(
                    "UPDATE notes SET score = ? WHERE id = ?", (value, note_id)
                )
                with floor_lock:
                    floor[note_id] = value
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"writer {note_id}: {type(exc).__name__}: {exc}")

    def reader(index: int) -> None:
        try:
            barrier.wait(timeout=10)
            for iteration in range(READS_PER_READER):
                note_id = (index + iteration) % N_WRITERS + 1
                with floor_lock:
                    committed = floor[note_id]
                response = container.get("/view_note", {"id": str(note_id)})
                assert response.status == 200
                seen = _parse_score(response.body)
                if seen < committed:
                    violations.append(
                        f"note {note_id}: saw {seen}, floor was {committed}"
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"reader {index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=writer, args=(i + 1,), daemon=True)
        for i in range(N_WRITERS)
    ] + [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(N_READERS)
    ]
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0002)
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        sys.setswitchinterval(old_interval)
    assert not any(thread.is_alive() for thread in threads), "stress hung"
    assert errors == []
    assert violations == [], violations

    # Exact accounting: every direct write seen once, and the woven
    # /add posts were *not* routed through the external path.
    assert bridge.external_writes == N_WRITERS * WRITES_PER_WRITER
    assert bridge.skipped_in_request == N_WRITERS  # the /add posts
    assert awc.stats.write_requests >= N_WRITERS * WRITES_PER_WRITER
    assert awc.cache.open_flights == 0


@pytest.mark.concurrency
def test_direct_writes_racing_woven_reads_single_node():
    db, container = build_notes_app()
    awc = AutoWebCache()
    bridge = TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
    awc.install(container.servlet_classes)
    try:
        _run_bridge_race(db, container, awc, bridge)
    finally:
        awc.uninstall()


@pytest.mark.concurrency
def test_direct_writes_racing_woven_reads_cluster():
    """Same oracle against a 3-node cluster: the bridge publishes on
    the invalidation bus, so the doomed page dies on whichever shard
    owns it before the writer's update() returns."""
    db, container = build_notes_app()
    awc = ClusterAutoWebCache(n_nodes=3)
    bridge = TriggerInvalidationBridge(awc.router, awc.collector).attach(db)
    awc.install(container.servlet_classes)
    try:
        _run_bridge_race(db, container, awc, bridge)
        seq = awc.bus.seq
        assert seq >= N_WRITERS * WRITES_PER_WRITER
        for node in awc.router.nodes():
            assert node.last_applied_seq == seq
    finally:
        awc.uninstall()
