"""RUBiS application tests: all 26 interactions, with and without cache."""

import pytest

from repro.apps.rubis import RubisDataset, build_rubis
from repro.apps.rubis.app import INTERACTIONS
from repro.cache.autowebcache import AutoWebCache


@pytest.fixture(scope="module")
def app():
    return build_rubis(RubisDataset(n_users=40, n_items=80, seed=5))


READ_CASES = [
    ("/rubis/home", {}),
    ("/rubis/browse", {}),
    ("/rubis/browse_categories", {}),
    ("/rubis/browse_regions", {}),
    ("/rubis/browse_categories_in_region", {"region": "2"}),
    ("/rubis/search_items_by_category", {"category": "1"}),
    ("/rubis/search_items_by_region", {"category": "1", "region": "2"}),
    ("/rubis/view_item", {"item": "3"}),
    ("/rubis/view_bid_history", {"item": "3"}),
    ("/rubis/view_user_info", {"user": "4"}),
    ("/rubis/about_me", {"user": "4"}),
    ("/rubis/buy_now_auth", {"item": "3"}),
    ("/rubis/buy_now", {"item": "3", "user": "4"}),
    ("/rubis/put_bid_auth", {"item": "3"}),
    ("/rubis/put_bid", {"item": "3", "user": "4"}),
    ("/rubis/put_comment_auth", {"item": "3", "to": "5"}),
    ("/rubis/put_comment", {"item": "3", "to": "5", "user": "4"}),
    ("/rubis/register", {}),
    ("/rubis/sell", {}),
    ("/rubis/select_category_to_sell", {}),
    ("/rubis/sell_item_form", {"category": "1"}),
]


def test_has_26_interactions():
    assert len(INTERACTIONS) == 26
    writes = [uri for uri, (_c, w) in INTERACTIONS.items() if w]
    assert len(writes) == 5


@pytest.mark.parametrize("uri,params", READ_CASES)
def test_read_interactions_render(app, uri, params):
    response = app.container.get(uri, params)
    assert response.status == 200
    assert response.body.startswith("<html>")
    assert response.body.endswith("</html>")


def test_view_item_shows_item_fields(app):
    body = app.container.get("/rubis/view_item", {"item": "7"}).body
    assert "item-7" in body


def test_view_missing_item_is_error(app):
    assert app.container.get("/rubis/view_item", {"item": "99999"}).status == 500


def test_store_bid_updates_item():
    app = build_rubis(RubisDataset(n_users=20, n_items=30, seed=6))
    before = app.database.query(
        "SELECT nb_of_bids FROM items WHERE id = 3"
    ).scalar()
    response = app.container.post(
        "/rubis/store_bid", {"item": "3", "user": "2", "bid": "5000"}
    )
    assert response.status == 200
    after = app.database.query(
        "SELECT nb_of_bids, max_bid FROM items WHERE id = 3"
    ).rows[0]
    assert after[0] == before + 1
    assert after[1] == 5000.0


def test_store_buy_now_decrements_quantity():
    app = build_rubis(RubisDataset(n_users=20, n_items=30, seed=6))
    before = app.database.query("SELECT quantity FROM items WHERE id = 4").scalar()
    app.container.post(
        "/rubis/store_buy_now", {"item": "4", "user": "2", "qty": "1"}
    )
    after = app.database.query("SELECT quantity FROM items WHERE id = 4").scalar()
    assert after == before - 1


def test_store_comment_adjusts_rating():
    app = build_rubis(RubisDataset(n_users=20, n_items=30, seed=6))
    before = app.database.query("SELECT rating FROM users WHERE id = 5").scalar()
    app.container.post(
        "/rubis/store_comment",
        {"item": "1", "to": "5", "from": "2", "rating": "3", "comment": "ok"},
    )
    after = app.database.query("SELECT rating FROM users WHERE id = 5").scalar()
    assert after == before + 3


def test_register_user_and_duplicate_nickname():
    app = build_rubis(RubisDataset(n_users=20, n_items=30, seed=6))
    params = {
        "firstname": "x",
        "lastname": "y",
        "nickname": "brand_new",
        "region": "1",
    }
    assert app.container.post("/rubis/register_user", params).status == 200
    assert app.container.post("/rubis/register_user", params).status == 500


def test_register_item_appears_in_category_search():
    app = build_rubis(RubisDataset(n_users=20, n_items=30, seed=6))
    app.container.post(
        "/rubis/register_item",
        {
            "name": "very-unique-item",
            "initial_price": "10",
            "category": "2",
            "seller": "1",
        },
    )
    body = app.container.get(
        "/rubis/search_items_by_category", {"category": "2", "page": "0"}
    ).body
    assert "very-unique-item" in body


def test_cached_rubis_end_to_end_consistency():
    """A bid through the cached app must be visible on the next view."""
    app = build_rubis(RubisDataset(n_users=20, n_items=30, seed=7))
    awc = AutoWebCache()
    awc.install(app.servlet_classes)
    try:
        container = app.container
        container.get("/rubis/view_item", {"item": "3"})
        container.get("/rubis/view_item", {"item": "3"})
        assert awc.stats.hits == 1
        container.post(
            "/rubis/store_bid", {"item": "3", "user": "2", "bid": "7777"}
        )
        body = container.get("/rubis/view_item", {"item": "3"}).body
        assert "7777" in body
        # A bid on another item must not invalidate item 3's fresh page.
        container.post(
            "/rubis/store_bid", {"item": "4", "user": "2", "bid": "88"}
        )
        hits_before = awc.stats.hits
        container.get("/rubis/view_item", {"item": "3"})
        assert awc.stats.hits == hits_before + 1
    finally:
        awc.uninstall()


def test_read_uris_and_write_uris_partition(app):
    assert set(app.read_uris) | set(app.write_uris) == set(INTERACTIONS)
    assert not set(app.read_uris) & set(app.write_uris)


def test_population_counts():
    dataset = RubisDataset(n_users=15, n_items=25, bids_per_item=2, seed=1)
    app = build_rubis(dataset)
    db = app.database
    assert db.query("SELECT COUNT(*) FROM users").scalar() == 15
    assert db.query("SELECT COUNT(*) FROM items").scalar() == 25
    assert db.query("SELECT COUNT(*) FROM bids").scalar() == 50
    assert dataset.n_bids == 50
    # nb_of_bids is consistent with the bids table.
    count = db.query("SELECT COUNT(*) FROM bids WHERE item_id = 0").scalar()
    assert db.query("SELECT nb_of_bids FROM items WHERE id = 0").scalar() == count
