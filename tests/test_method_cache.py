"""The method-level result-cache tier (MethodCacheAspect).

A designated helper method is woven with the page cache's own
check/insert protocol: its return value is cached under
``method://Class.method?args``, carrying its own SQL dependencies,
invalidated through the same indexed engine, and containment-climbed
into any page entry built from a cached result.
"""

from __future__ import annotations

import pytest

from repro.admission.aspects import (
    DEFAULT_METHOD_POINTCUT,
    MethodCacheAspect,
    method_cache_aspect_class,
    method_key,
    method_stat_uri,
)
from repro.admission.policy import AdaptiveAdmission
from repro.cache.autowebcache import AutoWebCache
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import make_notes_db

TOPICS_POINTCUT = "execution(TopicCatalogue.topics(..))"


class TopicCatalogue:
    """A shared app helper: the designated method-cache candidate."""

    def __init__(self, connection) -> None:
        self._connection = connection
        self.calls = 0
        self.set_calls = 0

    def topics(self) -> list:
        self.calls += 1
        result = self._connection.create_statement().execute_query(
            "SELECT id, name FROM topics ORDER BY id"
        )
        return result.all_dicts()

    def topics_set(self) -> set:
        """Returns a set: JSON cannot round-trip it (uncacheable)."""
        self.set_calls += 1
        result = self._connection.create_statement().execute_query(
            "SELECT id, name FROM topics ORDER BY id"
        )
        return {row["name"] for row in result.all_dicts()}


class TopicsPageA(HttpServlet):
    def __init__(self, catalogue: TopicCatalogue) -> None:
        self._catalogue = catalogue

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        names = ", ".join(row["name"] for row in self._catalogue.topics())
        response.write(f"<h1>A</h1><p>{names}</p>")


class TopicsPageB(HttpServlet):
    def __init__(self, catalogue: TopicCatalogue) -> None:
        self._catalogue = catalogue

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        rows = self._catalogue.topics()
        response.write(f"<h1>B</h1><p>{len(rows)} topics</p>")


class AddTopicServlet(HttpServlet):
    def __init__(self, connection) -> None:
        self._connection = connection

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        self._connection.create_statement().execute_update(
            "INSERT INTO topics (id, name) VALUES (?, ?)",
            (int(request.get_parameter("id")), request.get_parameter("name")),
        )
        response.write("added")


def build_topics_app():
    db = make_notes_db()
    connection = connect(db)
    catalogue = TopicCatalogue(connection)
    container = ServletContainer()
    container.register("/page_a", TopicsPageA(catalogue))
    container.register("/page_b", TopicsPageB(catalogue))
    container.register("/add_topic", AddTopicServlet(connection))
    return db, container, catalogue


@pytest.fixture
def topics_app():
    """(db, container, catalogue, awc) with the method tier woven."""
    db, container, catalogue = build_topics_app()
    awc = AutoWebCache(
        method_cache_targets=(TopicCatalogue,),
        method_cache_pointcut=TOPICS_POINTCUT,
    )
    awc.install(container.servlet_classes)
    try:
        yield db, container, catalogue, awc
    finally:
        awc.uninstall()


def seed_topics(container, *names):
    for i, name in enumerate(names, start=1):
        response = container.post(
            "/add_topic", {"id": str(i), "name": name}
        )
        assert response.status == 200


def method_keys(awc):
    return [
        key for key in awc.cache.pages.keys() if key.startswith("method://")
    ]


class TestKeying:
    def test_method_key_encodes_args_like_a_query_string(self):
        assert method_key("C.m") == "method://C.m"
        assert method_key("C.m", (1, "x")) == (
            "method://C.m?arg0=1&arg1=%27x%27"
        )
        assert method_key("C.m", (), {"region": 2}) == "method://C.m?region=2"

    def test_stat_uri_is_the_admission_class(self):
        assert method_stat_uri("C.m") == "method://C.m"


class TestMethodTier:
    def test_result_cached_under_method_scheme(self, topics_app):
        db, container, catalogue, awc = topics_app
        seed_topics(container, "alpha", "beta")
        response = container.get("/page_a")
        assert "alpha, beta" in response.body
        assert catalogue.calls == 1
        assert method_keys(awc) == ["method://TopicCatalogue.topics"]
        entry = awc.cache.pages.peek("method://TopicCatalogue.topics")
        assert entry.dependencies  # carries its own SQL reads

    def test_cross_page_hit_skips_the_method_body(self, topics_app):
        db, container, catalogue, awc = topics_app
        seed_topics(container, "alpha")
        container.get("/page_a")
        assert catalogue.calls == 1
        # Page B is a cold page miss, but the helper result is shared:
        # the method tier serves it without re-executing the body.
        response = container.get("/page_b")
        assert "1 topics" in response.body
        assert catalogue.calls == 1

    def test_page_hit_never_reaches_the_method(self, topics_app):
        db, container, catalogue, awc = topics_app
        seed_topics(container, "alpha")
        container.get("/page_a")
        container.get("/page_a")
        assert awc.stats.hits >= 1
        assert catalogue.calls == 1

    def test_write_invalidates_method_entry_and_containing_pages(
        self, topics_app
    ):
        db, container, catalogue, awc = topics_app
        seed_topics(container, "alpha")
        first = container.get("/page_a")
        assert "alpha" in first.body
        container.get("/page_b")
        # The write dooms the method entry through the same indexed
        # dependency engine, and containment climbs to both pages.
        container.post("/add_topic", {"id": "9", "name": "gamma"})
        assert "method://TopicCatalogue.topics" not in awc.cache.pages.keys()
        fresh = container.get("/page_a")
        assert "gamma" in fresh.body
        assert catalogue.calls == 2
        assert awc.stats.misses_invalidation >= 1
        fresh_b = container.get("/page_b")
        assert "2 topics" in fresh_b.body

    def test_admission_applies_per_method_signature(self):
        db, container, catalogue = build_topics_app()
        policy = AdaptiveAdmission(min_observations=5)
        awc = AutoWebCache(
            admission=policy,
            method_cache_targets=(TopicCatalogue,),
            method_cache_pointcut=TOPICS_POINTCUT,
        )
        awc.install(container.servlet_classes)
        try:
            seed_topics(container, "alpha")
            container.get("/page_a")
            assert "method://TopicCatalogue.topics" in policy.model.classes()
            row = policy.model.snapshot()["method://TopicCatalogue.topics"]
            assert row["inserts"] == 1
        finally:
            awc.uninstall()

    def test_non_json_value_recomputed_not_cached(self):
        db, container, catalogue = build_topics_app()
        awc = AutoWebCache(
            method_cache_targets=(TopicCatalogue,),
            method_cache_pointcut="execution(TopicCatalogue.topics_set(..))",
        )
        awc.install(container.servlet_classes)
        try:
            seed_topics(container, "alpha")
            # Direct calls are execution join points too: each one runs
            # the body (no entry can be stored), and the value survives.
            assert catalogue.topics_set() == {"alpha"}
            assert catalogue.topics_set() == {"alpha"}
            assert catalogue.set_calls == 2
            assert method_keys(awc) == []
        finally:
            awc.uninstall()


class TestAspectFactory:
    def test_custom_pointcut_does_not_mutate_the_base_class(self):
        before = list(MethodCacheAspect.cache_method.__advice_specs__)
        custom = method_cache_aspect_class(TOPICS_POINTCUT)
        after = list(MethodCacheAspect.cache_method.__advice_specs__)
        assert after == before  # the shared function object is untouched
        specs = custom.cache_method.__advice_specs__
        assert len(specs) == 1
        assert TOPICS_POINTCUT in str(specs[0].pointcut)
        assert issubclass(custom, MethodCacheAspect)
        assert custom.precedence == MethodCacheAspect.precedence

    def test_default_pointcut_targets_the_rubis_catalogue(self):
        assert "CategoryCatalogue.categories" in DEFAULT_METHOD_POINTCUT
        specs = MethodCacheAspect.cache_method.__advice_specs__
        assert len(specs) == 1
