"""Multi-aspect composition at one join point.

The observability aspects rely on three weaver properties: two aspects
sharing a join point nest by precedence (lower = outermost), unweaving
restores the original method exactly, and re-weaving by the *same*
weaver is idempotent while a *different* weaver is still rejected.
"""

import pytest

from repro.aop import Aspect, around
from repro.aop.weaver import Weaver
from repro.errors import WeavingError


class Greeter:
    def greet(self, name: str) -> str:
        return f"hello {name}"


def make_aspect(label: str, precedence_value: int, log: list):
    class Recorder(Aspect):
        precedence = precedence_value

        @around("execution(Greeter.greet(..))")
        def record(self, joinpoint):
            log.append(f"{label}:before")
            result = joinpoint.proceed()
            log.append(f"{label}:after")
            return f"[{label} {result}]"

    return Recorder()


class TestPrecedenceOrder:
    def test_lower_precedence_is_outermost(self):
        log = []
        outer = make_aspect("outer", -10, log)
        inner = make_aspect("inner", 5, log)
        weaver = Weaver()
        # Registration order is the *opposite* of precedence order on
        # purpose: precedence, not add_aspect order, decides nesting.
        weaver.add_aspect(inner)
        weaver.add_aspect(outer)
        weaver.weave([Greeter])
        try:
            result = Greeter().greet("ada")
        finally:
            weaver.unweave()
        assert log == [
            "outer:before",
            "inner:before",
            "inner:after",
            "outer:after",
        ]
        assert result == "[outer [inner hello ada]]"

    def test_equal_precedence_falls_back_to_declaration_order(self):
        log = []
        first = make_aspect("first", 0, log)
        second = make_aspect("second", 0, log)
        weaver = Weaver()
        weaver.add_aspect(first)
        weaver.add_aspect(second)
        weaver.weave([Greeter])
        try:
            Greeter().greet("x")
        finally:
            weaver.unweave()
        assert log[0] == "first:before"
        assert log[-1] == "first:after"


class TestUnweaveRestores:
    def test_original_function_identity_restored(self):
        original = vars(Greeter)["greet"]
        weaver = Weaver()
        weaver.add_aspect(make_aspect("a", 0, []))
        weaver.weave([Greeter])
        assert vars(Greeter)["greet"] is not original
        weaver.unweave()
        assert vars(Greeter)["greet"] is original
        assert Greeter().greet("eve") == "hello eve"


class TestReweaving:
    def test_same_weaver_reweave_is_idempotent(self):
        log = []
        weaver = Weaver()
        weaver.add_aspect(make_aspect("a", 0, log))
        weaver.weave([Greeter])
        try:
            # Weaving the same classes again neither raises nor stacks
            # a second advice layer.
            report = weaver.weave([Greeter])
            assert report.advised_method_count == 0
            Greeter().greet("bob")
            assert log == ["a:before", "a:after"]
        finally:
            weaver.unweave()
        assert vars(Greeter)["greet"].__name__ == "greet"
        assert not getattr(vars(Greeter)["greet"], "__aw_woven__", False)

    def test_foreign_weaver_still_rejected(self):
        weaver = Weaver()
        weaver.add_aspect(make_aspect("a", 0, []))
        weaver.weave([Greeter])
        try:
            other = Weaver()
            other.add_aspect(make_aspect("b", 0, []))
            with pytest.raises(WeavingError):
                other.weave([Greeter])
        finally:
            weaver.unweave()
