"""Property-based strong consistency for the back-end result cache.

Mirrors the page-cache property: under any random interleaving of reads
and writes, an application running with the woven result cache serves
responses byte-identical to a cache-free twin.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache.analysis import InvalidationPolicy
from repro.cache.aspects_result import ResultCacheInstaller

from tests.conftest import build_notes_app
from tests.test_property_cache import apply_operation, operations


def run_result_cache_check(ops, policy):
    db, container = build_notes_app()
    ref_db, ref_container = build_notes_app()
    installer = ResultCacheInstaller(policy=policy)
    installer.install()
    try:
        added: set[int] = set()
        ref_added: set[int] = set()
        for op in ops:
            response = apply_operation(container, op, added)
            reference = apply_operation(ref_container, op, ref_added)
            if response is None:
                continue
            if op[0].startswith("view"):
                assert response.body == reference.body, (
                    f"stale result set under {policy} for {op}"
                )
        return installer.stats
    finally:
        installer.uninstall()


@settings(max_examples=50, deadline=None)
@given(ops=operations)
def test_result_cache_strong_consistency_extra_query(ops):
    run_result_cache_check(ops, InvalidationPolicy.EXTRA_QUERY)


@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_result_cache_strong_consistency_where_match(ops):
    run_result_cache_check(ops, InvalidationPolicy.WHERE_MATCH)


@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_result_cache_strong_consistency_column_only(ops):
    run_result_cache_check(ops, InvalidationPolicy.COLUMN_ONLY)


@settings(max_examples=25, deadline=None)
@given(ops=operations)
def test_result_cache_precision_ordering(ops):
    invalidated = {}
    for policy in InvalidationPolicy:
        stats = run_result_cache_check(ops, policy)
        invalidated[policy] = stats.invalidated_entries
    assert (
        invalidated[InvalidationPolicy.EXTRA_QUERY]
        <= invalidated[InvalidationPolicy.WHERE_MATCH]
        <= invalidated[InvalidationPolicy.COLUMN_ONLY]
    )
