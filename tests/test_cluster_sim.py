"""Cluster simulator: per-node resources, bus costs, scaling cells."""

import pytest

from repro.harness.experiments import (
    ExperimentDefaults,
    run_cluster_cell,
    run_cluster_scaling_curve,
)
from repro.sim.cluster import (
    CLUSTER_SCALING_COST_MODEL,
    ClusterCostModel,
    ClusterSimulationResult,
)
from repro.sim.costs import CostModel, RequestWork

QUICK = ExperimentDefaults(warmup=5.0, duration=20.0)


class TestClusterCostModel:
    def test_router_hop_charged_to_app_only(self):
        base = CostModel(app_base=0.01, db_per_query=0.002)
        model = ClusterCostModel(base=base, router_cost=0.003)
        work = RequestWork(queries=2)
        app, db = model.demands(work)
        base_app, base_db = base.demands(work)
        assert app == pytest.approx(base_app + 0.003)
        assert db == pytest.approx(base_db)

    def test_scaling_calibration_is_heavier_than_stock(self):
        from repro.sim.costs import RUBIS_COST_MODEL

        heavy = CLUSTER_SCALING_COST_MODEL.base
        assert heavy.app_base > RUBIS_COST_MODEL.app_base
        assert heavy.app_per_kb > RUBIS_COST_MODEL.app_per_kb
        # Database pricing untouched: the shared tier is the eventual cap.
        assert heavy.db_per_query == RUBIS_COST_MODEL.db_per_query


class TestClusterCell:
    def test_cell_runs_clean_and_accounts_per_node(self):
        outcome = run_cluster_cell(3, n_clients=30, defaults=QUICK)
        result = outcome.result
        assert isinstance(result, ClusterSimulationResult)
        assert outcome.n_nodes == 3 and result.n_nodes == 3
        assert result.errors == 0
        assert result.total_requests > 0
        assert set(result.node_utilizations) == {"node-0", "node-1", "node-2"}
        assert all(0.0 <= u <= 1.0 for u in result.node_utilizations.values())
        assert result.app_utilization == pytest.approx(
            sum(result.node_utilizations.values()) / 3
        )
        # The bidding mix writes, and every write rides the bus.
        assert result.bus_messages > 0
        snapshot = result.cluster_snapshot
        assert snapshot["bus"]["published"] == result.bus_messages
        assert len(snapshot["nodes"]) == 3

    def test_sharding_preserves_hit_rate(self):
        one = run_cluster_cell(1, n_clients=30, defaults=QUICK)
        four = run_cluster_cell(4, n_clients=30, defaults=QUICK)
        # Placement is deterministic: splitting the key space must not
        # duplicate or lose entries, so the hit rate barely moves.
        assert one.hit_rate > 0.3
        assert abs(one.hit_rate - four.hit_rate) < 0.1

    def test_single_node_cluster_pays_no_bus(self):
        outcome = run_cluster_cell(1, n_clients=20, defaults=QUICK)
        # Messages are still published (the router broadcasts), but no
        # remote replay is scheduled: one node, nothing to propagate to.
        assert outcome.result.n_nodes == 1
        assert outcome.result.errors == 0

    def test_scaling_curve_returns_one_outcome_per_count(self):
        outcomes = run_cluster_scaling_curve([1, 2], n_clients=25, defaults=QUICK)
        assert [o.n_nodes for o in outcomes] == [1, 2]
        assert all(o.result.errors == 0 for o in outcomes)

    def test_tpcw_cell_runs(self):
        outcome = run_cluster_cell(
            2, n_clients=20, app="tpcw", defaults=QUICK
        )
        assert outcome.result.errors == 0
        assert outcome.result.total_requests > 0


class TestClusterCli:
    def test_cluster_subcommand_renders_table(self, capsys):
        from repro.harness.cli import main

        code = main(
            [
                "cluster",
                "--nodes", "1,2",
                "--clients", "30",
                "--warmup", "5",
                "--duration", "15",
                "--stock-costs",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Cluster scaling: rubis, 30 clients" in out
        assert "nodes" in out and "thr (r/s)" in out and "bus msgs" in out
        # One data row per node count.
        data_rows = [
            line for line in out.splitlines() if line.strip().startswith(("1 ", "2 "))
        ]
        assert len(data_rows) == 2

    def test_cluster_listed(self, capsys):
        from repro.harness.cli import main

        assert main(["list"]) == 0
        assert "cluster" in capsys.readouterr().out
