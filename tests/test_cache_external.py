"""Trigger-based external invalidation tests (Section 8's escape hatch)."""

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.cache.external import TriggerInvalidationBridge
from repro.db import Column, ColumnType, Database, TableSchema
from repro.db.triggers import TriggerSet, WriteEvent

from tests.conftest import build_notes_app


class TestTriggerSet:
    def event(self, table="t", kind="update"):
        return WriteEvent(table=table, kind=kind, sql="UPDATE t SET a = 1",
                          params=(), affected=1)

    def test_table_triggers_fire(self):
        triggers = TriggerSet()
        seen = []
        triggers.on_table("t", seen.append)
        triggers.fire(self.event(table="t"))
        triggers.fire(self.event(table="u"))
        assert len(seen) == 1
        assert triggers.fired == 1

    def test_global_triggers_fire_for_all_tables(self):
        triggers = TriggerSet()
        seen = []
        triggers.on_any(seen.append)
        triggers.fire(self.event(table="t"))
        triggers.fire(self.event(table="u"))
        assert len(seen) == 2

    def test_empty_property(self):
        triggers = TriggerSet()
        assert triggers.empty
        triggers.on_any(lambda e: None)
        assert not triggers.empty


class TestDatabaseTriggers:
    def make_db(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [Column("id", ColumnType.INT), Column("v", ColumnType.INT)],
                primary_key="id",
            )
        )
        db.update("INSERT INTO t (id, v) VALUES (1, 10)")
        return db

    def test_insert_update_delete_events(self):
        db = self.make_db()
        events = []
        db.triggers.on_any(events.append)
        db.update("INSERT INTO t (id, v) VALUES (2, 20)")
        db.update("UPDATE t SET v = 11 WHERE id = 1")
        db.update("DELETE FROM t WHERE id = 2")
        kinds = [(e.kind, e.table, e.affected) for e in events]
        assert kinds == [("insert", "t", 1), ("update", "t", 1), ("delete", "t", 1)]

    def test_pre_image_captured_for_update_and_delete(self):
        db = self.make_db()
        events = []
        db.triggers.on_any(events.append)
        db.update("UPDATE t SET v = 99 WHERE id = 1")
        assert events[0].pre_image == ({"id": 1, "v": 10},)
        db.update("DELETE FROM t WHERE id = 1")
        assert events[1].pre_image == ({"id": 1, "v": 99},)

    def test_insert_has_no_pre_image(self):
        db = self.make_db()
        events = []
        db.triggers.on_any(events.append)
        db.update("INSERT INTO t (id, v) VALUES (5, 50)")
        assert events[0].pre_image is None

    def test_no_triggers_no_overhead(self):
        db = self.make_db()
        queries_before = db.stats.queries
        db.update("UPDATE t SET v = 2 WHERE id = 1")
        # No pre-image select was charged.
        assert db.stats.queries == queries_before


class TestBridge:
    def test_direct_write_invalidates_stale_page(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        bridge = TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.get("/view_topic", {"topic": "a"})
            # A maintenance script updates the database directly,
            # bypassing the servlets entirely.
            db.update("UPDATE notes SET body = ? WHERE id = ?", ("patched", 1))
            assert bridge.external_writes == 1
            page = container.get("/view_topic", {"topic": "a"})
            assert "patched" in page.body  # no stale page served
        finally:
            awc.uninstall()

    def test_unrelated_direct_write_preserves_pages(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.post(
                "/add", {"id": "2", "topic": "b", "body": "y", "score": "0"}
            )
            container.get("/view_topic", {"topic": "a"})
            # Direct write touching topic b only (pre-image precision).
            db.update("UPDATE notes SET body = ? WHERE id = ?", ("z", 2))
            hits_before = awc.stats.hits
            container.get("/view_topic", {"topic": "a"})
            assert awc.stats.hits == hits_before + 1
        finally:
            awc.uninstall()

    def test_in_request_writes_not_double_processed(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        bridge = TriggerInvalidationBridge(awc.cache, awc.collector).attach(db)
        awc.install(container.servlet_classes)
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            # The write went through the woven app: the bridge must
            # defer to the request aspects.
            assert bridge.external_writes == 0
            assert bridge.skipped_in_request == 1
        finally:
            awc.uninstall()

    def test_bridge_without_collector_processes_everything(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        bridge = TriggerInvalidationBridge(awc.cache).attach(db)
        db.update(
            "INSERT INTO notes (id, topic, body, score) VALUES (1, 'a', 'x', 0)"
        )
        assert bridge.external_writes == 1

    def test_bridge_also_invalidates_result_cache(self):
        """Regression: with a result cache layered under the page
        cache, a direct write must invalidate BOTH -- otherwise the
        regenerated page is rebuilt from a stale cached result set."""
        from repro.cache.aspects_result import ResultCacheAspect
        from repro.cache.result_cache import ResultCache

        db, container = build_notes_app()
        result_cache = ResultCache()
        awc = AutoWebCache()
        TriggerInvalidationBridge(
            awc.cache, awc.collector, result_cache=result_cache
        ).attach(db)
        awc.install(
            container.servlet_classes,
            extra_aspects=[ResultCacheAspect(result_cache)],
        )
        try:
            container.post(
                "/add", {"id": "1", "topic": "a", "body": "x", "score": "0"}
            )
            container.get("/view_topic", {"topic": "a"})
            db.update("UPDATE notes SET body = ? WHERE id = ?", ("patched", 1))
            page = container.get("/view_topic", {"topic": "a"})
            assert "patched" in page.body
        finally:
            awc.uninstall()
