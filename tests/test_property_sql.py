"""Property-based tests for the SQL front end.

- parse(unparse(ast)) is a fixpoint over generated SELECT/UPDATE/
  INSERT/DELETE statements;
- templateize is stable (template of a template is itself) and value
  vectors round-trip through bind().
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement
from repro.sql.template import templateize

names = st.sampled_from(["t", "u", "items", "users", "orders"])
columns = st.sampled_from(["a", "b", "c", "price", "qty", "name"])
literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    # The alphabet deliberately includes the quote character (exercising
    # '' escaping) and the LIKE metacharacters.
    st.text(
        alphabet="abcxyz '%_0123456789", min_size=0, max_size=8
    ).map(lambda s: s),
)


def literal_expr(value):
    return ast.Literal(value=value)


comparisons = st.sampled_from(["=", "<", ">", "<=", ">=", "<>"])


@st.composite
def predicates(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        column = ast.ColumnRef(column=draw(columns))
        op = draw(comparisons)
        value = literal_expr(draw(literals))
        return ast.BinaryOp(op=op, left=column, right=value)
    op = draw(st.sampled_from(["AND", "OR"]))
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    return ast.BinaryOp(op=op, left=left, right=right)


@st.composite
def selects(draw):
    items = tuple(
        ast.SelectItem(ast.ColumnRef(column=c))
        for c in draw(st.lists(columns, min_size=1, max_size=3, unique=True))
    )
    table = ast.TableRef(name=draw(names))
    where = draw(st.none() | predicates())
    order = tuple(
        ast.OrderItem(ast.ColumnRef(column=c), descending=draw(st.booleans()))
        for c in draw(st.lists(columns, max_size=2, unique=True))
    )
    limit = draw(st.none() | st.integers(0, 50).map(literal_expr))
    return ast.Select(
        items=items,
        tables=(table,),
        where=where,
        order_by=order,
        limit=limit,
        distinct=draw(st.booleans()),
    )


@st.composite
def updates(draw):
    table = draw(names)
    assignments = tuple(
        ast.Assignment(c, literal_expr(draw(literals)))
        for c in draw(st.lists(columns, min_size=1, max_size=3, unique=True))
    )
    where = draw(st.none() | predicates())
    return ast.Update(table=table, assignments=assignments, where=where)


@st.composite
def inserts(draw):
    cols = draw(st.lists(columns, min_size=1, max_size=4, unique=True))
    values = tuple(literal_expr(draw(literals)) for _ in cols)
    return ast.Insert(table=draw(names), columns=tuple(cols), values=values)


@st.composite
def deletes(draw):
    return ast.Delete(table=draw(names), where=draw(st.none() | predicates()))


statements = st.one_of(selects(), updates(), inserts(), deletes())


@settings(max_examples=200)
@given(statements)
def test_parse_unparse_fixpoint(statement):
    text = statement.unparse()
    reparsed = parse_statement(text)
    assert reparsed.unparse() == text


@settings(max_examples=200)
@given(statements)
def test_templateize_stability(statement):
    template, values = templateize(statement.unparse())
    again, values2 = templateize(template.text, values)
    assert again == template
    assert values2 == values


@settings(max_examples=200)
@given(statements)
def test_bind_roundtrip(statement):
    template, values = templateize(statement.unparse())
    bound_text = template.bind(values).unparse()
    template2, values2 = templateize(bound_text)
    assert template2 == template
    assert values2 == values
