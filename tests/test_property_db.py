"""Property-based tests for the database engine.

The executor (with its index fast paths) must agree with a naive
reference evaluation over randomly generated tables and conjunctive
predicates, for SELECT filtering, UPDATE and DELETE affected counts.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Column, ColumnType, Database, TableSchema

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 9),  # k: indexed column
        st.integers(0, 5),  # g: unindexed column
        st.integers(-100, 100),  # v: value column
    ),
    min_size=0,
    max_size=30,
)


def build_db(rows):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("id", ColumnType.INT),
                Column("k", ColumnType.INT),
                Column("g", ColumnType.INT),
                Column("v", ColumnType.INT),
            ],
            primary_key="id",
            indexes=["k"],
        )
    )
    db.insert_rows(
        "t",
        [
            {"id": i, "k": k, "g": g, "v": v}
            for i, (k, g, v) in enumerate(rows)
        ],
    )
    return db


@settings(max_examples=150)
@given(rows=rows_strategy, k=st.integers(0, 9), g=st.integers(0, 5))
def test_select_with_index_matches_reference(rows, k, g):
    db = build_db(rows)
    result = db.query("SELECT id FROM t WHERE k = ? AND g = ? ORDER BY id", (k, g))
    expected = sorted(
        i for i, (rk, rg, _v) in enumerate(rows) if rk == k and rg == g
    )
    assert [r[0] for r in result.rows] == expected


@settings(max_examples=150)
@given(rows=rows_strategy, threshold=st.integers(-100, 100))
def test_scan_predicate_matches_reference(rows, threshold):
    db = build_db(rows)
    result = db.query("SELECT COUNT(*) FROM t WHERE v > ?", (threshold,))
    expected = sum(1 for (_k, _g, v) in rows if v > threshold)
    assert result.scalar() == expected


@settings(max_examples=150)
@given(rows=rows_strategy, k=st.integers(0, 9), delta=st.integers(-5, 5))
def test_update_affected_count_and_effect(rows, k, delta):
    db = build_db(rows)
    affected = db.update("UPDATE t SET v = v + ? WHERE k = ?", (delta, k))
    expected_rows = [i for i, (rk, _g, _v) in enumerate(rows) if rk == k]
    assert affected == len(expected_rows)
    for i in expected_rows:
        value = db.query("SELECT v FROM t WHERE id = ?", (i,)).scalar()
        assert value == rows[i][2] + delta


@settings(max_examples=150)
@given(rows=rows_strategy, k=st.integers(0, 9))
def test_delete_affected_count(rows, k):
    db = build_db(rows)
    affected = db.update("DELETE FROM t WHERE k = ?", (k,))
    assert affected == sum(1 for (rk, _g, _v) in rows if rk == k)
    assert db.query("SELECT COUNT(*) FROM t").scalar() == len(rows) - affected
    # The index is clean: no phantom rows remain for k.
    assert db.query("SELECT COUNT(*) FROM t WHERE k = ?", (k,)).scalar() == 0


@settings(max_examples=100)
@given(rows=rows_strategy)
def test_aggregates_match_reference(rows):
    db = build_db(rows)
    result = db.query("SELECT SUM(v), MIN(v), MAX(v), COUNT(*) FROM t")
    row = result.rows[0]
    if rows:
        values = [v for (_k, _g, v) in rows]
        assert row == (sum(values), min(values), max(values), len(values))
    else:
        assert row == (None, None, None, 0)


@settings(max_examples=100)
@given(rows=rows_strategy)
def test_group_by_matches_reference(rows):
    db = build_db(rows)
    result = db.query("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
    expected: dict[int, int] = {}
    for (k, _g, _v) in rows:
        expected[k] = expected.get(k, 0) + 1
    assert result.rows == [(k, n) for k, n in sorted(expected.items())]


@settings(max_examples=100)
@given(rows=rows_strategy, limit=st.integers(0, 10), offset=st.integers(0, 10))
def test_order_limit_offset_matches_reference(rows, limit, offset):
    db = build_db(rows)
    result = db.query(
        "SELECT id FROM t ORDER BY v DESC, id LIMIT ? OFFSET ?", (limit, offset)
    )
    expected = [
        i
        for i, _ in sorted(
            enumerate(rows), key=lambda pair: (-pair[1][2], pair[0])
        )
    ][offset : offset + limit]
    assert [r[0] for r in result.rows] == expected


@settings(max_examples=100)
@given(rows=rows_strategy, k=st.integers(0, 9))
def test_join_via_index_matches_reference(rows, k):
    db = build_db(rows)
    db.create_table(
        TableSchema(
            "names",
            [Column("k", ColumnType.INT), Column("label", ColumnType.VARCHAR)],
            primary_key="k",
        )
    )
    db.insert_rows("names", [{"k": i, "label": f"L{i}"} for i in range(10)])
    result = db.query(
        "SELECT t.id, names.label FROM t, names "
        "WHERE t.k = names.k AND t.k = ? ORDER BY t.id",
        (k,),
    )
    expected = [(i, f"L{k}") for i, (rk, _g, _v) in enumerate(rows) if rk == k]
    assert result.rows == expected
