"""TPC-W application tests: all 14 interactions + semantic quirks."""

import pytest

from repro.apps.tpcw import TpcwDataset, build_tpcw
from repro.apps.tpcw.app import (
    BEST_SELLER_WINDOW_SECONDS,
    HIDDEN_STATE_URIS,
    INTERACTIONS,
    standard_semantics,
)
from repro.cache.autowebcache import AutoWebCache


def small_dataset():
    return TpcwDataset(n_items=60, n_customers=30, n_orders=40, seed=11)


@pytest.fixture(scope="module")
def app():
    return build_tpcw(small_dataset(), ad_seed=2)


READ_CASES = [
    ("/tpcw/home", {"c_id": "1"}),
    ("/tpcw/new_products", {"subject": "ARTS"}),
    ("/tpcw/best_sellers", {"subject": "ARTS"}),
    ("/tpcw/product_detail", {"i_id": "5"}),
    ("/tpcw/search_request", {}),
    ("/tpcw/search_results", {"type": "subject", "search": "ARTS"}),
    ("/tpcw/search_results", {"type": "title", "search": "SECRET"}),
    ("/tpcw/search_results", {"type": "author", "search": "CHEN"}),
    ("/tpcw/order_inquiry", {}),
    ("/tpcw/order_display", {"uname": "user3"}),
    ("/tpcw/customer_registration", {}),
    ("/tpcw/admin_request", {"i_id": "5"}),
]


def test_has_14_interactions():
    assert len(INTERACTIONS) == 14
    assert sum(1 for _u, (_c, w) in INTERACTIONS.items() if w) == 4


@pytest.mark.parametrize("uri,params", READ_CASES)
def test_read_interactions_render(app, uri, params):
    response = app.container.get(uri, params)
    assert response.status == 200, response.body[:200]


def test_home_pages_differ_between_requests(app):
    first = app.container.get("/tpcw/home", {"c_id": "1"}).body
    second = app.container.get("/tpcw/home", {"c_id": "1"}).body
    assert first != second  # hidden state: random banner + promos


def test_search_request_pages_differ(app):
    assert (
        app.container.get("/tpcw/search_request").body
        != app.container.get("/tpcw/search_request").body
    )


def test_unknown_search_type_is_error(app):
    response = app.container.get(
        "/tpcw/search_results", {"type": "isbn", "search": "x"}
    )
    assert response.status == 500


def test_cart_checkout_flow():
    app = build_tpcw(small_dataset(), ad_seed=3)
    container = app.container
    response = container.post("/tpcw/shopping_cart", {"i_id": "5", "qty": "2"})
    assert "Shopping cart 0" in response.body
    # Add the same item again: quantity accumulates.
    response = container.post(
        "/tpcw/shopping_cart", {"sc_id": "0", "i_id": "5", "qty": "1"}
    )
    line = app.database.query(
        "SELECT scl_qty FROM shopping_cart_line WHERE scl_sc_id = 0"
    ).scalar()
    assert line == 3
    stock_before = app.database.query(
        "SELECT i_stock FROM item WHERE i_id = 5"
    ).scalar()
    assert container.post(
        "/tpcw/buy_request", {"sc_id": "0", "c_id": "2"}
    ).status == 200
    assert container.post(
        "/tpcw/buy_confirm", {"sc_id": "0", "c_id": "2"}
    ).status == 200
    # Order created, stock decremented, cart gone.
    order = app.database.query(
        "SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 1"
    ).scalar()
    lines = app.database.query(
        "SELECT COUNT(*) FROM order_line WHERE ol_o_id = ?", (order,)
    ).scalar()
    assert lines == 1
    stock_after = app.database.query(
        "SELECT i_stock FROM item WHERE i_id = 5"
    ).scalar()
    assert stock_after == stock_before - 3
    assert (
        app.database.query("SELECT COUNT(*) FROM shopping_cart").scalar() == 0
    )


def test_buy_confirm_empty_cart_is_error():
    app = build_tpcw(small_dataset(), ad_seed=3)
    app.container.post("/tpcw/shopping_cart", {})  # cart 0, no items
    response = app.container.post(
        "/tpcw/buy_confirm", {"sc_id": "0", "c_id": "1"}
    )
    assert response.status == 500


def test_admin_confirm_updates_item():
    app = build_tpcw(small_dataset(), ad_seed=3)
    app.container.post(
        "/tpcw/admin_confirm", {"i_id": "4", "cost": "12.5", "image": "i.png"}
    )
    row = app.database.query(
        "SELECT i_cost, i_thumbnail FROM item WHERE i_id = 4"
    ).rows[0]
    assert row == (12.5, "i.png")


def test_order_display_shows_latest_order():
    app = build_tpcw(small_dataset(), ad_seed=3)
    container = app.container
    container.post("/tpcw/shopping_cart", {"i_id": "7", "qty": "1", "c_id": "3"})
    container.post("/tpcw/buy_request", {"sc_id": "0", "c_id": "3"})
    container.post("/tpcw/buy_confirm", {"sc_id": "0", "c_id": "3"})
    body = container.get("/tpcw/order_display", {"uname": "user3"}).body
    assert "PENDING" in body


class TestStandardSemantics:
    def test_hidden_state_marked_uncacheable(self):
        registry = standard_semantics()
        from repro.web.http import HttpRequest

        for uri in HIDDEN_STATE_URIS:
            assert not registry.is_cacheable(HttpRequest("GET", uri))
        assert registry.ttl_for("/tpcw/best_sellers") is None

    def test_window_enables_best_seller_ttl(self):
        registry = standard_semantics(use_best_seller_window=True)
        assert registry.ttl_for("/tpcw/best_sellers") == BEST_SELLER_WINDOW_SECONDS


def test_cached_tpcw_hidden_state_correctness():
    """With the standard semantics, identical Home requests keep
    producing different pages even with the cache installed."""
    app = build_tpcw(small_dataset(), ad_seed=4)
    awc = AutoWebCache(semantics=standard_semantics())
    awc.install(app.servlet_classes)
    try:
        first = app.container.get("/tpcw/home", {"c_id": "1"}).body
        second = app.container.get("/tpcw/home", {"c_id": "1"}).body
        assert first != second
        assert awc.stats.uncacheable == 2
    finally:
        awc.uninstall()


def test_cached_tpcw_best_seller_window():
    clock = {"now": 0.0}
    app = build_tpcw(small_dataset(), ad_seed=4)
    awc = AutoWebCache(
        semantics=standard_semantics(use_best_seller_window=True),
        clock=lambda: clock["now"],
    )
    awc.install(app.servlet_classes)
    try:
        container = app.container
        first = container.get("/tpcw/best_sellers", {"subject": "ARTS"}).body
        # A purchase that would normally invalidate best sellers...
        container.post("/tpcw/shopping_cart", {"i_id": "0", "qty": "5"})
        container.post("/tpcw/buy_confirm", {"sc_id": "0", "c_id": "1"})
        stale = container.get("/tpcw/best_sellers", {"subject": "ARTS"}).body
        assert stale == first  # served within the 30 s window
        assert awc.stats.semantic_hits == 1
        clock["now"] = BEST_SELLER_WINDOW_SECONDS + 1
        container.get("/tpcw/best_sellers", {"subject": "ARTS"})
        assert awc.stats.misses_expired == 1
    finally:
        awc.uninstall()


def test_cached_tpcw_admin_invalidates_detail_page():
    app = build_tpcw(small_dataset(), ad_seed=4)
    awc = AutoWebCache(semantics=standard_semantics())
    awc.install(app.servlet_classes)
    try:
        container = app.container
        container.get("/tpcw/product_detail", {"i_id": "4"})
        container.get("/tpcw/product_detail", {"i_id": "9"})
        container.post(
            "/tpcw/admin_confirm", {"i_id": "4", "cost": "99.9", "image": "n.png"}
        )
        body = container.get("/tpcw/product_detail", {"i_id": "4"}).body
        assert "99.9" in body
        hits_before = awc.stats.hits
        container.get("/tpcw/product_detail", {"i_id": "9"})
        assert awc.stats.hits == hits_before + 1  # untouched item survived
    finally:
        awc.uninstall()


def test_ad_rotation_seeds_from_dataset_by_default():
    """Regression: ``build_tpcw()`` fell back to OS entropy for the ad
    rotator unless ``ad_seed`` was passed explicitly, so two same-seed
    instances (and any cross-process differential or stress run)
    disagreed on every hidden-state page."""
    a = build_tpcw(small_dataset())
    b = build_tpcw(small_dataset())
    assert [a.ads.next_banner() for _ in range(8)] == [
        b.ads.next_banner() for _ in range(8)
    ]
    assert (
        a.container.get("/tpcw/home", {"c_id": "1"}).body
        == b.container.get("/tpcw/home", {"c_id": "1"}).body
    )


def test_ad_seed_override_still_wins():
    implicit = build_tpcw(small_dataset())
    explicit = build_tpcw(small_dataset(), ad_seed=small_dataset().seed)
    assert [implicit.ads.next_banner() for _ in range(4)] == [
        explicit.ads.next_banner() for _ in range(4)
    ]
    different = build_tpcw(small_dataset(), ad_seed=999)
    assert [build_tpcw(small_dataset()).ads.next_banner() for _ in range(8)] != [
        different.ads.next_banner() for _ in range(8)
    ]


def test_fragments_recover_hits_on_hidden_state_pages():
    """The tentpole win: Home/SearchRequest stay uncacheable whole (the
    banner rotates) yet their stable spans now serve from the cache."""
    from repro.cache.fragments import fragment_key

    app = build_tpcw(small_dataset())
    awc = AutoWebCache(semantics=standard_semantics())
    awc.install(app.servlet_classes)
    try:
        container = app.container
        first = container.get("/tpcw/home", {"c_id": "1"}).body
        second = container.get("/tpcw/home", {"c_id": "1"}).body
        assert first != second  # the banner hole still rotates
        assert awc.stats.uncacheable == 2  # pages never cached whole
        assert awc.stats.hits >= 1  # the greeting fragment hit
        assert fragment_key("tpcw/greeting", {"c_id": "1"}) in awc.cache.pages
        hits_before = awc.stats.hits
        container.get("/tpcw/search_request")
        container.get("/tpcw/search_request")
        assert awc.stats.hits == hits_before + 1  # the search form
    finally:
        awc.uninstall()


def test_fragments_flag_disables_fragment_caching():
    """``AutoWebCache(fragments=False)`` is the whole-page ablation arm:
    hidden-state pages then cache nothing at all."""
    app = build_tpcw(small_dataset())
    awc = AutoWebCache(semantics=standard_semantics(), fragments=False)
    awc.install(app.servlet_classes)
    try:
        app.container.get("/tpcw/home", {"c_id": "1"})
        app.container.get("/tpcw/home", {"c_id": "1"})
        assert awc.stats.hits == 0
        assert len(awc.cache) == 0
    finally:
        awc.uninstall()
