"""Schema and storage unit tests."""

import pytest

from repro.db.schema import Column, ColumnType, TableSchema
from repro.db.storage import Table
from repro.errors import IntegrityError, SchemaError


def make_schema(**kwargs):
    return TableSchema(
        "t",
        [
            Column("id", ColumnType.INT),
            Column("name", ColumnType.VARCHAR),
            Column("score", ColumnType.FLOAT),
        ],
        **kwargs,
    )


class TestSchema:
    def test_column_names_lowercased(self):
        schema = TableSchema("T", [Column("Id", ColumnType.INT)], primary_key="ID")
        assert schema.name == "t"
        assert schema.primary_key == "id"
        assert schema.has_column("iD")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INT), Column("A", ColumnType.INT)])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key="nope")

    def test_unknown_index_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(indexes=["nope"])

    def test_position_and_unknown_column(self):
        schema = make_schema()
        assert schema.position("name") == 1
        with pytest.raises(SchemaError):
            schema.position("ghost")

    def test_coerce_row_types(self):
        schema = make_schema()
        row = schema.coerce_row({"id": "3", "name": 7, "score": "1.5"})
        assert row == [3, "7", 1.5]

    def test_coerce_row_not_null(self):
        schema = TableSchema("t", [Column("a", ColumnType.INT, nullable=False)])
        with pytest.raises(SchemaError):
            schema.coerce_row({})

    def test_type_coercions(self):
        assert ColumnType.INT.coerce("5") == 5
        assert ColumnType.FLOAT.coerce(2) == 2.0
        assert ColumnType.VARCHAR.coerce(5) == "5"
        assert ColumnType.DATETIME.coerce(1) == 1.0
        assert ColumnType.INT.coerce(None) is None


class TestTable:
    def test_insert_and_pk_lookup(self):
        table = Table(make_schema(primary_key="id"))
        table.insert([1, "a", 0.5])
        hit = table.lookup_pk(1)
        assert hit is not None and hit[1][1] == "a"
        assert table.lookup_pk(99) is None

    def test_duplicate_pk_rejected(self):
        table = Table(make_schema(primary_key="id"))
        table.insert([1, "a", 0.0])
        with pytest.raises(IntegrityError):
            table.insert([1, "b", 0.0])

    def test_auto_increment_assigns_and_tracks(self):
        table = Table(make_schema(primary_key="id"))
        table.insert([None, "a", 0.0])
        assert table.last_insert_id == 0
        table.insert([5, "b", 0.0])
        table.insert([None, "c", 0.0])
        assert table.last_insert_id == 6

    def test_secondary_index_lookup(self):
        table = Table(make_schema(primary_key="id", indexes=["name"]))
        table.insert([1, "x", 0.0])
        table.insert([2, "x", 1.0])
        table.insert([3, "y", 2.0])
        assert len(table.lookup_index("name", "x")) == 2
        assert table.lookup_index("name", "zzz") == []

    def test_update_maintains_indexes(self):
        table = Table(make_schema(primary_key="id", indexes=["name"]))
        rowid = table.insert([1, "x", 0.0])
        table.update_row(rowid, [1, "y", 0.0])
        assert table.lookup_index("name", "x") == []
        assert len(table.lookup_index("name", "y")) == 1

    def test_update_pk_conflict_rejected(self):
        table = Table(make_schema(primary_key="id"))
        r1 = table.insert([1, "a", 0.0])
        table.insert([2, "b", 0.0])
        with pytest.raises(IntegrityError):
            table.update_row(r1, [2, "a", 0.0])

    def test_delete_maintains_indexes(self):
        table = Table(make_schema(primary_key="id", indexes=["name"]))
        rowid = table.insert([1, "x", 0.0])
        table.delete_row(rowid)
        assert len(table) == 0
        assert table.lookup_pk(1) is None
        assert table.lookup_index("name", "x") == []

    def test_rows_iteration_counts_scan(self):
        table = Table(make_schema())
        table.insert([1, "a", 0.0])
        before = table.scan_count
        list(table.rows())
        assert table.scan_count == before + 1

    def test_clear(self):
        table = Table(make_schema(primary_key="id", indexes=["name"]))
        table.insert([1, "a", 0.0])
        table.clear()
        assert len(table) == 0
        assert table.lookup_pk(1) is None
