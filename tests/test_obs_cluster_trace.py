"""Cross-node trace stitching over the 4-node sharded cluster.

The acceptance property of the observability subsystem: one request
entering the cluster front-end yields ONE trace -- servlet handler,
cache lookup, SQL, bus publish and the remote invalidation work on
every node, all stitched together by a single trace id carried on the
invalidation bus messages.
"""

import threading

import pytest

from repro.cluster.awc import ClusterAutoWebCache
from repro.cluster.bus import BusMessage
from repro.obs import Observability
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import build_notes_app


class VisitedTopicServlet(HttpServlet):
    """A read handler that also writes (a visit counter).

    This exercises every observed join point in one request: the GET
    goes through the cache lookup, runs SQL reads *and* an update, and
    the update's invalidation information is broadcast cluster-wide
    before the response completes.
    """

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        topic = request.get_parameter("topic")
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT id, body, score FROM notes WHERE topic = ? ORDER BY id",
            (topic,),
        )
        response.write(f"<h1>{topic}</h1>")
        while result.next():
            response.write(f"<p>{result.get('id')}:{result.get('body')}</p>")
        statement.execute_update(
            "UPDATE notes SET score = score + 1 WHERE topic = ?", (topic,)
        )


@pytest.fixture
def observed_cluster():
    db, container = build_notes_app()
    from repro.db import connect

    container.register("/visited_topic", VisitedTopicServlet(connect(db)))
    obs = Observability()
    awc = ClusterAutoWebCache(n_nodes=4)
    awc.install(container.servlet_classes, extra_aspects=obs.aspects)
    obs.weave_infrastructure(awc)
    try:
        yield db, container, awc, obs
    finally:
        obs.unweave_infrastructure()
        awc.uninstall()


def seed(container):
    container.post(
        "/add", {"id": "1", "topic": "tea", "body": "oolong", "score": "3"}
    )


class TestStitchedClusterTrace:
    def test_one_request_one_trace_across_four_nodes(self, observed_cluster):
        _db, container, awc, obs = observed_cluster
        seed(container)
        obs.tracer.reset()
        response = container.get("/visited_topic", {"topic": "tea"})
        assert response.status == 200
        trace_id, spans = obs.tracer.last_trace()
        names = [s.name for s in spans]
        # Every layer of the request is present in one trace:
        assert names[0] == "servlet GET /visited_topic"
        assert "cache.lookup" in names
        assert "sql.query" in names
        assert "sql.update" in names
        assert "bus.publish" in names
        assert names.count("bus.deliver") == 4
        # ...stitched by one trace id.
        assert {s.trace_id for s in spans} == {trace_id}
        # The deliveries happened on all four distinct nodes and are
        # children of the publish span (propagated via the message).
        publish = [s for s in spans if s.name == "bus.publish"][0]
        delivers = [s for s in spans if s.name == "bus.deliver"]
        assert {s.tags["node"] for s in delivers} == set(awc.router.node_names)
        assert all(s.parent_id == publish.span_id for s in delivers)

    def test_bus_message_carries_trace_ids(self, observed_cluster):
        _db, container, awc, obs = observed_cluster
        seed(container)
        obs.tracer.reset()
        container.post("/score", {"id": "1", "score": "9"})
        message = awc.bus.recent()[-1]
        trace_id, spans = obs.tracer.last_trace()
        publish = [s for s in spans if s.name == "bus.publish"][0]
        assert message.trace == (publish.trace_id, publish.span_id)

    def test_delivery_stitches_without_ambient_context(self, observed_cluster):
        """Explicit propagation: a delivery on a foreign thread (no
        ambient span whatsoever) still joins the publisher's trace via
        the ids carried on the message."""
        _db, _container, awc, obs = observed_cluster
        node = awc.router.nodes()[0]
        message = BusMessage(
            seq=999,
            origin="elsewhere",
            uri="/score",
            writes=(),
            trace=("feedfacefeedface", "deadbeef"),
        )
        done = threading.Event()

        def deliver():
            node.apply(message)
            done.set()

        thread = threading.Thread(target=deliver)
        thread.start()
        thread.join()
        assert done.is_set()
        spans = obs.tracer.trace("feedfacefeedface")
        assert [s.name for s in spans] == ["bus.deliver"]
        assert spans[0].parent_id == "deadbeef"

    def test_cluster_metrics_cover_bus_phases(self, observed_cluster):
        _db, container, obs_awc, obs = observed_cluster
        seed(container)
        obs.hub.reset()
        container.post("/score", {"id": "1", "score": "5"})
        phases = obs.hub.phases()
        assert "bus.publish" in phases
        assert "bus.deliver" in phases
        assert obs.hub.aggregate("bus.deliver").count == 4

    def test_trace_field_defaults_to_none_without_weaving(self):
        message = BusMessage(seq=1, origin="n", uri="/", writes=())
        assert message.trace is None
