"""Admission on the cache insert path: the facade-level contract.

A denied insert must be pure pass-through -- no bytes, no dependency
rows, no containment edges, no stats drift -- while the computed body is
still served (and still satisfies coalesced waiters).  Plus the new
lock-consistent counters (per-template dooms, per-class byte totals,
verdicts), the cluster-wide shared policy, and the ``/_metrics``
exposition of the verdict counters.
"""

from __future__ import annotations

import pytest

from repro.admission.policy import (
    ADMIT,
    DENY,
    AdaptiveAdmission,
    AdmissionPolicy,
)
from repro.cache.api import Cache
from repro.cache.autowebcache import AutoWebCache
from repro.cache.stats import CacheStats
from repro.cluster.awc import ClusterAutoWebCache
from repro.obs.exposition import ADMISSION_METRIC
from repro.obs.histogram import MetricsHub
from repro.obs.servlets import METRICS_URI, mount_observability
from repro.obs.tracer import Tracer
from repro.web.container import ServletContainer

from tests.conftest import build_notes_app


class DenyAll(AdmissionPolicy):
    """Deterministic pass-through: every insert denied."""

    def verdict(self, cls: str, nbytes: int) -> str:
        return DENY


class TestDeniedInsertLeavesNoTrace:
    def test_denied_insert_stores_nothing(self):
        db, container = build_notes_app()
        awc = AutoWebCache(admission=DenyAll())
        awc.install(container.servlet_classes)
        try:
            container.post("/add", {"id": "1", "topic": "a", "body": "x"})
            response = container.get("/view_topic", {"topic": "a"})
            assert response.status == 200
            assert "x" in response.body
            # Pass-through: no entry, no bytes, no dependency rows.
            assert len(awc.cache.pages) == 0
            assert awc.cache.pages.total_bytes == 0
            assert awc.cache.pages.dependencies.read_templates() == []
            stats = awc.stats
            assert stats.denied == 1
            assert stats.admitted == 0
            assert stats.inserts == 0
            assert stats.inserted_bytes_by_class == {}
            # The next read misses again and still serves correctly.
            again = container.get("/view_topic", {"topic": "a"})
            assert again.body == response.body
            assert stats.misses_cold == 2
        finally:
            awc.uninstall()

    def test_denied_insert_still_feeds_waiters(self):
        # The leader's denied insert must still publish the computed
        # entry on the flight: waiters serve it once, no recompute storm.
        cache = Cache(admission=DenyAll())
        flight, is_leader = cache.join_flight("/k")
        assert is_leader
        entry, stored = cache.insert_key("/k", "body", [])
        assert not stored
        assert flight.entry is entry
        cache.finish_flight(flight)
        assert cache.wait_flight(flight) is entry
        assert len(cache.pages) == 0

    def test_admitted_insert_still_stores(self):
        cache = Cache()  # default AdmitAll
        entry, stored = cache.insert_key("/k", "body", [])
        assert stored
        assert cache.pages.peek("/k") is entry
        assert cache.stats.admitted == 1

    def test_stale_insert_never_reaches_the_policy(self):
        # The staleness check runs first: a stale insert is discarded
        # without consuming an admission verdict.
        policy = DenyAll()
        cache = Cache(admission=policy)
        window = cache.begin_window("/k")
        window.stale = True
        _entry, stored = cache.insert_key("/k", "body", [], window=window)
        cache.end_window(window)
        assert not stored
        assert cache.stats.stale_inserts == 1
        assert cache.stats.denied == 0


class TestStatsCounters:
    def test_record_admission_rejects_unknown_verdict(self):
        with pytest.raises(ValueError):
            CacheStats().record_admission("maybe")

    def test_dooms_attributed_to_write_template(self, cached_notes_app):
        db, container, awc = cached_notes_app
        container.post("/add", {"id": "1", "topic": "a", "body": "x"})
        container.get("/view_topic", {"topic": "a"})
        container.post("/score", {"id": "1", "score": "9"})
        dooms = awc.stats.snapshot()["dooms_by_template"]
        assert sum(dooms.values()) >= 1
        assert any("UPDATE notes" in template for template in dooms)

    def test_per_class_insert_and_evict_byte_totals(self):
        cache = Cache(replacement="lru", max_bytes=1)  # one entry max
        entry_a, _ = cache.insert_key("/a?x=1", "A" * 10, [])
        entry_b, _ = cache.insert_key("/b?x=1", "B" * 20, [])
        snapshot = cache.stats.snapshot()
        inserted = snapshot["inserted_bytes_by_class"]
        assert inserted == {"/a": entry_a.size, "/b": entry_b.size}
        # /b's insert evicted /a: the victim's bytes land in its class.
        assert snapshot["evicted_bytes_by_class"] == {"/a": entry_a.size}

    def test_verdicts_in_snapshot(self):
        stats = CacheStats()
        stats.record_admission("admitted")
        stats.record_admission("denied")
        stats.record_admission("denied")
        stats.record_admission("shadow_denied")
        snapshot = stats.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["denied"] == 2
        assert snapshot["shadow_denied"] == 1


class TestModelFeeds:
    def test_check_key_feeds_lookup_observations(self):
        policy = AdaptiveAdmission()
        cache = Cache(admission=policy)
        cache.check_key("/p?x=1", "/p")
        cache.insert_key("/p?x=1", "body", [], ttl_uri="/p")
        cache.check_key("/p?x=1", "/p")
        row = policy.model.snapshot()["/p"]
        assert row["lookups"] == 2
        assert 0.0 < row["hit_prob"] < 1.0  # one miss then one hit

    def test_recompute_observed_from_flight_open_time(self):
        now = [100.0]
        policy = AdaptiveAdmission()
        cache = Cache(clock=lambda: now[0], admission=policy)
        flight, _leader = cache.join_flight("/p?x=1")
        now[0] = 100.25
        cache.insert_key("/p?x=1", "body", [], ttl_uri="/p")
        cache.finish_flight(flight)
        row = policy.model.snapshot()["/p"]
        assert row["recompute_seconds"] == pytest.approx(0.25)

    def test_dooms_observed_per_class(self, cached_notes_app):
        db, container, awc = cached_notes_app
        policy = AdaptiveAdmission()
        awc.cache.admission = policy
        container.post("/add", {"id": "1", "topic": "a", "body": "x"})
        container.get("/view_topic", {"topic": "a"})
        container.post("/add", {"id": "2", "topic": "a", "body": "y"})
        assert policy.model.snapshot()["/view_topic"]["dooms"] == 1


class TestClusterSharedPolicy:
    def test_one_policy_instance_across_all_nodes(self):
        db, container = build_notes_app()
        policy = AdaptiveAdmission(min_observations=5)
        awc = ClusterAutoWebCache(n_nodes=4, admission=policy)
        awc.install(container.servlet_classes)
        try:
            assert awc.router.admission is policy
            for node in awc.router.nodes():
                assert node.cache.admission is policy
            container.post("/add", {"id": "1", "topic": "a", "body": "x"})
            for note_id in range(1, 2):
                container.get("/view_note", {"id": str(note_id)})
            # Lookups recorded on whichever shard owns the key feed the
            # one shared model.
            assert policy.model.observations("/view_note") >= 1
        finally:
            awc.uninstall()

    def test_cluster_stats_sum_admission_verdicts(self):
        db, container = build_notes_app()
        awc = ClusterAutoWebCache(n_nodes=2)
        awc.install(container.servlet_classes)
        try:
            container.post("/add", {"id": "1", "topic": "a", "body": "x"})
            container.get("/view_topic", {"topic": "a"})
            container.get("/view_note", {"id": "1"})
            stats = awc.stats
            assert stats.admitted == stats.inserts == 2
            assert stats.denied == 0
            per_node = sum(
                node.cache.stats.admitted for node in awc.router.nodes()
            )
            assert per_node == 2
            aggregate = awc.stats.snapshot()["cluster"]
            assert aggregate["admitted"] == 2
            # dict-valued counters merge by sub-key across nodes.
            merged = aggregate["inserted_bytes_by_class"]
            assert set(merged) == {"/view_topic", "/view_note"}
        finally:
            awc.uninstall()


class TestMetricsExposition:
    def test_metrics_endpoint_renders_verdict_counters(self):
        container = ServletContainer()
        hub = MetricsHub()
        stats = CacheStats()
        stats.record_admission("admitted")
        stats.record_admission("denied")
        mount_observability(container, hub, Tracer(), stats=stats)
        response = container.get(METRICS_URI)
        assert response.status == 200
        assert f'{ADMISSION_METRIC}{{verdict="admitted"}} 1' in response.body
        assert f'{ADMISSION_METRIC}{{verdict="denied"}} 1' in response.body
        assert f'{ADMISSION_METRIC}{{verdict="shadow_denied"}} 0' in response.body

    def test_metrics_endpoint_without_stats_omits_verdicts(self):
        container = ServletContainer()
        mount_observability(container, MetricsHub(), Tracer())
        response = container.get(METRICS_URI)
        assert response.status == 200
        assert ADMISSION_METRIC not in response.body

    def test_counters_reflect_serve_time_state(self):
        # The servlet snapshots stats per scrape, not at mount time.
        container = ServletContainer()
        stats = CacheStats()
        mount_observability(container, MetricsHub(), Tracer(), stats=stats)
        assert f'{ADMISSION_METRIC}{{verdict="denied"}} 0' in (
            container.get(METRICS_URI).body
        )
        stats.record_admission("denied")
        assert f'{ADMISSION_METRIC}{{verdict="denied"}} 1' in (
            container.get(METRICS_URI).body
        )


class TestAdaptiveEndToEnd:
    def test_churny_class_goes_pass_through_stable_class_stays(self):
        db, container = build_notes_app()
        policy = AdaptiveAdmission(margin=0.1, min_observations=10)
        awc = AutoWebCache(admission=policy)
        awc.install(container.servlet_classes)
        try:
            container.post("/add", {"id": "1", "topic": "a", "body": "x"})
            note_id = 1
            for round_ in range(30):
                container.get("/view_topic", {"topic": "a"})  # always doomed
                note_id += 1
                container.post("/add", {
                    "id": str(note_id), "topic": "a", "body": f"b{round_}",
                })
                container.get("/view_note", {"id": "1"})  # always hits
            assert policy.is_demoted("/view_topic")
            assert not policy.is_demoted("/view_note")
            stats = awc.stats
            assert stats.denied > 0
            assert stats.admitted == stats.inserts
            # The stable page is still cached and correct.
            assert any(
                key.startswith("/view_note") for key in awc.cache.pages.keys()
            )
            assert policy.snapshot()["/view_topic"]["state"] == "pass-through"
        finally:
            awc.uninstall()

    def test_verdict_constants_are_the_counter_names(self):
        assert ADMIT == "admitted"
        assert DENY == "denied"
