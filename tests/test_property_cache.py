"""Property-based tests for AutoWebCache's central guarantees.

1. **Strong consistency** (the paper's core claim): under any random
   interleaving of reads and writes, every response served by the
   cache-enabled application is byte-identical to the response a fresh
   cache-free execution of the same request would produce.

2. **Policy soundness and precision ordering**: all three invalidation
   policies preserve strong consistency, and the number of pages each
   invalidates is monotone: EXTRA_QUERY <= WHERE_MATCH <= COLUMN_ONLY.

3. **LRU model conformance**: the bounded page cache behaves like a
   textbook LRU model.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache.analysis import InvalidationPolicy
from repro.cache.autowebcache import AutoWebCache
from repro.cache.entry import PageEntry
from repro.cache.page_cache import PageCache
from repro.cache.replacement import LruPolicy

from tests.conftest import build_notes_app

# One workload step: (kind, args).
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(0, 15),  # id
            st.sampled_from(["a", "b", "c"]),  # topic
            st.integers(0, 5),  # score
        ),
        st.tuples(st.just("score"), st.integers(0, 15), st.integers(0, 9)),
        st.tuples(st.just("delete"), st.integers(0, 15)),
        st.tuples(st.just("view_topic"), st.sampled_from(["a", "b", "c"])),
        st.tuples(st.just("view_note"), st.integers(0, 15)),
    ),
    min_size=1,
    max_size=40,
)


def apply_operation(container, op, added):
    """Dispatch one step against a container; returns a response or None."""
    kind = op[0]
    if kind == "add":
        _, note_id, topic, score = op
        if note_id in added:
            return None  # duplicate pk: skip
        added.add(note_id)
        return container.post(
            "/add",
            {
                "id": str(note_id),
                "topic": topic,
                "body": f"body{note_id}",
                "score": str(score),
            },
        )
    if kind == "score":
        _, note_id, score = op
        return container.post("/score", {"id": str(note_id), "score": str(score)})
    if kind == "delete":
        return container.post("/delete", {"id": str(op[1])})
    if kind == "view_topic":
        return container.get("/view_topic", {"topic": op[1]})
    if kind == "view_note":
        return container.get("/view_note", {"id": str(op[1])})
    raise AssertionError(kind)


def run_consistency_check(ops, policy):
    """Run ops against a cached app and a mirror uncached app in
    lock-step; every read must agree."""
    db, container = build_notes_app()
    ref_db, ref_container = build_notes_app()
    awc = AutoWebCache(policy=policy)
    awc.install(container.servlet_classes)
    try:
        added: set[int] = set()
        ref_added: set[int] = set()
        for op in ops:
            response = apply_operation(container, op, added)
            reference = apply_operation(ref_container, op, ref_added)
            if response is None:
                continue
            if op[0].startswith("view"):
                assert response.body == reference.body, (
                    f"stale page under {policy} for {op}: "
                    f"{response.body!r} != {reference.body!r}"
                )
        return awc.cache.stats
    finally:
        awc.uninstall()


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_strong_consistency_extra_query(ops):
    run_consistency_check(ops, InvalidationPolicy.EXTRA_QUERY)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_strong_consistency_where_match(ops):
    run_consistency_check(ops, InvalidationPolicy.WHERE_MATCH)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_strong_consistency_column_only(ops):
    run_consistency_check(ops, InvalidationPolicy.COLUMN_ONLY)


@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_policy_precision_ordering(ops):
    """More precise policies never invalidate more pages."""
    invalidated = {}
    for policy in InvalidationPolicy:
        stats = run_consistency_check(ops, policy)
        invalidated[policy] = stats.invalidated_pages
    assert (
        invalidated[InvalidationPolicy.EXTRA_QUERY]
        <= invalidated[InvalidationPolicy.WHERE_MATCH]
        <= invalidated[InvalidationPolicy.COLUMN_ONLY]
    )


@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_hits_never_decrease_with_precision(ops):
    """More precise policies can only preserve or improve the hit count."""
    hits = {}
    for policy in InvalidationPolicy:
        stats = run_consistency_check(ops, policy)
        hits[policy] = stats.hits
    assert hits[InvalidationPolicy.EXTRA_QUERY] >= hits[
        InvalidationPolicy.WHERE_MATCH
    ] >= hits[InvalidationPolicy.COLUMN_ONLY]


# ---------------------------------------------------------------------------
# LRU model conformance
# ---------------------------------------------------------------------------

lru_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup"]), st.integers(0, 7)),
    max_size=60,
)


@settings(max_examples=150)
@given(ops=lru_ops, capacity=st.integers(1, 4))
def test_lru_page_cache_matches_model(ops, capacity):
    cache = PageCache(LruPolicy(capacity=capacity))
    model: list[int] = []  # most recent last
    for kind, key in ops:
        name = f"/p{key}"
        if kind == "insert":
            cache.insert(PageEntry(key=name, body="x"))
            if key in model:
                model.remove(key)
            model.append(key)
            if len(model) > capacity:
                model.pop(0)
        else:
            entry, _reason = cache.lookup(name, now=0.0)
            if key in model:
                assert entry is not None
                model.remove(key)
                model.append(key)
            else:
                assert entry is None
        assert len(cache) == len(model)
        assert set(cache.keys()) == {f"/p{k}" for k in model}
