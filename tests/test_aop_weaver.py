"""Weaver and advice-chain tests."""

import pytest

from repro.aop import (
    Aspect,
    Weaver,
    after,
    after_returning,
    after_throwing,
    around,
    before,
)
from repro.errors import WeavingError


def make_service():
    """Fresh class per test: weaving mutates the class object."""

    class Service:
        def __init__(self):
            self.calls = []

        def compute(self, x):
            self.calls.append(x)
            return x * 2

        def failing(self, x):
            raise ValueError("boom")

    return Service


class Recorder(Aspect):
    def __init__(self):
        self.events = []

    @before("execution(Service.compute(..))")
    def log_before(self, jp):
        self.events.append(("before", jp.args))

    @after_returning("execution(Service.compute(..))")
    def log_return(self, jp):
        self.events.append(("after_returning", jp.result))

    @after("execution(Service.*(..))")
    def log_finally(self, jp):
        self.events.append(("after", jp.signature.method_name))

    @after_throwing("execution(Service.failing(..))")
    def log_throw(self, jp):
        self.events.append(("after_throwing", type(jp.exception).__name__))


class Doubler(Aspect):
    @around("execution(Service.compute(..))")
    def double(self, jp):
        return jp.proceed() * 2


class Bypass(Aspect):
    @around("execution(Service.compute(..))")
    def skip(self, jp):
        return -1  # never proceeds


def test_before_and_after_returning_order():
    Service = make_service()
    recorder = Recorder()
    weaver = Weaver().add_aspect(recorder)
    weaver.weave([Service])
    try:
        service = Service()
        assert service.compute(3) == 6
        kinds = [e[0] for e in recorder.events]
        assert kinds == ["before", "after_returning", "after"]
        assert recorder.events[1] == ("after_returning", 6)
    finally:
        weaver.unweave()


def test_after_throwing_and_after_run_on_exception():
    Service = make_service()
    recorder = Recorder()
    weaver = Weaver().add_aspect(recorder)
    weaver.weave([Service])
    try:
        with pytest.raises(ValueError):
            Service().failing(1)
        assert ("after_throwing", "ValueError") in recorder.events
        assert ("after", "failing") in recorder.events
        assert not any(e[0] == "after_returning" for e in recorder.events)
    finally:
        weaver.unweave()


def test_around_advises_result():
    Service = make_service()
    weaver = Weaver().add_aspect(Doubler())
    weaver.weave([Service])
    try:
        assert Service().compute(3) == 12
    finally:
        weaver.unweave()


def test_around_can_bypass_entirely():
    Service = make_service()
    weaver = Weaver().add_aspect(Bypass())
    weaver.weave([Service])
    try:
        service = Service()
        assert service.compute(3) == -1
        assert service.calls == []  # original body never ran
    finally:
        weaver.unweave()


def test_around_nesting_by_precedence():
    Service = make_service()

    class AddTen(Aspect):
        precedence = 1

        @around("execution(Service.compute(..))")
        def add(self, jp):
            return jp.proceed() + 10

    class Triple(Aspect):
        precedence = 2

        @around("execution(Service.compute(..))")
        def triple(self, jp):
            return jp.proceed() * 3

    # AddTen (lower precedence value) is outermost: (x*2 * 3) + 10.
    weaver = Weaver().add_aspect(Triple()).add_aspect(AddTen())
    weaver.weave([Service])
    try:
        assert Service().compute(1) == 16
    finally:
        weaver.unweave()


def test_unweave_restores_original():
    Service = make_service()
    original = Service.compute
    weaver = Weaver().add_aspect(Doubler())
    weaver.weave([Service])
    weaver.unweave()
    assert Service.compute is original
    assert Service().compute(3) == 6


def test_double_weaving_rejected():
    Service = make_service()
    weaver = Weaver().add_aspect(Doubler())
    weaver.weave([Service])
    try:
        with pytest.raises(WeavingError):
            Weaver().add_aspect(Doubler()).weave([Service])
    finally:
        weaver.unweave()


def test_weave_report_contents():
    Service = make_service()
    weaver = Weaver().add_aspect(Recorder())
    report = weaver.weave([Service])
    try:
        names = {(jp.class_name, jp.method_name) for jp in report.join_points}
        assert ("Service", "compute") in names
        assert ("Service", "failing") in names
        assert report.advised_method_count == 2
        assert report.advice_application_count >= 3
        assert "Service.compute" in report.describe()
    finally:
        weaver.unweave()


def test_unmatched_class_untouched():
    Service = make_service()

    class Other:
        def unrelated(self):
            return 1

    weaver = Weaver().add_aspect(Doubler())
    report = weaver.weave([Service, Other])
    try:
        assert all(jp.class_name != "Other" for jp in report.join_points)
        assert Other().unrelated() == 1
    finally:
        weaver.unweave()


def test_weaver_as_context_manager():
    Service = make_service()
    original = Service.compute
    with Weaver().add_aspect(Doubler()) as weaver:
        weaver.weave([Service])
        assert Service().compute(1) == 4
    assert Service.compute is original


def test_joinpoint_args_passed_through():
    Service = make_service()

    class Inspect(Aspect):
        def __init__(self):
            self.seen = None

        @around("execution(Service.compute(..))")
        def look(self, jp):
            self.seen = (jp.target, jp.args)
            return jp.proceed()

    aspect = Inspect()
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Service])
    try:
        service = Service()
        service.compute(42)
        assert aspect.seen[0] is service
        assert aspect.seen[1] == (42,)
    finally:
        weaver.unweave()
