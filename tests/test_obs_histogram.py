"""Fixed-bucket latency histograms: derived percentiles, merge, hub."""

import math
import threading

import pytest

from repro.obs.histogram import NO_REQUEST, LatencyHistogram, MetricsHub


class TestLatencyHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            LatencyHistogram((0.1, 0.1))
        with pytest.raises(ValueError):
            LatencyHistogram((0.2, 0.1))

    def test_exact_count_sum_min_max(self):
        h = LatencyHistogram((0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(2.555)
        assert h.min == pytest.approx(0.005)
        assert h.max == pytest.approx(2.0)
        assert h.mean == pytest.approx(2.555 / 4)

    def test_buckets_are_cumulative_with_inf_tail(self):
        h = LatencyHistogram((0.01, 0.1))
        for v in (0.005, 0.007, 0.05, 5.0):
            h.observe(v)
        assert h.buckets() == [(0.01, 2), (0.1, 3), (math.inf, 4)]

    def test_percentiles_derived_without_samples(self):
        h = LatencyHistogram((0.001, 0.01, 0.1, 1.0))
        # 90 fast observations, 10 slow ones: p50 sits in the first
        # bucket, p95 in the slow bucket.
        for _ in range(90):
            h.observe(0.0005)
        for _ in range(10):
            h.observe(0.05)
        assert h.percentile(50) <= 0.001
        assert 0.01 <= h.percentile(95) <= 0.1
        # Clamped to the observed range at the extremes.
        assert h.percentile(100) == pytest.approx(0.05)

    def test_percentile_overflow_bucket_uses_observed_max(self):
        h = LatencyHistogram((0.001,))
        h.observe(0.5)
        h.observe(3.0)
        assert h.percentile(99) <= 3.0

    def test_percentile_validates_range(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0

    def test_merge_folds_counts(self):
        a = LatencyHistogram((0.01, 0.1))
        b = LatencyHistogram((0.01, 0.1))
        a.observe(0.005)
        b.observe(0.05)
        b.observe(4.0)
        a.merge(b)
        assert a.count == 3
        assert a.max == pytest.approx(4.0)
        assert a.min == pytest.approx(0.005)
        assert a.buckets()[-1][1] == 3

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram((0.1,)).merge(LatencyHistogram((0.2,)))

    def test_concurrent_observes_lose_nothing(self):
        h = LatencyHistogram((0.01,))
        threads = [
            threading.Thread(
                target=lambda: [h.observe(0.001) for _ in range(500)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000
        assert h.buckets()[0][1] == 2000


class TestMetricsHub:
    def test_keyed_by_phase_and_request(self):
        hub = MetricsHub()
        hub.observe("sql.query", "/view_item", 0.002)
        hub.observe("sql.query", "/home", 0.001)
        hub.observe("servlet", "/view_item", 0.01)
        assert len(hub) == 3
        assert hub.phases() == ["servlet", "sql.query"]
        assert hub.histogram("sql.query", "/view_item").count == 1

    def test_aggregate_merges_request_types(self):
        hub = MetricsHub()
        hub.observe("sql.query", "/a", 0.001)
        hub.observe("sql.query", "/b", 0.002)
        hub.observe("servlet", "/a", 0.1)
        merged = hub.aggregate("sql.query")
        assert merged.count == 2
        assert merged.sum == pytest.approx(0.003)

    def test_summary_rows_skip_empty_and_convert_to_ms(self):
        hub = MetricsHub()
        hub.histogram("servlet", "/idle")  # created but never observed
        hub.observe("servlet", "/busy", 0.010)
        rows = hub.summary_rows()
        assert len(rows) == 1
        phase, request, count, p50, _p95, _p99, max_ms = rows[0]
        assert (phase, request, count) == ("servlet", "/busy", 1)
        assert max_ms == pytest.approx(10.0)
        assert p50 <= 10.0

    def test_no_request_label(self):
        assert NO_REQUEST == "-"

    def test_reset(self):
        hub = MetricsHub()
        hub.observe("servlet", "/x", 0.1)
        hub.reset()
        assert len(hub) == 0
