"""Woven observability over the notes application (single node).

The servlets under test contain no tracing or metrics calls; every
span and every histogram sample below arrives purely by weaving the
:class:`TracingAspect`/:class:`MetricsAspect` alongside the caching
aspects (shared weaver) and over the cache facade (infra weaver).
"""

import pytest

from repro.cache.api import Cache
from repro.cache.autowebcache import AutoWebCache
from repro.obs import Observability
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import build_notes_app


class BoomServlet(HttpServlet):
    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        raise RuntimeError("kaput")


class TeapotServlet(HttpServlet):
    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        response.send_error(503, "brewing")


@pytest.fixture
def observed_app():
    db, container = build_notes_app()
    container.register("/boom", BoomServlet())
    container.register("/teapot", TeapotServlet())
    obs = Observability()
    awc = AutoWebCache()
    awc.install(container.servlet_classes, extra_aspects=obs.aspects)
    obs.weave_infrastructure(awc)
    try:
        yield db, container, awc, obs
    finally:
        obs.unweave_infrastructure()
        awc.uninstall()


def seed(container):
    container.post(
        "/add", {"id": "1", "topic": "tea", "body": "oolong", "score": "3"}
    )


def span_names(tracer):
    _trace_id, spans = tracer.last_trace()
    return [s.name for s in spans]


class TestTracingAspect:
    def test_miss_trace_covers_servlet_sql_and_cache(self, observed_app):
        _db, container, _awc, obs = observed_app
        seed(container)
        obs.tracer.reset()
        container.get("/view_topic", {"topic": "tea"})
        trace_id, spans = obs.tracer.last_trace()
        names = [s.name for s in spans]
        assert names == [
            "servlet GET /view_topic",
            "cache.lookup",
            "sql.query",
            "cache.insert",
        ]
        # One trace id stitches the whole request...
        assert {s.trace_id for s in spans} == {trace_id}
        # ...and tracing brackets caching: every inner span is a child
        # of the servlet span.
        root = spans[0]
        assert root.parent_id is None
        assert all(s.parent_id == root.span_id for s in spans[1:])
        assert root.tags["status"] == "200"

    def test_hit_is_still_a_traced_event(self, observed_app):
        _db, container, _awc, obs = observed_app
        seed(container)
        container.get("/view_topic", {"topic": "tea"})
        obs.tracer.reset()
        container.get("/view_topic", {"topic": "tea"})
        _id, spans = obs.tracer.last_trace()
        assert [s.name for s in spans] == [
            "servlet GET /view_topic",
            "cache.lookup",
        ]
        assert spans[1].tags["outcome"] == "hit"

    def test_write_trace_covers_update_and_invalidation(self, observed_app):
        _db, container, _awc, obs = observed_app
        seed(container)
        container.get("/view_topic", {"topic": "tea"})
        obs.tracer.reset()
        container.post("/score", {"id": "1", "score": "9"})
        _id, spans = obs.tracer.last_trace()
        names = [s.name for s in spans]
        assert names[0] == "servlet POST /score"
        assert "sql.update" in names
        assert "cache.invalidate" in names
        doomed = [s for s in spans if s.name == "cache.invalidate"][0]
        assert doomed.tags["doomed"] == "1"

    def test_servlet_exception_marks_span_error(self, observed_app):
        _db, container, _awc, obs = observed_app
        obs.tracer.reset()
        response = container.get("/boom")
        assert response.status == 500
        _id, spans = obs.tracer.last_trace()
        assert spans[0].status == "error"
        assert "RuntimeError: kaput" in spans[0].error

    def test_5xx_status_marks_span_error(self, observed_app):
        _db, container, _awc, obs = observed_app
        obs.tracer.reset()
        response = container.get("/teapot")
        assert response.status == 503
        _id, spans = obs.tracer.last_trace()
        assert spans[0].status == "error"
        assert spans[0].tags["status"] == "503"


class TestMetricsAspect:
    def test_phases_keyed_by_request_type(self, observed_app):
        _db, container, _awc, obs = observed_app
        seed(container)
        obs.hub.reset()
        container.get("/view_topic", {"topic": "tea"})
        container.get("/view_note", {"id": "1"})
        keys = {key for key, _h in obs.hub.items()}
        # SQL issued inside /view_topic is charged to /view_topic.
        assert ("sql.query", "/view_topic") in keys
        assert ("sql.query", "/view_note") in keys
        assert ("servlet", "/view_topic") in keys
        assert ("cache.lookup", "/view_topic") in keys
        assert ("cache.insert", "/view_note") in keys

    def test_hit_and_miss_both_observed(self, observed_app):
        _db, container, _awc, obs = observed_app
        seed(container)
        obs.hub.reset()
        container.get("/view_topic", {"topic": "tea"})
        container.get("/view_topic", {"topic": "tea"})
        assert obs.hub.histogram("cache.lookup", "/view_topic").count == 2
        # Insert only on the miss.
        assert obs.hub.histogram("cache.insert", "/view_topic").count == 1


class TestRuntimeSwitch:
    def test_disabled_records_nothing_but_serving_works(self, observed_app):
        _db, container, _awc, obs = observed_app
        seed(container)
        obs.disable()
        obs.tracer.reset()
        obs.hub.reset()
        response = container.get("/view_topic", {"topic": "tea"})
        assert "oolong" in response.body
        assert len(obs.tracer) == 0
        assert len(obs.hub) == 0
        obs.enable()
        container.get("/view_topic", {"topic": "tea"})
        assert len(obs.tracer) == 1

    def test_unweave_restores_cache_facade(self, observed_app):
        _db, _container, _awc, obs = observed_app
        assert getattr(vars(Cache)["check"], "__aw_woven__", False)
        obs.unweave_infrastructure()
        assert not getattr(vars(Cache)["check"], "__aw_woven__", False)
        # Idempotent: a second unweave is a no-op.
        obs.unweave_infrastructure()


class TestInstallFacade:
    def test_infra_report_lists_cache_join_points(self, observed_app):
        _db, _container, _awc, obs = observed_app
        woven = {
            (jp.class_name, jp.method_name)
            for jp in obs.infra_report.join_points
        }
        assert ("Cache", "check") in woven
        assert ("Cache", "insert") in woven
        assert ("Cache", "process_write_request") in woven

    def test_double_infra_weave_rejected(self, observed_app):
        from repro.errors import WeavingError

        _db, _container, _awc, obs = observed_app
        with pytest.raises(WeavingError):
            obs.weave_infrastructure(classes=(Cache,))
