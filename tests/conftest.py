"""Shared fixtures.

Weaving mutates classes globally, so every fixture that installs
AutoWebCache guarantees uninstallation, and a session-level autouse
fixture asserts no woven methods leak between tests.
"""

from __future__ import annotations

import os

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.db import Column, ColumnType, Database, TableSchema, connect
from repro.db.dbapi import Connection, Statement
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet


@pytest.fixture(scope="session", autouse=True)
def lockwatch_session():
    """Dynamic lockset mode (``REPRO_LOCKWATCH=1``, see `make
    stress-lockwatch`): weave the lock-order recorder over NamedRLock
    for the whole session and fail it if any test's real traffic takes
    a rank-inverting or same-name-nested acquisition."""
    if os.environ.get("REPRO_LOCKWATCH") != "1":
        yield
        return
    from repro.staticcheck.lockwatch import LockWatchRecorder, watch_locks

    recorder = LockWatchRecorder()
    weaver = watch_locks(recorder)
    try:
        yield
    finally:
        weaver.unweave()
    violations = recorder.snapshot_violations()
    assert not violations, (
        f"dynamic lock-order violations over {recorder.acquisitions} "
        "acquisitions:\n" + "\n".join(v.describe() for v in violations)
    )


@pytest.fixture(autouse=True)
def no_woven_leaks():
    """Fail loudly if a test leaves the shared Statement class woven."""
    yield
    for name in ("execute_query", "execute_update"):
        method = vars(Statement).get(name)
        assert not getattr(method, "__aw_woven__", False), (
            f"Statement.{name} left woven by a test"
        )
    for name in ("commit", "rollback"):
        method = vars(Connection).get(name)
        assert not getattr(method, "__aw_woven__", False), (
            f"Connection.{name} left woven by a test"
        )


def make_notes_db() -> Database:
    """A tiny two-table database used across cache tests."""
    db = Database("notes")
    db.create_table(
        TableSchema(
            "notes",
            [
                Column("id", ColumnType.INT),
                Column("topic", ColumnType.VARCHAR),
                Column("body", ColumnType.VARCHAR),
                Column("score", ColumnType.INT),
            ],
            primary_key="id",
            indexes=["topic"],
        )
    )
    db.create_table(
        TableSchema(
            "topics",
            [
                Column("id", ColumnType.INT),
                Column("name", ColumnType.VARCHAR),
            ],
            primary_key="id",
        )
    )
    return db


class ViewTopicServlet(HttpServlet):
    """Read handler: renders every note under a topic."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        topic = request.get_parameter("topic")
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT id, body, score FROM notes WHERE topic = ? ORDER BY id",
            (topic,),
        )
        response.write(f"<h1>{topic}</h1>")
        while result.next():
            response.write(
                f"<p>{result.get('id')}:{result.get('body')}"
                f"({result.get('score')})</p>"
            )


class ViewNoteServlet(HttpServlet):
    """Read handler: renders a single note by id."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        note_id = int(request.get_parameter("id"))
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT body, score FROM notes WHERE id = ?", (note_id,)
        )
        if result.next():
            response.write(f"<p>{result.get('body')}|{result.get('score')}</p>")
        else:
            response.write("<p>gone</p>")


class AddNoteServlet(HttpServlet):
    """Write handler: inserts a note."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self._connection.create_statement()
        statement.execute_update(
            "INSERT INTO notes (id, topic, body, score) VALUES (?, ?, ?, ?)",
            (
                int(request.get_parameter("id")),
                request.get_parameter("topic"),
                request.get_parameter("body"),
                int(request.get_parameter("score", "0")),
            ),
        )
        response.write("added")


class ScoreNoteServlet(HttpServlet):
    """Write handler: updates one note's score."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self._connection.create_statement()
        statement.execute_update(
            "UPDATE notes SET score = ? WHERE id = ?",
            (
                int(request.get_parameter("score")),
                int(request.get_parameter("id")),
            ),
        )
        response.write("scored")


class DeleteNoteServlet(HttpServlet):
    """Write handler: deletes one note."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self._connection.create_statement()
        statement.execute_update(
            "DELETE FROM notes WHERE id = ?",
            (int(request.get_parameter("id")),),
        )
        response.write("deleted")


NOTES_SERVLETS = (
    ViewTopicServlet,
    ViewNoteServlet,
    AddNoteServlet,
    ScoreNoteServlet,
    DeleteNoteServlet,
)


def build_notes_app() -> tuple[Database, ServletContainer]:
    """Assemble the notes mini-application (no cache installed)."""
    db = make_notes_db()
    connection = connect(db)
    container = ServletContainer()
    container.register("/view_topic", ViewTopicServlet(connection))
    container.register("/view_note", ViewNoteServlet(connection))
    container.register("/add", AddNoteServlet(connection))
    container.register("/score", ScoreNoteServlet(connection))
    container.register("/delete", DeleteNoteServlet(connection))
    return db, container


@pytest.fixture
def notes_app():
    """(database, container) for the notes mini-application."""
    return build_notes_app()


@pytest.fixture
def cached_notes_app():
    """(database, container, awc) with AutoWebCache installed; always
    uninstalls afterwards."""
    db, container = build_notes_app()
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        yield db, container, awc
    finally:
        awc.uninstall()
