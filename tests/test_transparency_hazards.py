"""Transparency hazards of Section 4.3, encoded as executable tests.

The paper argues complete transparency + strong consistency is not
achievable in general because essential data can flow through
interfaces the consistency logic does not see.  Each hazard below is
demonstrated (the naive cache breaks the application) together with the
paper's mitigation (developer marks the page uncacheable, or routes the
hidden input through the request).
"""

from repro.cache.autowebcache import AutoWebCache
from repro.cache.semantics import SemanticsRegistry
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest
from repro.web.servlet import HttpServlet

from tests.conftest import make_notes_db


class CookieGreeting(HttpServlet):
    """Renders the user name carried in a cookie: the 'Cookies' hazard.

    Two requests with identical URI+parameters but different cookies
    must produce different pages -- which the URI-keyed cache cannot
    know.
    """

    def do_get(self, request, response):
        response.write(f"hello {request.get_cookie('user', 'guest')}")


class CounterPage(HttpServlet):
    """Embeds a static counter: the 'Hidden State' hazard."""

    hits = 0

    def do_get(self, request, response):
        type(self).hits += 1
        response.write(f"you are visitor number {type(self).hits}")


def fresh_container(servlet, uri="/page"):
    container = ServletContainer()
    container.register(uri, servlet)
    return container


class TestCookieHazard:
    def request(self, user):
        return HttpRequest("GET", "/page", cookies={"user": user})

    def test_naive_cache_serves_wrong_identity(self):
        container = fresh_container(CookieGreeting())
        awc = AutoWebCache()
        awc.install([CookieGreeting])
        try:
            alice = container.handle(self.request("alice"))
            bob = container.handle(self.request("bob"))
            # The cache key is URI+params only: bob gets alice's page.
            assert alice.body == "hello alice"
            assert bob.body == "hello alice"  # broken, as the paper warns
        finally:
            awc.uninstall()

    def test_mitigation_mark_uncacheable(self):
        container = fresh_container(CookieGreeting())
        semantics = SemanticsRegistry().mark_uncacheable("/page")
        awc = AutoWebCache(semantics=semantics)
        awc.install([CookieGreeting])
        try:
            alice = container.handle(self.request("alice"))
            bob = container.handle(self.request("bob"))
            assert alice.body == "hello alice"
            assert bob.body == "hello bob"
        finally:
            awc.uninstall()

    def test_mitigation_predicate_on_cookie(self):
        container = fresh_container(CookieGreeting())
        semantics = SemanticsRegistry().mark_uncacheable_when(
            lambda request: bool(request.cookies)
        )
        awc = AutoWebCache(semantics=semantics)
        awc.install([CookieGreeting])
        try:
            bob = container.handle(self.request("bob"))
            assert bob.body == "hello bob"
            # Cookie-less requests remain cacheable.
            guest1 = container.handle(HttpRequest("GET", "/page"))
            guest2 = container.handle(HttpRequest("GET", "/page"))
            assert guest1.body == guest2.body == "hello guest"
            assert awc.stats.hits == 1
        finally:
            awc.uninstall()


class TestHiddenStateHazard:
    def test_naive_cache_freezes_counter(self):
        CounterPage.hits = 0
        container = fresh_container(CounterPage())
        awc = AutoWebCache()
        awc.install([CounterPage])
        try:
            first = container.get("/page")
            second = container.get("/page")
            assert first.body == second.body  # frozen: hazard realised
            assert CounterPage.hits == 1  # servlet ran only once
        finally:
            awc.uninstall()

    def test_mitigation_mark_uncacheable(self):
        CounterPage.hits = 0
        container = fresh_container(CounterPage())
        semantics = SemanticsRegistry().mark_uncacheable("/page")
        awc = AutoWebCache(semantics=semantics)
        awc.install([CounterPage])
        try:
            first = container.get("/page")
            second = container.get("/page")
            assert first.body != second.body
            assert awc.stats.uncacheable == 2
        finally:
            awc.uninstall()


class TestMultipleSourcesHazard:
    """'Multiple Sources of Dynamism': a page aggregating the database
    with a non-database source (a file-like store the JDBC aspect never
    sees) goes stale on the unseen source -- and stays fresh once the
    extra source is also routed through a captured interface."""

    def test_unseen_source_goes_stale(self):
        db = make_notes_db()
        connection = connect(db)
        sidecar = {"motd": "welcome"}

        class Mixed(HttpServlet):
            def do_get(self, request, response):
                statement = connection.create_statement()
                count = statement.execute_query(
                    "SELECT COUNT(*) FROM notes"
                ).scalar()
                response.write(f"{sidecar['motd']}|{count} notes")

        container = fresh_container(Mixed())
        awc = AutoWebCache()
        awc.install([Mixed])
        try:
            container.get("/page")
            sidecar["motd"] = "changed"  # flows through no interface
            page = container.get("/page")
            assert "welcome" in page.body  # stale: hazard realised
            # The documented remedy: the external-entity API.
            awc.cache.invalidate_key("/page")
            page = container.get("/page")
            assert "changed" in page.body
        finally:
            awc.uninstall()
