"""Fragment (ESI-style) caching: per-fragment entries, dependencies,
containment dooming, holes, and assembly hygiene.

The servlets below declare fragments/holes over the notes schema
(tests/conftest.py); the fragment aspect is woven by AutoWebCache with
zero caching code in the servlets, exactly like the page path.
"""

from __future__ import annotations

import itertools

from repro.cache.autowebcache import AutoWebCache
from repro.cache.fragments import FragmentContainment, fragment_key
from repro.cluster import ClusterAutoWebCache
from repro.apps.html import fragment, hole
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet

from tests.conftest import AddNoteServlet, ScoreNoteServlet, make_notes_db

TOPIC_FRAGMENT = "notes/topic"
PAGE_KEY = "/topic_page?topic=a"
FRAG_KEY = fragment_key(TOPIC_FRAGMENT, {"topic": "a"})


class TopicPageServlet(HttpServlet):
    """A page embedding the topic listing as a declared fragment."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        topic = request.get_parameter("topic")
        response.write(f"<h1>{topic}</h1>")
        fragment(
            response,
            TOPIC_FRAGMENT,
            {"topic": topic},
            lambda: self._write_notes(response, topic),
        )
        response.write("<footer/>")

    def _write_notes(self, response, topic: str) -> None:
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT id, body, score FROM notes WHERE topic = ? ORDER BY id",
            (topic,),
        )
        while result.next():
            response.write(f"<p>{result.get('id')}:{result.get('body')}</p>")


class StampedTopicServlet(HttpServlet):
    """Hidden state (a per-request stamp) as a hole beside a fragment."""

    def __init__(self, connection) -> None:
        self._connection = connection
        self._ticks = itertools.count()

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        topic = request.get_parameter("topic")
        hole(
            response,
            "stamp",
            lambda: response.write(f"<stamp>{next(self._ticks)}</stamp>"),
        )
        fragment(
            response,
            TOPIC_FRAGMENT,
            {"topic": topic},
            lambda: self._write_notes(response, topic),
        )

    def _write_notes(self, response, topic: str) -> None:
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT id, body, score FROM notes WHERE topic = ? ORDER BY id",
            (topic,),
        )
        while result.next():
            response.write(f"<p>{result.get('id')}:{result.get('body')}</p>")


class CookieFragmentServlet(HttpServlet):
    """Sets a per-request cookie and header while filling a fragment."""

    def __init__(self, connection) -> None:
        self._connection = connection
        self._serial = itertools.count()

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        serial = next(self._serial)
        hole(
            response,
            "visit",
            lambda: self._stamp_request(response, serial),
        )
        fragment(
            response,
            "notes/greeting",
            {},
            lambda: self._write_greeting(response),
        )

    def _stamp_request(self, response, serial: int) -> None:
        response.add_cookie("visit", str(serial))
        response.set_header("X-Request-Serial", str(serial))
        response.write(f"<visit>{serial}</visit>")

    def _write_greeting(self, response) -> None:
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT name FROM topics WHERE id = ?", (1,)
        )
        name = result.scalar() if result.next() else "world"
        response.write(f"<p>hello {name}</p>")


class DigestServlet(HttpServlet):
    """Nested fragments: a digest fragment embedding per-topic ones."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        response.write("<digest>")
        fragment(
            response, "notes/digest", {}, lambda: self._write_digest(response)
        )
        response.write("</digest>")

    def _write_digest(self, response) -> None:
        for topic in ("a", "b"):
            fragment(
                response,
                TOPIC_FRAGMENT,
                {"topic": topic},
                lambda topic=topic: self._write_notes(response, topic),
            )

    def _write_notes(self, response, topic: str) -> None:
        statement = self._connection.create_statement()
        result = statement.execute_query(
            "SELECT id, body FROM notes WHERE topic = ? ORDER BY id",
            (topic,),
        )
        while result.next():
            response.write(f"<p>{topic}:{result.get('id')}</p>")


def build_fragment_app():
    db = make_notes_db()
    connection = connect(db)
    container = ServletContainer()
    container.register("/topic_page", TopicPageServlet(connection))
    container.register("/stamped", StampedTopicServlet(connection))
    container.register("/cookie_page", CookieFragmentServlet(connection))
    container.register("/digest", DigestServlet(connection))
    container.register("/add", AddNoteServlet(connection))
    container.register("/score", ScoreNoteServlet(connection))
    return db, container


def add(container, note_id, topic, body, score=0):
    response = container.post(
        "/add",
        {"id": str(note_id), "topic": topic, "body": body, "score": str(score)},
    )
    assert response.status == 200


def install(awc, container):
    awc.install(container.servlet_classes)
    return awc


class TestFragmentEntries:
    def test_page_and_fragment_both_cached(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            container.get("/topic_page", {"topic": "a"})
            assert PAGE_KEY in awc.cache.pages
            assert FRAG_KEY in awc.cache.pages
            page = awc.cache.pages.peek(PAGE_KEY)
            assert page.fragments == (FRAG_KEY,)
            # The fragment's dependencies belong to the fragment entry,
            # not the page's own read set.
            frag = awc.cache.pages.peek(FRAG_KEY)
            assert len(frag.dependencies) == 1
            assert page.dependencies == ()
        finally:
            awc.uninstall()

    def test_repeat_request_hits_the_whole_page(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            first = container.get("/topic_page", {"topic": "a"})
            second = container.get("/topic_page", {"topic": "a"})
            assert first.body == second.body
            assert awc.stats.hits == 1  # the page; fragment untouched
        finally:
            awc.uninstall()

    def test_fragment_hit_spares_sql_on_page_rebuild(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            first = container.get("/topic_page", {"topic": "a"})
            # Doom only the page: its body is gone but the fragment
            # entry survives (containment edges point upward only).
            awc.cache.invalidate_key(PAGE_KEY)
            assert FRAG_KEY in awc.cache.pages
            queries_before = db.stats.queries
            rebuilt = container.get("/topic_page", {"topic": "a"})
            assert rebuilt.body == first.body
            assert db.stats.queries == queries_before  # fragment hit
            # The rebuild re-cached the page with its containment edge.
            assert awc.cache.pages.peek(PAGE_KEY).fragments == (FRAG_KEY,)
        finally:
            awc.uninstall()

    def test_write_dooms_fragment_and_containing_page(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "old")
            container.get("/topic_page", {"topic": "a"})
            add(container, 2, "a", "new")
            assert FRAG_KEY not in awc.cache.pages
            assert PAGE_KEY not in awc.cache.pages
            page = container.get("/topic_page", {"topic": "a"})
            assert "new" in page.body
        finally:
            awc.uninstall()

    def test_unrelated_write_preserves_fragment_and_page(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            container.get("/topic_page", {"topic": "a"})
            add(container, 2, "b", "y")
            container.get("/topic_page", {"topic": "a"})
            assert awc.stats.hits == 1
            assert awc.stats.misses_invalidation == 0
        finally:
            awc.uninstall()


class TestHoles:
    def test_hole_page_not_cached_but_fragment_is(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            first = container.get("/stamped", {"topic": "a"})
            second = container.get("/stamped", {"topic": "a"})
            # The hole recomputes: the two bodies differ in the stamp...
            assert "<stamp>0</stamp>" in first.body
            assert "<stamp>1</stamp>" in second.body
            # ...while the fragment text served from cache.
            assert awc.stats.hits == 1
            assert awc.stats.hole_skips == 2  # page skipped twice
            assert "/stamped?topic=a" not in awc.cache.pages
            assert FRAG_KEY in awc.cache.pages
        finally:
            awc.uninstall()

    def test_fragment_shared_between_pages(self):
        """The same fragment fills once and serves both the cacheable
        page and the hole-bearing one."""
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            container.get("/topic_page", {"topic": "a"})
            queries_before = db.stats.queries
            response = container.get("/stamped", {"topic": "a"})
            assert "<p>1:x</p>" in response.body
            assert db.stats.queries == queries_before
        finally:
            awc.uninstall()


class TestAssemblyHygiene:
    def test_cached_fragment_does_not_leak_headers_or_cookies(self):
        """PR-1's header rule at fragment granularity: per-request
        cookies/headers set while *filling* a fragment must not replay
        into later responses assembled from the cached text."""
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            db.update("INSERT INTO topics (id, name) VALUES (?, ?)", (1, "t"))
            first = container.get("/cookie_page")
            second = container.get("/cookie_page")
            assert "hello t" in second.body  # fragment text served
            assert awc.stats.hits == 1
            # Each response carries only its *own* request's stamp.
            assert first.cookies == {"visit": "0"}
            assert second.cookies == {"visit": "1"}
            assert first.headers["X-Request-Serial"] == "0"
            assert second.headers["X-Request-Serial"] == "1"
        finally:
            awc.uninstall()

    def test_wsgi_content_length_tracks_assembled_body(self):
        """Content-Length is derived from the final assembled body, so
        hole substitution of a different length stays consistent."""
        from repro.web.wsgi import WsgiAdapter

        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        adapter = WsgiAdapter(container)
        try:
            add(container, 1, "a", "x")
            import io

            def call():
                captured = {}

                def start_response(status, headers):
                    captured["headers"] = dict(headers)

                chunks = adapter(
                    {
                        "REQUEST_METHOD": "GET",
                        "PATH_INFO": "/stamped",
                        "QUERY_STRING": "topic=a",
                        "wsgi.input": io.BytesIO(b""),
                    },
                    start_response,
                )
                captured["body"] = b"".join(chunks)
                return captured

            responses = [call() for _ in range(11)]
            for captured in responses:
                declared = int(captured["headers"]["Content-Length"])
                assert declared == len(captured["body"])
            # The stamp grew from 1 to 2 digits across the run, so the
            # assertion above covered two distinct assembled lengths.
            lengths = {len(c["body"]) for c in responses}
            assert len(lengths) == 2
        finally:
            awc.uninstall()


class TestNestedFragments:
    def test_nested_fragments_cache_at_every_level(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            add(container, 2, "b", "y")
            container.get("/digest")
            digest_key = fragment_key("notes/digest", {})
            leaf_a = fragment_key(TOPIC_FRAGMENT, {"topic": "a"})
            leaf_b = fragment_key(TOPIC_FRAGMENT, {"topic": "b"})
            for key in ("/digest", digest_key, leaf_a, leaf_b):
                assert key in awc.cache.pages, key
            # The digest entry embeds the leaves; the page embeds the
            # digest (direct edges only -- the closure walks the rest).
            assert set(awc.cache.pages.peek(digest_key).fragments) == {
                leaf_a, leaf_b,
            }
            assert awc.cache.pages.peek("/digest").fragments == (digest_key,)
            # The digest's dependencies absorb the leaves' (a hit must
            # hand the parent the full transitive guard set)...
            assert len(awc.cache.pages.peek(digest_key).dependencies) == 2
            # ...while the page entry stays lean.
            assert awc.cache.pages.peek("/digest").dependencies == ()
        finally:
            awc.uninstall()

    def test_leaf_doom_climbs_the_containment_closure(self):
        db, container = build_fragment_app()
        awc = install(AutoWebCache(), container)
        try:
            add(container, 1, "a", "x")
            add(container, 2, "b", "y")
            container.get("/digest")
            add(container, 3, "a", "z")  # dooms leaf a transitively
            digest_key = fragment_key("notes/digest", {})
            leaf_a = fragment_key(TOPIC_FRAGMENT, {"topic": "a"})
            leaf_b = fragment_key(TOPIC_FRAGMENT, {"topic": "b"})
            assert leaf_a not in awc.cache.pages
            assert digest_key not in awc.cache.pages
            assert "/digest" not in awc.cache.pages
            assert leaf_b in awc.cache.pages  # untouched sibling
            rebuilt = container.get("/digest")
            assert "<p>a:3</p>" in rebuilt.body
        finally:
            awc.uninstall()


class TestContainmentTable:
    def test_register_replaces_previous_edges(self):
        table = FragmentContainment()
        table.register("page", ["f1", "f2"])
        table.register("page", ["f2", "f3"])
        assert table.containing({"f1"}) == set()
        assert table.containing({"f3"}) == {"page"}

    def test_containing_is_transitive_and_excludes_inputs(self):
        table = FragmentContainment()
        table.register("outer", ["leaf"])
        table.register("page", ["outer"])
        assert table.containing({"leaf"}) == {"outer", "page"}
        assert table.containing({"outer"}) == {"page"}

    def test_forget_drops_edges(self):
        table = FragmentContainment()
        table.register("page", ["leaf"])
        table.forget("page")
        assert table.containing({"leaf"}) == set()


class TestClusterFragments:
    def test_fragment_doom_crosses_shards(self):
        """The fragment and its containing page hash to arbitrary
        nodes; a write must doom both cluster-wide."""
        db, container = build_fragment_app()
        awc = ClusterAutoWebCache(n_nodes=4)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "old")
            container.get("/topic_page", {"topic": "a"})
            # Both entries exist somewhere in the cluster, and the
            # router-level containment table has the edge.
            assert awc.router.fragments.containing({FRAG_KEY}) == {PAGE_KEY}
            add(container, 2, "a", "new")
            for node in awc.router.nodes():
                assert PAGE_KEY not in node.cache.pages
                assert FRAG_KEY not in node.cache.pages
            page = container.get("/topic_page", {"topic": "a"})
            assert "new" in page.body
        finally:
            awc.uninstall()

    def test_cluster_hole_page_fragment_hits(self):
        db, container = build_fragment_app()
        awc = ClusterAutoWebCache(n_nodes=4)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            first = container.get("/stamped", {"topic": "a"})
            second = container.get("/stamped", {"topic": "a"})
            assert "<stamp>0</stamp>" in first.body
            assert "<stamp>1</stamp>" in second.body
            assert awc.stats.hits == 1
            assert awc.stats.hole_skips == 2
        finally:
            awc.uninstall()

    def test_cluster_nested_doom_crosses_shards(self):
        db, container = build_fragment_app()
        awc = ClusterAutoWebCache(n_nodes=4)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            add(container, 2, "b", "y")
            container.get("/digest")
            add(container, 3, "a", "z")
            digest_key = fragment_key("notes/digest", {})
            leaf_b = fragment_key(TOPIC_FRAGMENT, {"topic": "b"})
            present = set()
            for node in awc.router.nodes():
                present.update(node.cache.pages.keys())
            assert digest_key not in present
            assert "/digest" not in present
            assert leaf_b in present
            rebuilt = container.get("/digest")
            assert "<p>a:3</p>" in rebuilt.body
        finally:
            awc.uninstall()
