"""DB-API (JDBC analogue) driver tests."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema, connect
from repro.errors import DatabaseError


@pytest.fixture
def conn():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("id", ColumnType.INT), Column("v", ColumnType.VARCHAR)],
            primary_key="id",
        )
    )
    connection = connect(db)
    statement = connection.create_statement()
    statement.execute_update("INSERT INTO t (id, v) VALUES (1, 'a')")
    statement.execute_update("INSERT INTO t (id, v) VALUES (2, 'b')")
    return connection


def test_result_set_iteration(conn):
    rs = conn.create_statement().execute_query("SELECT id, v FROM t ORDER BY id")
    assert len(rs) == 2
    assert rs.next()
    assert rs.get("id") == 1
    assert rs.get_at(1) == "a"
    assert rs.next()
    assert rs.get("v") == "b"
    assert not rs.next()


def test_get_before_next_raises(conn):
    rs = conn.create_statement().execute_query("SELECT id FROM t")
    with pytest.raises(DatabaseError):
        rs.get("id")


def test_get_unknown_column_raises(conn):
    rs = conn.create_statement().execute_query("SELECT id FROM t")
    rs.next()
    with pytest.raises(DatabaseError):
        rs.get("ghost")


def test_scalar_and_all_dicts(conn):
    statement = conn.create_statement()
    assert statement.execute_query("SELECT COUNT(*) FROM t").scalar() == 2
    dicts = statement.execute_query("SELECT id, v FROM t ORDER BY id").all_dicts()
    assert dicts == [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}]


def test_scalar_empty_result(conn):
    rs = conn.create_statement().execute_query("SELECT id FROM t WHERE id = 99")
    assert rs.scalar() is None


def test_execute_update_returns_affected(conn):
    statement = conn.create_statement()
    assert statement.execute_update("UPDATE t SET v = 'z' WHERE id = 1") == 1
    assert statement.execute_update("DELETE FROM t") == 2


def test_generated_key(conn):
    statement = conn.create_statement()
    statement.execute_update("INSERT INTO t (v) VALUES ('auto')")
    assert statement.generated_key() == 3


def test_execute_update_rejects_select(conn):
    with pytest.raises(DatabaseError):
        conn.create_statement().execute_update("SELECT id FROM t")


def test_closed_connection_rejects_statements(conn):
    conn.close()
    assert conn.closed
    with pytest.raises(DatabaseError):
        conn.create_statement()


def test_connection_context_manager():
    db = Database()
    with connect(db) as connection:
        assert not connection.closed
    assert connection.closed


def test_columns_exposed(conn):
    rs = conn.create_statement().execute_query("SELECT id AS k, v FROM t")
    assert rs.columns == ["k", "v"]
