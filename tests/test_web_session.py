"""SessionManager bounds: idle expiry, LRU cap, thread safety.

Regression tests for the unbounded-growth bug: every cookieless
request used to allocate a session forever.
"""

from __future__ import annotations

import threading

import pytest

from repro.web.http import HttpRequest, HttpResponse
from repro.web.session import SESSION_COOKIE, SessionManager


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def cookieless() -> HttpRequest:
    return HttpRequest("GET", "/x")


def with_cookie(session_id: str) -> HttpRequest:
    return HttpRequest("GET", "/x", cookies={SESSION_COOKIE: session_id})


def test_max_sessions_cap_evicts_lru():
    manager = SessionManager(max_sessions=3, idle_timeout=None)
    sessions = [
        manager.resolve(cookieless(), HttpResponse()) for _ in range(3)
    ]
    # Touch the first so the second becomes the LRU victim.
    manager.resolve(with_cookie(sessions[0].session_id), HttpResponse())
    manager.resolve(cookieless(), HttpResponse())  # 4th -> evicts LRU
    assert len(manager) == 3
    assert manager.evicted_count == 1
    # The touched session survived; the stale one was reclaimed.
    survivor = manager.resolve(
        with_cookie(sessions[0].session_id), HttpResponse()
    )
    assert survivor is sessions[0]
    replaced = manager.resolve(
        with_cookie(sessions[1].session_id), HttpResponse()
    )
    assert replaced is not sessions[1]


def test_idle_sessions_expire():
    clock = FakeClock()
    manager = SessionManager(max_sessions=None, idle_timeout=60.0, clock=clock)
    old = manager.resolve(cookieless(), HttpResponse())
    clock.now += 30
    fresh = manager.resolve(cookieless(), HttpResponse())
    clock.now += 45  # old idle 75s (> 60), fresh idle 45s (< 60)
    manager.resolve(cookieless(), HttpResponse())
    assert manager.expired_count == 1
    assert manager.resolve(
        with_cookie(fresh.session_id), HttpResponse()
    ) is fresh
    assert manager.resolve(
        with_cookie(old.session_id), HttpResponse()
    ) is not old


def test_touch_refreshes_idle_clock():
    clock = FakeClock()
    manager = SessionManager(idle_timeout=60.0, clock=clock)
    session = manager.resolve(cookieless(), HttpResponse())
    for _ in range(5):
        clock.now += 50  # always under the timeout between touches
        resolved = manager.resolve(
            with_cookie(session.session_id), HttpResponse()
        )
        assert resolved is session
    assert manager.expired_count == 0


def test_cookieless_barrage_stays_bounded():
    """The original leak: unbounded growth from cookieless clients."""
    manager = SessionManager(max_sessions=50, idle_timeout=None)
    for _ in range(1000):
        manager.resolve(cookieless(), HttpResponse())
    assert len(manager) == 50
    assert manager.evicted_count == 950


def test_unbounded_configuration_still_available():
    manager = SessionManager(max_sessions=None, idle_timeout=None)
    for _ in range(100):
        manager.resolve(cookieless(), HttpResponse())
    assert len(manager) == 100


@pytest.mark.concurrency
def test_concurrent_resolves_unique_ids_and_capped():
    manager = SessionManager(max_sessions=64, idle_timeout=None)
    n_threads = 8
    per_thread = 100
    barrier = threading.Barrier(n_threads)
    ids: list[str] = []
    lock = threading.Lock()
    errors: list[Exception] = []

    def worker() -> None:
        local: list[str] = []
        try:
            barrier.wait(timeout=5)
            for _ in range(per_thread):
                session = manager.resolve(cookieless(), HttpResponse())
                local.append(session.session_id)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        with lock:
            ids.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert errors == []
    assert len(ids) == n_threads * per_thread
    assert len(set(ids)) == len(ids)  # no two clients share a new id
    assert len(manager) == 64


@pytest.mark.concurrency
def test_concurrent_shared_session_attribute_updates():
    manager = SessionManager()
    session = manager.resolve(cookieless(), HttpResponse())
    session.set("counter", 0)
    lock = threading.Lock()

    def worker() -> None:
        for _ in range(200):
            with lock:  # app-level atomicity; manager-level safety below
                session.set("counter", session.get("counter") + 1)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert session.get("counter") == 800
