"""Byte-bounded page cache tests (size-aware eviction)."""

import pytest

from repro.cache.autowebcache import AutoWebCache
from repro.cache.entry import PageEntry
from repro.cache.page_cache import PageCache
from repro.cache.replacement import LruPolicy, make_policy, UnboundedPolicy
from repro.errors import CacheError

from tests.conftest import build_notes_app


def entry(key, size):
    return PageEntry(key=key, body="x" * size)


class TestBytePageCache:
    def test_total_bytes_tracked(self):
        cache = PageCache(LruPolicy(None), max_bytes=100)
        cache.insert(entry("/a", 30))
        cache.insert(entry("/b", 40))
        assert cache.total_bytes == 70

    def test_eviction_when_bytes_exceeded(self):
        cache = PageCache(LruPolicy(None), max_bytes=100)
        cache.insert(entry("/a", 60))
        cache.insert(entry("/b", 30))
        evicted = cache.insert(entry("/c", 50))
        assert [e.key for e in evicted] == ["/a"]  # LRU order
        assert cache.total_bytes == 80
        _e, reason = cache.lookup("/a", now=0.0)
        assert reason == "capacity"

    def test_access_refreshes_byte_lru(self):
        cache = PageCache(LruPolicy(None), max_bytes=100)
        cache.insert(entry("/a", 60))
        cache.insert(entry("/b", 30))
        cache.lookup("/a", now=0.0)  # /a is now most recent
        evicted = cache.insert(entry("/c", 20))  # 110 bytes > 100
        assert [e.key for e in evicted] == ["/b"]
        assert cache.total_bytes == 80

    def test_invalidation_releases_bytes(self):
        cache = PageCache(LruPolicy(None), max_bytes=100)
        cache.insert(entry("/a", 60))
        cache.invalidate("/a")
        assert cache.total_bytes == 0

    def test_refresh_replaces_size(self):
        cache = PageCache(LruPolicy(None), max_bytes=100)
        cache.insert(entry("/a", 60))
        cache.insert(entry("/a", 10))
        assert cache.total_bytes == 10

    def test_oversized_sole_entry_not_evicted(self):
        cache = PageCache(LruPolicy(None), max_bytes=10)
        cache.insert(entry("/huge", 100))
        assert len(cache) == 1  # sole fresh entry is kept

    def test_count_and_byte_bounds_compose(self):
        cache = PageCache(LruPolicy(2), max_bytes=1000)
        cache.insert(entry("/a", 10))
        cache.insert(entry("/b", 10))
        evicted = cache.insert(entry("/c", 10))
        assert [e.key for e in evicted] == ["/a"]  # count bound triggered first


class TestFactoryOrderOnly:
    def test_order_only_unbounded_becomes_lru(self):
        policy = make_policy("unbounded", None, order_only=True)
        assert isinstance(policy, LruPolicy)
        assert policy.capacity is None

    def test_plain_unbounded_unchanged(self):
        assert isinstance(make_policy("unbounded", None), UnboundedPolicy)

    def test_order_only_respects_name(self):
        from repro.cache.replacement import FifoPolicy

        assert isinstance(
            make_policy("fifo", None, order_only=True), FifoPolicy
        )

    def test_capacityless_policy_never_count_evicts(self):
        policy = LruPolicy(None)
        for i in range(100):
            policy.on_insert(f"k{i}")
        assert not policy.needs_eviction

    def test_zero_capacity_still_rejected(self):
        with pytest.raises(CacheError):
            LruPolicy(0)


class TestEndToEndByteBound:
    def test_awc_with_byte_budget(self):
        db, container = build_notes_app()
        awc = AutoWebCache(max_bytes=200)
        awc.install(container.servlet_classes)
        try:
            for i in range(6):
                container.post(
                    "/add",
                    {"id": str(i), "topic": f"t{i}", "body": "b" * 30},
                )
            for i in range(6):
                container.get("/view_topic", {"topic": f"t{i}"})
            assert awc.cache.pages.total_bytes <= 200
            assert awc.stats.evictions > 0
            # The cache still serves correct content for live entries.
            key_topic = "t5"
            page = container.get("/view_topic", {"topic": key_topic})
            assert key_topic in page.body
        finally:
            awc.uninstall()
