"""Validate the simulator's queueing core against queueing theory.

The response-time curves of Figures 13-15 are produced by the
:class:`~repro.sim.resources.Resource` FCFS multi-server station.  If
that station is wrong, every curve is wrong, so we check it against
closed-form results:

- M/M/1: mean sojourn time  E[T] = 1 / (mu - lambda);
- M/M/c: Erlang-C waiting probability gives
  E[T] = 1/mu + C(c, lambda/mu) / (c*mu - lambda);
- M/D/1 (deterministic service): mean wait is *half* the M/M/1 wait,
  checking that the station does not inject spurious variability.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.resources import Resource


def simulate(workers, arrival_rate, service_fn, n_jobs, seed):
    rng = random.Random(seed)
    resource = Resource("station", workers)
    clock = 0.0
    total_sojourn = 0.0
    for _ in range(n_jobs):
        clock += rng.expovariate(arrival_rate)
        completion = resource.schedule(clock, service_fn(rng))
        total_sojourn += completion - clock
    return total_sojourn / n_jobs


def erlang_c(c: int, offered: float) -> float:
    """Probability of waiting in an M/M/c queue (offered = lambda/mu)."""
    inverse = sum(offered**k / math.factorial(k) for k in range(c))
    top = offered**c / (math.factorial(c) * (1 - offered / c))
    return top / (inverse + top)


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_mm1_sojourn_time(rho):
    mu = 1.0  # service rate; E[S] = 1
    lam = rho * mu
    measured = simulate(
        workers=1,
        arrival_rate=lam,
        service_fn=lambda rng: rng.expovariate(mu),
        n_jobs=60000,
        seed=1,
    )
    expected = 1.0 / (mu - lam)
    assert measured == pytest.approx(expected, rel=0.08)


@pytest.mark.parametrize("workers,rho", [(2, 0.6), (4, 0.7)])
def test_mmc_sojourn_time(workers, rho):
    mu = 1.0
    lam = rho * workers * mu
    measured = simulate(
        workers=workers,
        arrival_rate=lam,
        service_fn=lambda rng: rng.expovariate(mu),
        n_jobs=60000,
        seed=2,
    )
    offered = lam / mu
    wait = erlang_c(workers, offered) / (workers * mu - lam)
    expected = 1.0 / mu + wait
    assert measured == pytest.approx(expected, rel=0.10)


def test_md1_wait_is_half_of_mm1():
    lam, service = 0.7, 1.0  # rho = 0.7, deterministic service
    measured = simulate(
        workers=1,
        arrival_rate=lam,
        service_fn=lambda rng: service,
        n_jobs=60000,
        seed=3,
    )
    rho = lam * service
    expected = service + rho * service / (2 * (1 - rho))  # Pollaczek-Khinchine
    assert measured == pytest.approx(expected, rel=0.08)


def test_underload_approaches_pure_service_time():
    measured = simulate(
        workers=1,
        arrival_rate=0.01,
        service_fn=lambda rng: 1.0,
        n_jobs=2000,
        seed=4,
    )
    assert measured == pytest.approx(1.0, rel=0.02)
