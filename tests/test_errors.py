"""Exception hierarchy tests: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SqlError,
    errors.SqlLexError,
    errors.SqlParseError,
    errors.DatabaseError,
    errors.SchemaError,
    errors.IntegrityError,
    errors.ExecutionError,
    errors.WebError,
    errors.ServletError,
    errors.RoutingError,
    errors.AopError,
    errors.PointcutSyntaxError,
    errors.WeavingError,
    errors.CacheError,
    errors.ConsistencyError,
    errors.WorkloadError,
    errors.SimulationError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_lex_error_carries_position():
    error = errors.SqlLexError("bad char", 17)
    assert error.position == 17
    assert "17" in str(error)


def test_parse_error_position_optional():
    with_pos = errors.SqlParseError("oops", 4)
    without = errors.SqlParseError("oops")
    assert "offset 4" in str(with_pos)
    assert "offset" not in str(without)


def test_subsystem_grouping():
    assert issubclass(errors.SqlLexError, errors.SqlError)
    assert issubclass(errors.IntegrityError, errors.DatabaseError)
    assert issubclass(errors.RoutingError, errors.WebError)
    assert issubclass(errors.WeavingError, errors.AopError)
    assert issubclass(errors.ConsistencyError, errors.CacheError)


def test_catching_base_catches_everything():
    for exc in ALL_ERRORS:
        try:
            if exc is errors.SqlLexError:
                raise exc("x", 0)
            raise exc("x")
        except errors.ReproError:
            pass
