"""Servlet container and session tests."""

import pytest

from repro.errors import RoutingError, WebError
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import HttpServlet, require_parameter
from repro.web.session import SESSION_COOKIE, SessionManager


class Echo(HttpServlet):
    def __init__(self):
        self.initialised = False
        self.destroyed = False

    def init(self):
        self.initialised = True

    def destroy(self):
        self.destroyed = True

    def do_get(self, request, response):
        response.write(f"echo:{request.get_parameter('msg', '')}")

    def do_post(self, request, response):
        response.write("posted")


class Boom(HttpServlet):
    def do_get(self, request, response):
        raise RuntimeError("kaput")


class GetOnly(HttpServlet):
    def do_get(self, request, response):
        response.write("ok")


def test_register_and_dispatch():
    container = ServletContainer()
    servlet = Echo()
    container.register("/echo", servlet)
    assert servlet.initialised
    response = container.get("/echo", {"msg": "hi"})
    assert response.body == "echo:hi"
    assert container.request_count == 1


def test_post_dispatch():
    container = ServletContainer()
    container.register("/echo", Echo())
    assert container.post("/echo").body == "posted"


def test_unknown_uri_raises():
    container = ServletContainer()
    with pytest.raises(RoutingError):
        container.get("/ghost")


def test_duplicate_mapping_rejected():
    container = ServletContainer()
    container.register("/echo", Echo())
    with pytest.raises(WebError):
        container.register("/echo", Echo())


def test_servlet_exception_becomes_500():
    container = ServletContainer()
    container.register("/boom", Boom())
    response = container.get("/boom")
    assert response.status == 500
    assert "kaput" in response.body
    assert container.error_count == 1


def test_unsupported_method_is_405():
    container = ServletContainer()
    container.register("/get_only", GetOnly())
    assert container.post("/get_only").status == 405
    response = container.handle(HttpRequest("PUT", "/get_only"))
    assert response.status == 405


def test_servlet_classes_deduplicated():
    container = ServletContainer()
    container.register("/a", Echo())
    container.register("/b", Echo())
    container.register("/c", Boom())
    assert sorted(c.__name__ for c in container.servlet_classes) == ["Boom", "Echo"]


def test_observer_invoked():
    container = ServletContainer()
    container.register("/echo", Echo())
    seen = []
    container.observer = lambda req, resp: seen.append((req.uri, resp.status))
    container.get("/echo")
    assert seen == [("/echo", 200)]


def test_shutdown_runs_destroy():
    container = ServletContainer()
    servlet = Echo()
    container.register("/echo", servlet)
    container.shutdown()
    assert servlet.destroyed


def test_require_parameter():
    request = HttpRequest("GET", "/x", {"a": "1"})
    assert require_parameter(request, "a") == "1"
    from repro.errors import ServletError

    with pytest.raises(ServletError):
        require_parameter(request, "missing")


class TestSessions:
    def test_new_session_sets_cookie(self):
        manager = SessionManager()
        request = HttpRequest("GET", "/x")
        response = HttpResponse()
        session = manager.resolve(request, response)
        assert SESSION_COOKIE in response.cookies
        assert response.cookies[SESSION_COOKIE] == session.session_id

    def test_existing_session_resolved(self):
        manager = SessionManager()
        first = manager.resolve(HttpRequest("GET", "/x"), HttpResponse())
        first.set("user", 42)
        request = HttpRequest(
            "GET", "/x", cookies={SESSION_COOKIE: first.session_id}
        )
        again = manager.resolve(request, HttpResponse())
        assert again is first
        assert again.get("user") == 42

    def test_unknown_cookie_creates_fresh_session(self):
        manager = SessionManager()
        request = HttpRequest("GET", "/x", cookies={SESSION_COOKIE: "bogus"})
        session = manager.resolve(request, HttpResponse())
        assert session.session_id != "bogus"

    def test_session_attributes(self):
        manager = SessionManager()
        session = manager.resolve(HttpRequest("GET", "/x"), HttpResponse())
        session.set("k", "v")
        assert session.get("k") == "v"
        session.remove("k")
        assert session.get("k") is None
        session.set("k2", 1)
        session.invalidate()
        assert session.get("k2") is None

    def test_container_with_sessions(self):
        container = ServletContainer(use_sessions=True)

        class WhoAmI(HttpServlet):
            def do_get(self, request, response):
                response.write(request.session.session_id)

        container.register("/who", WhoAmI())
        response = container.get("/who")
        assert response.body in response.cookies.values()
