"""CLI tests (quick settings only)."""

import pytest

from repro.harness.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "fig13" in out and "codesize" in out


def test_codesize(capsys):
    code, out = run_cli(capsys, "codesize")
    assert code == 0
    assert "cache-library" in out
    assert "weaving-rules" in out


def test_run_cell_no_cache(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "rubis", "--clients", "20",
        "--warmup", "5", "--duration", "15", "--no-cache",
    )
    assert code == 0
    assert "No cache" in out
    assert "mean response" in out


def test_run_cell_with_options(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "rubis", "--clients", "20",
        "--warmup", "5", "--duration", "15",
        "--policy", "where-match", "--replacement", "lru",
        "--capacity", "50",
    )
    assert code == 0
    assert "AutoWebCache" in out


def test_run_weak_ttl(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "rubis", "--clients", "10",
        "--warmup", "5", "--duration", "10", "--weak-ttl", "30",
    )
    assert code == 0
    assert "Weak TTL 30s" in out


def test_fig13_small(capsys):
    code, out = run_cli(
        capsys, "fig13", "--clients", "20", "--warmup", "5", "--duration", "15"
    )
    assert code == 0
    assert "RUBiS" in out and "hit rate" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_bad_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--policy", "psychic"])


def test_obs_summary(capsys):
    code, out = run_cli(capsys, "obs", "--requests", "8")
    assert code == 0
    assert "Woven phase latency" in out
    assert "servlet" in out and "sql.query" in out
    assert "Invalidation protocol work" in out
    assert "pair_analyses" in out


def test_obs_metrics_view(capsys):
    code, out = run_cli(capsys, "obs", "--requests", "4", "--view", "metrics")
    assert code == 0
    assert "repro_phase_latency_seconds_bucket" in out
    assert 'le="+Inf"' in out


def test_obs_traces_view_cluster(capsys):
    code, out = run_cli(
        capsys, "obs", "--requests", "4", "--nodes", "3",
        "--view", "traces", "--traces", "20",
    )
    assert code == 0
    assert "servlet POST /rubis/store_bid" in out
    assert "bus.publish" in out
    assert out.count("bus.deliver") >= 3


def test_obs_rejects_bad_view(capsys):
    with pytest.raises(SystemExit):
        main(["obs", "--view", "bogus"])


def test_hitpath_small(capsys):
    code, out = run_cli(
        capsys, "hitpath", "--connections", "2", "--iterations", "10",
        "--pages", "2",
    )
    assert code == 0
    assert "speedup" in out
    assert "asyncio" in out and "threaded" in out


def test_list_mentions_hitpath(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "hitpath" in out
