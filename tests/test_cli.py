"""CLI tests (quick settings only)."""

import pytest

from repro.harness.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "fig13" in out and "codesize" in out


def test_codesize(capsys):
    code, out = run_cli(capsys, "codesize")
    assert code == 0
    assert "cache-library" in out
    assert "weaving-rules" in out


def test_run_cell_no_cache(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "rubis", "--clients", "20",
        "--warmup", "5", "--duration", "15", "--no-cache",
    )
    assert code == 0
    assert "No cache" in out
    assert "mean response" in out


def test_run_cell_with_options(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "rubis", "--clients", "20",
        "--warmup", "5", "--duration", "15",
        "--policy", "where-match", "--replacement", "lru",
        "--capacity", "50",
    )
    assert code == 0
    assert "AutoWebCache" in out


def test_run_weak_ttl(capsys):
    code, out = run_cli(
        capsys, "run", "--app", "rubis", "--clients", "10",
        "--warmup", "5", "--duration", "10", "--weak-ttl", "30",
    )
    assert code == 0
    assert "Weak TTL 30s" in out


def test_fig13_small(capsys):
    code, out = run_cli(
        capsys, "fig13", "--clients", "20", "--warmup", "5", "--duration", "15"
    )
    assert code == 0
    assert "RUBiS" in out and "hit rate" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_bad_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--policy", "psychic"])
