"""Public-API sanity: every advertised name imports and is distinct."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.aop",
    "repro.sql",
    "repro.db",
    "repro.web",
    "repro.cache",
    "repro.workload",
    "repro.sim",
    "repro.harness",
]


def test_version_string():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should define __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_no_duplicate_exports_within_package():
    for package in PACKAGES:
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported)), package


def test_top_level_convenience_imports():
    from repro.cache import AutoWebCache, InvalidationPolicy
    from repro.db import Database, connect
    from repro.web import HttpServlet, ServletContainer

    assert callable(connect)
    assert InvalidationPolicy.EXTRA_QUERY.value == "extra-query"
    del AutoWebCache, Database, HttpServlet, ServletContainer


def test_every_module_has_docstring():
    import os

    root = os.path.dirname(os.path.abspath(repro.__file__))
    missing = []
    for dirpath, _dirs, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, root)
            module = "repro." + relative[:-3].replace(os.sep, ".")
            module = module.replace(".__init__", "")
            loaded = importlib.import_module(module)
            if not (loaded.__doc__ or "").strip():
                missing.append(module)
    assert missing == [], f"modules without docstrings: {missing}"
