"""StatementInfo extraction tests: read/write sets and bindings."""

from repro.sql.analysis_info import extract_info
from repro.sql.lineage import Catalog
from repro.sql.parser import parse_statement
from repro.sql.template import templateize


def info_of(sql, params=None, catalog=None):
    template, _values = templateize(sql, params)
    return extract_info(template.statement, catalog)


class TestSelectInfo:
    def test_tables_and_columns(self):
        info = info_of("SELECT a, b FROM t WHERE c = 1")
        assert info.tables == {"t"}
        assert ("t", "a") in info.columns_read
        assert ("t", "c") in info.columns_read
        assert info.is_read

    def test_star_projection(self):
        info = info_of("SELECT * FROM t")
        assert ("t", "*") in info.columns_read

    def test_where_equality_bindings(self):
        info = info_of("SELECT a FROM t WHERE b = 5 AND c = 'x'")
        bindings = {(b.table, b.column, b.value_index) for b in info.equality_bindings}
        assert ("t", "b", 0) in bindings
        assert ("t", "c", 1) in bindings
        assert info.where_is_conjunctive_equality

    def test_or_breaks_conjunctivity(self):
        info = info_of("SELECT a FROM t WHERE b = 1 OR c = 2")
        assert not info.where_is_conjunctive_equality

    def test_inequality_breaks_conjunctivity(self):
        info = info_of("SELECT a FROM t WHERE b > 1")
        assert not info.where_is_conjunctive_equality

    def test_join_predicate_keeps_conjunctivity(self):
        info = info_of(
            "SELECT t.a FROM t, u WHERE t.id = u.tid AND t.b = 4"
        )
        assert info.where_is_conjunctive_equality
        assert info.binding_for("t", "b") is not None

    def test_multi_table_unqualified_column_is_unknown(self):
        info = info_of("SELECT a FROM t, u WHERE t.id = u.id")
        assert ("?", "a") in info.columns_read

    def test_alias_resolution(self):
        info = info_of("SELECT x.a FROM t AS x WHERE x.b = 1")
        assert info.tables == {"t"}
        assert ("t", "a") in info.columns_read
        assert info.binding_for("t", "b") is not None

    def test_order_group_columns_counted_as_read(self):
        info = info_of("SELECT a FROM t GROUP BY b ORDER BY a")
        assert ("t", "b") in info.columns_read


class TestWriteInfo:
    def test_update_written_columns(self):
        info = info_of("UPDATE t SET a = 1, b = 2 WHERE id = 3")
        assert info.columns_written == {("t", "a"), ("t", "b")}
        assert info.write_table == "t"
        assert info.is_write

    def test_update_where_binding(self):
        info = info_of("UPDATE t SET a = 1 WHERE id = 3")
        binding = info.binding_for("t", "id")
        assert binding is not None
        # values = (1, 3): the WHERE value is index 1
        assert binding.value_index == 1

    def test_update_set_binding_also_recorded(self):
        info = info_of("UPDATE t SET a = 1 WHERE id = 3")
        assert info.binding_for("t", "a") is not None

    def test_insert_bindings(self):
        info = info_of("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert info.columns_written == {("t", "a"), ("t", "b")}
        assert info.binding_for("t", "a").value_index == 0
        assert info.binding_for("t", "b").value_index == 1

    def test_delete_writes_star(self):
        info = info_of("DELETE FROM t WHERE id = 9")
        assert info.columns_written == {("t", "*")}
        assert info.binding_for("t", "id") is not None

    def test_delete_without_where(self):
        info = info_of("DELETE FROM t")
        assert info.where_columns == frozenset()
        assert info.where_is_conjunctive_equality

    def test_binding_resolve_literal(self):
        info = extract_info(parse_statement("UPDATE t SET a = 2 WHERE b = 7"))
        binding = info.binding_for("t", "b")
        assert binding.resolve(()) == 7

    def test_binding_resolve_placeholder(self):
        info = info_of("UPDATE t SET a = ? WHERE b = ?", (2, 7))
        binding = info.binding_for("t", "b")
        assert binding.resolve((2, 7)) == 7


class TestSchemaAwareResolution:
    """Unqualified columns in multi-table reads: the catalog attributes
    a column to its unique owner, and refuses when ownership is shared
    or any referenced table's schema is unknown."""

    CATALOG = Catalog(
        {
            "items": ("id", "name", "price"),
            "bids": ("id", "item_id", "amount"),
        }
    )

    def test_unique_owner_resolves(self):
        info = info_of(
            "SELECT amount FROM items, bids WHERE items.id = bids.item_id",
            catalog=self.CATALOG,
        )
        assert ("bids", "amount") in info.columns_read
        assert ("?", "amount") not in info.columns_read

    def test_shared_column_stays_unknown(self):
        # "id" exists on both tables: attribution would be a guess.
        info = info_of(
            "SELECT id FROM items, bids WHERE items.name = bids.amount",
            catalog=self.CATALOG,
        )
        assert ("?", "id") in info.columns_read
        assert ("items", "id") not in info.columns_read
        assert ("bids", "id") not in info.columns_read

    def test_unknown_table_blocks_resolution(self):
        # "amount" is unique among *known* schemas, but the mystery
        # table might also have it: no claim without full knowledge.
        info = info_of(
            "SELECT amount FROM bids, mystery WHERE bids.id = mystery.bid_id",
            catalog=self.CATALOG,
        )
        assert ("?", "amount") in info.columns_read

    def test_column_on_no_known_table_stays_unknown(self):
        info = info_of(
            "SELECT ghost FROM items, bids WHERE items.id = bids.item_id",
            catalog=self.CATALOG,
        )
        assert ("?", "ghost") in info.columns_read

    def test_single_table_needs_no_catalog(self):
        info = info_of("SELECT amount FROM bids")
        assert ("bids", "amount") in info.columns_read

    def test_alias_does_not_confuse_resolution(self):
        info = info_of(
            "SELECT amount FROM items AS i, bids AS b WHERE i.id = b.item_id",
            catalog=self.CATALOG,
        )
        assert ("bids", "amount") in info.columns_read
