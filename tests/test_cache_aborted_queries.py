"""Aborted-query handling (Section 4.2).

"If a read query is aborted during the formation of response for a
client request, the corresponding web page is not stored in the cache.
Further, if a write query does not complete successfully, it is not
considered for determining the cache entries affected."
"""

from repro.cache.autowebcache import AutoWebCache
from repro.db import connect
from repro.web.container import ServletContainer
from repro.web.servlet import HttpServlet

from tests.conftest import make_notes_db


class FlakyReadServlet(HttpServlet):
    """Issues a good query, then (optionally) a failing one."""

    fail = True

    def __init__(self, connection):
        self._connection = connection

    def do_get(self, request, response):
        statement = self._connection.create_statement()
        result = statement.execute_query("SELECT COUNT(*) FROM notes")
        response.write(f"count={result.scalar()}")
        if type(self).fail:
            try:
                statement.execute_query("SELECT ghost_column FROM notes")
            except Exception:
                response.write(";query failed, degraded page")


class FlakyWriteServlet(HttpServlet):
    """First write succeeds, second write fails."""

    def __init__(self, connection):
        self._connection = connection

    def do_post(self, request, response):
        statement = self._connection.create_statement()
        statement.execute_update(
            "UPDATE notes SET score = score + 1 WHERE topic = 'a'"
        )
        try:
            statement.execute_update("UPDATE no_such_table SET x = 1")
        except Exception:
            response.write("second write failed;")
        response.write("done")


def build_flaky_app():
    db = make_notes_db()
    db.update(
        "INSERT INTO notes (id, topic, body, score) VALUES (1, 'a', 'x', 0)"
    )
    connection = connect(db)
    container = ServletContainer()
    container.register("/flaky_read", FlakyReadServlet(connection))
    container.register("/flaky_write", FlakyWriteServlet(connection))
    return db, container


def test_aborted_read_query_prevents_caching():
    db, container = build_flaky_app()
    FlakyReadServlet.fail = True
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        response = container.get("/flaky_read")
        assert response.status == 200  # servlet degraded gracefully
        assert "degraded" in response.body
        # ...but the page must NOT have been cached.
        assert len(awc.cache) == 0
        container.get("/flaky_read")
        assert awc.stats.hits == 0
    finally:
        awc.uninstall()


def test_healthy_read_still_cached():
    db, container = build_flaky_app()
    FlakyReadServlet.fail = False
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        container.get("/flaky_read")
        container.get("/flaky_read")
        assert awc.stats.hits == 1
    finally:
        awc.uninstall()


def test_failed_write_not_considered_for_invalidation():
    """The failed second write must not poison the invalidation pass,
    and the successful first write must still invalidate."""
    db, container = build_flaky_app()
    FlakyReadServlet.fail = False
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        container.get("/flaky_read")  # caches count=1 page
        response = container.post("/flaky_write")
        assert "second write failed" in response.body
        # The successful score update touches notes: the cached page
        # reading COUNT(*) FROM notes depends on the notes table, but
        # only columns score were written and COUNT(*) reads '*': the
        # conservative reader means invalidation is expected.
        page = container.get("/flaky_read")
        assert page.status == 200
        # The run completed without consistency errors and the write
        # request processed exactly one write instance.
        assert awc.stats.write_requests == 1
    finally:
        awc.uninstall()


def test_error_status_pages_never_cached():
    class Exploding(HttpServlet):
        def do_get(self, request, response):
            raise RuntimeError("boom")

    db, container = build_flaky_app()
    container.register("/explode", Exploding())
    awc = AutoWebCache()
    awc.install(container.servlet_classes)
    try:
        response = container.get("/explode")
        assert response.status == 500
        assert len(awc.cache) == 0
        # And the failure did not leak a dangling request context.
        assert awc.collector.current() is None
    finally:
        awc.uninstall()
