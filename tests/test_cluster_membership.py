"""Gossip membership: heartbeats, suspicion, convergence, router hooks."""

import pytest

from repro.cluster.membership import (
    ALIVE,
    DEAD,
    ROUTER,
    SUSPECT,
    GossipMembership,
    Transition,
)
from repro.errors import ClusterError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def build(n=3, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("suspicion_timeout", 2.0)
    kwargs.setdefault("death_timeout", 6.0)
    membership = GossipMembership(clock=clock, seed=1, **kwargs)
    for i in range(n):
        membership.register(f"node-{i}")
    return membership, clock


def run_protocol(membership, clock, rounds, dt=0.5, beat=()):
    """Advance time in ``dt`` steps, beating the given nodes each round."""
    transitions = []
    for _ in range(rounds):
        clock.advance(dt)
        for name in beat:
            membership.beat(name)
        transitions.extend(membership.step())
    return transitions


class TestLifecycle:
    def test_register_and_members(self):
        membership, _clock = build(3)
        assert membership.members() == ["node-0", "node-1", "node-2"]

    def test_duplicate_register_rejected(self):
        membership, _clock = build(1)
        with pytest.raises(ClusterError, match="already"):
            membership.register("node-0")

    def test_death_timeout_must_exceed_suspicion(self):
        with pytest.raises(ClusterError, match="exceed"):
            GossipMembership(suspicion_timeout=5.0, death_timeout=5.0)

    def test_forget_removes_everywhere(self):
        membership, _clock = build(3)
        membership.forget("node-1")
        assert membership.members() == ["node-0", "node-2"]
        with pytest.raises(ClusterError, match="no view"):
            membership.state("node-1")

    def test_all_alive_initially(self):
        membership, _clock = build(3)
        for name in membership.members():
            assert membership.state(name) == ALIVE
            assert membership.is_alive(name)


class TestFailureDetection:
    def test_beating_nodes_stay_alive(self):
        membership, clock = build(3)
        everyone = membership.members()
        transitions = run_protocol(membership, clock, rounds=30, beat=everyone)
        assert transitions == []
        assert all(membership.state(n) == ALIVE for n in everyone)

    def test_silenced_node_becomes_suspect_then_dead(self):
        membership, clock = build(3)
        membership.silence("node-2")
        live = ["node-0", "node-1"]
        transitions = run_protocol(membership, clock, rounds=20, beat=live)
        states = [
            t.state
            for t in transitions
            if t.observer == ROUTER and t.peer == "node-2"
        ]
        assert states == [SUSPECT, DEAD]
        assert membership.state("node-2") == DEAD
        assert not membership.is_alive("node-2")
        # The survivors never accuse each other.
        assert membership.state("node-0") == ALIVE
        assert membership.state("node-1") == ALIVE

    def test_suspect_revived_by_late_heartbeat(self):
        membership, clock = build(2)
        # node-1 goes quiet long enough to be suspected, but not dead.
        transitions = run_protocol(
            membership, clock, rounds=5, beat=["node-0"]
        )
        assert (
            Transition(ROUTER, "node-1", SUSPECT) in transitions
        )
        assert membership.state("node-1") == SUSPECT
        assert membership.is_alive("node-1")  # SUSPECT still routes
        # It comes back: the counter advance clears the suspicion.
        revived = run_protocol(
            membership, clock, rounds=3, beat=["node-0", "node-1"]
        )
        assert membership.state("node-1") == ALIVE
        assert Transition(ROUTER, "node-1", DEAD) not in revived

    def test_dead_is_sticky_until_reregistered(self):
        membership, clock = build(2)
        membership.silence("node-1")
        run_protocol(membership, clock, rounds=20, beat=["node-0"])
        assert membership.state("node-1") == DEAD
        # A rejoin through the router resets the verdict.
        membership.register("node-1")
        assert membership.state("node-1") == ALIVE

    def test_detector_outage_does_not_kill_beating_nodes(self):
        # The sweep must count silence observed *while stepping*: if
        # the caller stops ticking for longer than both timeouts, the
        # first tick back would otherwise see every row's age past
        # death_timeout and declare healthy, beating peers DEAD before
        # their fresh counters could gossip anywhere.
        membership, clock = build(3)
        everyone = membership.members()
        run_protocol(membership, clock, rounds=4, beat=everyone)
        clock.advance(60.0)  # detector outage, nodes still healthy
        transitions = run_protocol(
            membership, clock, rounds=6, beat=everyone
        )
        assert transitions == []
        assert all(membership.state(n) == ALIVE for n in everyone)

    def test_first_step_long_after_registration_kills_nobody(self):
        # Same hazard at t=0: registration happens at construction,
        # but a live deployment's first tick may come much later.
        # Observation starts at the first step, not at registration.
        membership, clock = build(3)
        everyone = membership.members()
        clock.advance(60.0)
        transitions = run_protocol(
            membership, clock, rounds=6, beat=everyone
        )
        assert transitions == []
        assert all(membership.state(n) == ALIVE for n in everyone)

    def test_death_during_outage_detected_after_resume(self):
        # The outage credit restarts timers, it does not grant
        # amnesty: a peer that died while the detector was paused is
        # still caught within death_timeout of resumed stepping.
        membership, clock = build(3)
        everyone = membership.members()
        run_protocol(membership, clock, rounds=4, beat=everyone)
        membership.silence("node-2")
        clock.advance(60.0)
        resumed_at = clock.now
        live = ["node-0", "node-1"]
        death_at = None
        for _ in range(40):
            clock.advance(0.5)
            for name in live:
                membership.beat(name)
            for transition in membership.step():
                if (
                    transition.observer == ROUTER
                    and transition.peer == "node-2"
                    and transition.state == DEAD
                ):
                    death_at = clock.now
            if death_at is not None:
                break
        assert death_at is not None
        assert death_at - resumed_at <= 6.0 + 1.0
        assert membership.state("node-0") == ALIVE
        assert membership.state("node-1") == ALIVE

    def test_detection_latency_bounded_by_timeouts(self):
        membership, clock = build(4, suspicion_timeout=2.0, death_timeout=6.0)
        membership.silence("node-3")
        silence_started = clock.now
        live = ["node-0", "node-1", "node-2"]
        death_at = None
        for _ in range(40):
            clock.advance(0.5)
            for name in live:
                membership.beat(name)
            for transition in membership.step():
                if (
                    transition.observer == ROUTER
                    and transition.peer == "node-3"
                    and transition.state == DEAD
                ):
                    death_at = clock.now
            if death_at is not None:
                break
        assert death_at is not None
        # Never before the configured timeout; within it plus one round.
        assert death_at - silence_started >= 6.0
        assert death_at - silence_started <= 6.0 + 0.5


class TestGossipDissemination:
    def test_counters_spread_epidemically(self):
        membership, clock = build(5)
        everyone = membership.members()
        run_protocol(membership, clock, rounds=10, beat=everyone, dt=0.2)
        # Every node's view of every peer has a non-zero counter: the
        # only path for that knowledge is the gossip merge.
        for observer in everyone:
            table = membership.snapshot(observer)
            for peer, view in table.items():
                if peer != observer:
                    assert view["counter"] > 0, (observer, peer)

    def test_per_observer_views_are_independent(self):
        membership, clock = build(3)
        membership.silence("node-2")
        run_protocol(membership, clock, rounds=20, beat=["node-0", "node-1"])
        # Node observers reach their own verdicts about the dead peer.
        for observer in ("node-0", "node-1"):
            assert membership.snapshot(observer)["node-2"]["state"] in (
                SUSPECT,
                DEAD,
            )

    def test_deterministic_given_seed_and_clock(self):
        def run():
            membership, clock = build(4)
            membership.silence("node-3")
            return run_protocol(
                membership, clock, rounds=20, beat=["node-0", "node-1", "node-2"]
            )

        assert run() == run()

    def test_snapshot_shape(self):
        membership, clock = build(2)
        clock.advance(1.5)
        table = membership.snapshot()
        assert set(table) == {"node-0", "node-1"}
        for view in table.values():
            assert view["state"] == ALIVE
            assert view["counter"] == 0
            assert view["silence_seconds"] == pytest.approx(1.5)
