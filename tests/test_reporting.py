"""Reporting helpers: tables and ASCII charts."""

from repro.harness.reporting import render_chart, render_series, render_table


class TestTable:
    def test_column_alignment(self):
        text = render_table("T", ["col", "x"], [["long value", 1], ["a", 22]])
        lines = text.splitlines()
        # Header and body columns line up.
        header_idx = lines[2].index("x")
        assert lines[4][header_idx - 1] == " "

    def test_floats_formatted(self):
        assert "3.14" in render_table("T", ["v"], [[3.14159]])

    def test_series(self):
        assert "42" in render_series("S", [(1, 42)])


class TestChart:
    def series(self):
        return {
            "a": [(0.0, 1.0), (10.0, 5.0)],
            "b": [(0.0, 2.0), (10.0, 3.0)],
        }

    def test_contains_markers_and_legend(self):
        text = render_chart("C", self.series())
        assert "o=a" in text and "x=b" in text
        assert text.count("o") >= 2

    def test_extremes_on_border_rows(self):
        text = render_chart("C", self.series(), height=8)
        lines = text.splitlines()
        # y max labelled at the top row, y min at the bottom data row.
        assert "5" in lines[2]
        assert any("1" in line for line in lines[-4:])

    def test_log_scale_marker(self):
        text = render_chart("C", self.series(), log_y=True)
        assert "(log y)" in text

    def test_empty_series(self):
        assert "(no data)" in render_chart("C", {"a": []})

    def test_single_point(self):
        text = render_chart("C", {"a": [(5.0, 5.0)]})
        assert "o" in text

    def test_log_scale_orders_points(self):
        text = render_chart(
            "C", {"a": [(0, 1.0), (1, 10.0), (2, 100.0)]}, log_y=True, height=9
        )
        lines = [line for line in text.splitlines() if "|" in line]
        rows_with_marker = [i for i, line in enumerate(lines) if "o" in line]
        # Log scale spaces decades evenly: three distinct rows.
        assert len(rows_with_marker) == 3
        gaps = [b - a for a, b in zip(rows_with_marker, rows_with_marker[1:])]
        assert gaps[0] == gaps[1]


class TestProtocolCounters:
    def snapshot(self):
        return {
            "pair_analyses": 12,
            "templates_skipped_by_index": 30,
            "instances_skipped_by_index": 44,
            "extra_queries": 3,
            "hits": 9,
        }

    def test_single_node_snapshot_renders_all_counters(self):
        from repro.harness.reporting import (
            PROTOCOL_COUNTERS,
            render_protocol_counters,
        )

        text = render_protocol_counters("Protocol", self.snapshot())
        for counter in PROTOCOL_COUNTERS:
            assert counter in text
        assert "12" in text and "44" in text
        # writes_deduped is bus-level; absent from a cache snapshot.
        assert "writes_deduped" in text

    def test_cluster_snapshot_pulls_bus_counters(self):
        from repro.harness.reporting import render_protocol_counters

        cluster = {
            "cluster": self.snapshot(),
            "nodes": [],
            "bus": {"writes_deduped": 7, "seq": 5},
        }
        text = render_protocol_counters("Protocol", cluster)
        lines = [l for l in text.splitlines() if l.startswith("writes_deduped")]
        assert lines and "7" in lines[0]


class TestHistogramSummary:
    def test_renders_percentile_columns(self):
        from repro.harness.reporting import render_histogram_summary
        from repro.obs import MetricsHub

        hub = MetricsHub()
        for _ in range(20):
            hub.observe("servlet", "/view_item", 0.004)
        hub.observe("servlet", "/view_item", 0.2)
        text = render_histogram_summary("Latency", hub)
        assert "p50 ms" in text and "p99 ms" in text
        assert "servlet" in text and "/view_item" in text
        assert "21" in text  # count column

    def test_empty_hub(self):
        from repro.harness.reporting import render_histogram_summary
        from repro.obs import MetricsHub

        assert "no samples" in render_histogram_summary("L", MetricsHub())
