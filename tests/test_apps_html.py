"""HTML helper tests."""

from repro.apps.html import begin_page, end_page, write_list, write_table
from repro.web.http import HttpResponse


def test_begin_end_page():
    response = HttpResponse()
    begin_page(response, "My Title")
    end_page(response)
    body = response.body
    assert body.startswith("<html>")
    assert "<title>My Title</title>" in body
    assert "<h1>My Title</h1>" in body
    assert body.endswith("</body></html>")


def test_write_table():
    response = HttpResponse()
    write_table(response, ["a", "b"], [[1, 2], ["x", "y"]])
    body = response.body
    assert "<th>a</th>" in body and "<th>b</th>" in body
    assert "<td>1</td>" in body and "<td>y</td>" in body
    assert body.count("<tr>") == 3


def test_write_table_empty_rows():
    response = HttpResponse()
    write_table(response, ["only"], [])
    assert response.body.count("<tr>") == 1


def test_write_list():
    response = HttpResponse()
    write_list(response, ["one", 2])
    assert response.body == "<ul><li>one</li><li>2</li></ul>"
