"""Cost-model calibration tests: the published constants make sense."""

from repro.sim.costs import CostModel, RequestWork, RUBIS_COST_MODEL, TPCW_COST_MODEL


def typical_read(cache_enabled=False):
    return RequestWork(
        queries=3, rows_examined=40, bytes_out=3000, cache_enabled=cache_enabled
    )


def test_tpcw_charges_more_per_row_than_rubis():
    # The TPC-W dataset is scaled down far more aggressively, so each
    # synthetic row must stand for more work (see EXPERIMENTS.md).
    assert TPCW_COST_MODEL.db_per_row > RUBIS_COST_MODEL.db_per_row


def test_hit_demand_is_order_of_magnitude_below_miss():
    for model in (RUBIS_COST_MODEL, TPCW_COST_MODEL):
        hit = RequestWork(cache_hit=True, cache_enabled=True)
        app_hit, db_hit = model.demands(hit)
        app_miss, db_miss = model.demands(typical_read(cache_enabled=True))
        assert app_hit * 5 < app_miss
        assert db_hit == 0.0 and db_miss > 0.0


def test_lookup_overhead_small_relative_to_generation():
    # The paper: forced-miss is indistinguishable from no-cache at the
    # millisecond scale.  The model must agree: lookup cost under 5%
    # of a typical page generation.
    for model in (RUBIS_COST_MODEL, TPCW_COST_MODEL):
        plain, _ = model.demands(typical_read(cache_enabled=False))
        with_cache, _ = model.demands(typical_read(cache_enabled=True))
        overhead = with_cache - plain
        assert overhead < 0.05 * plain


def test_write_invalidation_work_scales_with_tests():
    model = CostModel()
    few = RequestWork(updates=2, intersection_tests=10, cache_enabled=True,
                      is_write=True)
    many = RequestWork(updates=2, intersection_tests=1000, cache_enabled=True,
                       is_write=True)
    assert model.demands(many)[0] > model.demands(few)[0]


def test_demands_are_nonnegative_and_finite():
    for model in (RUBIS_COST_MODEL, TPCW_COST_MODEL, CostModel()):
        for work in (
            RequestWork(),
            RequestWork(cache_hit=True, cache_enabled=True),
            typical_read(),
            RequestWork(updates=5, rows_examined=10_000, bytes_out=100_000),
        ):
            app, db = model.demands(work)
            assert app >= 0.0 and db >= 0.0
            assert app < 10.0 and db < 10.0  # sane bounds, in seconds
