"""The consistency linter: golden run over the seeded badapp fixture,
clean run over the real repository, baseline semantics, and the CLI.

The golden test computes every expected line anchor by scanning the
fixture source for the violating construct, so editing the fixture
cannot silently drift the assertions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.cli import main
from repro.staticcheck import (
    RULES,
    Diagnostic,
    Report,
    default_target,
    load_baseline,
    run_check,
)
from repro.staticcheck.cacheability import check_cacheability
from repro.staticcheck.diagnostics import BaselineEntry
from repro.staticcheck.target import AppSpec, CheckTarget, repo_root
from tests.fixtures import fragapp
from tests.fixtures.badapp import badapp_target

pytestmark = pytest.mark.staticcheck

ALL_RULES = {
    "RC01", "RC02", "RC03", "RC04", "RC05", "RC06",
    "PC01", "PC02", "PC03", "LK01",
}

_FIXTURE = Path(__file__).parent / "fixtures" / "badapp"


def line_of(file: Path, needle: str, occurrence: int = 1) -> int:
    """1-based line of the Nth line containing ``needle``."""
    hits = [
        i
        for i, text in enumerate(file.read_text().splitlines(), start=1)
        if needle in text
    ]
    assert len(hits) >= occurrence, f"{needle!r} x{occurrence} not in {file}"
    return hits[occurrence - 1]


def test_rule_catalogue_is_complete():
    assert set(RULES) == ALL_RULES
    for rule in RULES.values():
        assert rule.severity in ("error", "warning")
        assert rule.hint


def test_badapp_reports_every_rule_with_correct_anchors():
    report = run_check(badapp_target(), baseline_path=None)
    assert report.exit_code == 1
    assert report.rule_ids() == ALL_RULES
    assert not report.suppressed and not report.stale_baseline

    servlets = _FIXTURE / "servlets.py"
    aspects = _FIXTURE / "aspects.py"
    locks = _FIXTURE / "locks.py"
    expected = {
        ("RC01", "AuditedCounter.do_get"):
            (servlets, "statement.execute_update(", 1),
        ("RC02", "LuckyNumber.do_get"):
            (servlets, "random.randrange", 1),
        ("RC03", "BackdoorReader.do_get"):
            (servlets, "self._database.query(", 1),
        # ScanHeavy holds the 2nd execute_query call site in the file
        # (AuditedCounter has the 1st, GoodServlet/Orphan the 3rd/4th).
        ("RC04", "ScanHeavy.do_get"):
            (servlets, "statement.execute_query(", 2),
        ("RC05", "PersonalisedCatalogue.recommendations"):
            (servlets, "self.get_session(", 1),
        # StampingWriter holds the 2nd execute_update site (AuditedCounter
        # has the 1st).
        ("RC06", "StampingWriter.do_post"):
            (servlets, "statement.execute_update(", 2),
        ("PC01", "GhostAspect.refresh_stale"):
            (aspects, "execution(RetiredServlet.do_refresh(..))", 1),
        ("PC02", "OrphanServlet.do_get"):
            (servlets, "def do_get", 6),
        ("PC03", "BadCachingAspect.cache_read|RivalAspect.shadow_read"):
            (aspects, "execution(GoodServlet.do_get(..))", 1),
    }
    by_key = {(d.rule, d.symbol): d for d in report.active}
    assert len(report.active) == 11  # one per rule, plus a second LK01
    assert len(by_key) == 11
    for (rule, symbol), (file, needle, occurrence) in expected.items():
        diagnostic = by_key[(rule, symbol)]
        relative = file.relative_to(Path(__file__).parents[1]).as_posix()
        assert diagnostic.file == relative
        assert diagnostic.line == line_of(file, needle, occurrence), (
            f"{rule} anchored at {diagnostic.file}:{diagnostic.line}, "
            f"expected the line of {needle!r}"
        )

    lk = sorted(
        (d for d in report.active if d.rule == "LK01"),
        key=lambda d: d.line,
    )
    assert [d.symbol for d in lk] == ["Vault.deposit", "BackwardsIndex.rebuild"]
    assert "badapp-till -> badapp-vault -> badapp-till" in lk[0].message
    assert lk[0].line == line_of(locks, "self.till.reconcile()")
    assert "'page-store'" in lk[1].message
    assert lk[1].line == line_of(locks, "self._mirror.push(")


def test_real_repo_is_clean_after_baseline():
    report = run_check(default_target())
    assert report.active == []
    assert report.stale_baseline == []
    assert report.exit_code == 0
    # The suppressions are the justified RC06 TPC-W bookkeeping writes;
    # the former RC04 entries earned column-disjointness plans and are
    # no longer findings at all.
    assert {d.rule for d, _entry in report.suppressed} == {"RC06"}
    # The lineage summary rides along: the catalog resolves both apps'
    # schemas and most read templates carry an exact column read set.
    assert report.lineage is not None
    assert report.lineage["catalog_tables"] > 0
    assert report.lineage["exact_lineage"] <= report.lineage["read_templates"]
    assert report.lineage["column_disjointness_plans"] > 0


def test_baseline_suppresses_by_key_and_reports_stale(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({
        "entries": [
            {
                "rule": "RC04",
                "file": "tests/fixtures/badapp/servlets.py",
                "symbol": "ScanHeavy.do_get",
                "justification": "seeded",
            },
            {
                "rule": "RC01",
                "file": "tests/fixtures/badapp/servlets.py",
                "symbol": "NoSuchServlet.do_get",
                "justification": "stale on purpose",
            },
        ]
    }))
    report = run_check(badapp_target(), baseline_path=baseline_file)
    assert report.exit_code == 1  # other findings stay active
    assert {d.rule for d, _entry in report.suppressed} == {"RC04"}
    assert [e.symbol for e in report.stale_baseline] == ["NoSuchServlet.do_get"]
    assert "RC04" not in {d.rule for d in report.active}


def test_report_build_orders_and_serialises():
    diagnostics = [
        Diagnostic(rule="LK01", file="b.py", line=9, symbol="X.y", message="m2"),
        Diagnostic(rule="RC01", file="a.py", line=3, symbol="A.b", message="m1"),
    ]
    report = Report.build(diagnostics, ())
    assert [d.file for d in report.active] == ["a.py", "b.py"]
    payload = report.to_json()
    assert payload["ok"] is False
    assert len(payload["active"]) == 2
    assert payload["active"][0]["rule"] == "RC01"
    assert payload["active"][0]["severity"] == RULES["RC01"].severity
    text = report.render_text()
    assert "a.py:3" in text and "b.py:9" in text


def test_load_baseline_missing_file(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == ()


def _fragment_target(classes, uncacheable=(), fragmented=()):
    interactions = tuple(
        (f"/frag/{cls.__name__}", cls, False) for cls in classes
    )
    return CheckTarget(
        repo_root=repo_root(),
        apps=(
            AppSpec(
                name="fragapp",
                interactions=interactions,
                uncacheable_uris=frozenset(uncacheable),
                fragmented_uris=frozenset(fragmented),
            ),
        ),
    )


def test_rc02_exempts_entropy_confined_to_holes():
    assert check_cacheability(_fragment_target([fragapp.HoleOnly])) == []


def test_rc02_fires_inside_fragment_thunks():
    diagnostics = check_cacheability(
        _fragment_target([fragapp.EntropyInFragment])
    )
    assert [d.rule for d in diagnostics] == ["RC02"]
    assert diagnostics[0].symbol == "EntropyInFragment.do_get"


def test_rc02_fragment_nested_in_hole_reenters_cacheable():
    diagnostics = check_cacheability(
        _fragment_target([fragapp.FragmentInsideHole])
    )
    assert [d.rule for d in diagnostics] == ["RC02"]


def test_rc02_helper_reached_outside_hole_is_not_confined():
    diagnostics = check_cacheability(
        _fragment_target([fragapp.EscapedHelper])
    )
    assert [d.rule for d in diagnostics] == ["RC02"]


def test_fragmented_uris_reenter_the_cacheable_surface():
    uri = "/frag/EntropyInFragment"
    hidden = check_cacheability(
        _fragment_target([fragapp.EntropyInFragment], uncacheable=[uri])
    )
    assert hidden == []  # plainly uncacheable: the read rules skip it
    fragmented = check_cacheability(
        _fragment_target(
            [fragapp.EntropyInFragment],
            uncacheable=[uri],
            fragmented=[uri],
        )
    )
    assert [d.rule for d in fragmented] == ["RC02"]


def test_registry_resolves_same_named_servlets_by_identity():
    # Both benchmarks define a ``Home`` servlet; under name lookup the
    # first registration shadowed the second, so the TPC-W Home was
    # never scanned at all.
    from repro.apps.rubis.servlets_browse import Home as RubisHome
    from repro.apps.tpcw.servlets_read import Home as TpcwHome

    registry = default_target().registry
    rubis_info = registry.info_for(RubisHome)
    tpcw_info = registry.info_for(TpcwHome)
    assert rubis_info.cls is RubisHome
    assert tpcw_info.cls is TpcwHome
    assert "rubis" in rubis_info.functions["do_get"].file
    assert "tpcw" in tpcw_info.functions["do_get"].file


def test_stale_baseline_fuzzy_matches_moved_files():
    diagnostic = Diagnostic(
        rule="RC04", file="new/place.py", line=5,
        symbol="X.do_get", message="m",
    )
    entry = BaselineEntry(
        rule="RC04", file="old/place.py",
        symbol="X.do_get", justification="j",
    )
    report = Report.build([diagnostic], (entry,))
    assert report.active == [diagnostic]
    assert report.stale_baseline == [entry]
    assert report.stale_hints[entry.key] == "new/place.py"
    text = report.render_text()
    assert "moved?" in text and "new/place.py" in text
    payload = report.to_json()
    assert payload["stale_baseline"][0]["moved_to"] == "new/place.py"


def test_stale_baseline_without_moved_match_has_no_hint():
    entry = BaselineEntry(
        rule="RC04", file="old/place.py",
        symbol="Gone.do_get", justification="j",
    )
    report = Report.build([], (entry,))
    assert report.stale_hints == {}
    assert "moved?" not in report.render_text()
    assert "moved_to" not in report.to_json()["stale_baseline"][0]


def test_cli_check_is_clean_on_repo(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "staticcheck: 0 active" in out


def test_cli_check_json_and_artifact(tmp_path, capsys):
    out_file = tmp_path / "nested" / "staticcheck.json"
    status = main(
        ["check", "--json", "--no-baseline", "--json-out", str(out_file)]
    )
    assert status == 1  # without the baseline the RC06 findings are active
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(out_file.read_text())
    assert printed == written
    assert {d["rule"] for d in printed["active"]} == {"RC06"}
    # The two TPC-W shopping-cart bookkeeping writes; the former RC04
    # templates (BestSellers' MAX(o_id), SearchResults' LIKE pair) now
    # carry column-disjointness plans and are no longer findings.
    assert len(printed["active"]) == 2
    assert printed["ok"] is False
    assert printed["lineage"]["column_disjointness_plans"] > 0
