"""Templateization unit tests (the unit of the paper's query analysis)."""

import pytest

from repro.sql import ast_nodes as ast
from repro.sql.template import QueryTemplate, templateize


def test_literals_lifted_left_to_right():
    template, values = templateize("SELECT a FROM t WHERE b = 5 AND c = 'x'")
    assert values == (5, "x")
    assert "?" in template.text
    assert "5" not in template.text


def test_literal_and_parameterised_forms_share_template():
    t1, v1 = templateize("SELECT a FROM t WHERE b = 5 AND c = 'x'")
    t2, v2 = templateize("SELECT a FROM t WHERE b = ? AND c = ?", (9, "y"))
    assert t1 == t2
    assert hash(t1) == hash(t2)
    assert v2 == (9, "y")


def test_mixed_literals_and_placeholders():
    template, values = templateize(
        "SELECT a FROM t WHERE b = 5 AND c = ? AND d = 7", ("mid",)
    )
    assert values == (5, "mid", 7)


def test_insert_values_lifted():
    template, values = templateize("INSERT INTO t (a, b) VALUES (1, 'z')")
    assert values == (1, "z")
    assert template.is_write


def test_update_set_and_where_lifted():
    template, values = templateize("UPDATE t SET a = 10 WHERE b = 20")
    assert values == (10, 20)


def test_delete_where_lifted():
    template, values = templateize("DELETE FROM t WHERE b = 3")
    assert values == (3,)


def test_null_is_structural_not_lifted():
    template, values = templateize("SELECT a FROM t WHERE b IS NULL AND c = 1")
    assert values == (1,)
    assert "NULL" in template.text


def test_limit_offset_lifted():
    template, values = templateize("SELECT a FROM t LIMIT 10 OFFSET 20")
    assert values == (10, 20)


def test_template_of_template_is_fixpoint():
    t1, v1 = templateize("SELECT a FROM t WHERE b = 5")
    t2, v2 = templateize(t1.text, v1)
    assert t1 == t2
    assert v1 == v2


def test_bind_roundtrips_values():
    template, values = templateize("SELECT a FROM t WHERE b = 5 AND c = 'x'")
    bound = template.bind(values)
    rebound_template, rebound_values = templateize(bound.unparse())
    assert rebound_template == template
    assert rebound_values == values


def test_bind_with_short_vector_raises():
    template, _values = templateize("SELECT a FROM t WHERE b = 5")
    with pytest.raises(ValueError):
        template.bind(())


def test_missing_parameter_raises():
    with pytest.raises(ValueError):
        templateize("SELECT a FROM t WHERE b = ?", ())


def test_in_list_values_lifted():
    template, values = templateize("SELECT a FROM t WHERE b IN (1, 2, 3)")
    assert values == (1, 2, 3)


def test_between_values_lifted():
    template, values = templateize("SELECT a FROM t WHERE b BETWEEN 2 AND 9")
    assert values == (2, 9)


def test_read_write_flags():
    read, _ = templateize("SELECT a FROM t")
    write, _ = templateize("DELETE FROM t")
    assert read.is_read and not read.is_write
    assert write.is_write and not write.is_read


def test_templates_usable_as_dict_keys():
    t1, _ = templateize("SELECT a FROM t WHERE b = 1")
    t2, _ = templateize("SELECT a FROM t WHERE b = 2")
    d = {t1: "x"}
    assert d[t2] == "x"  # same template text


def test_different_shapes_have_different_templates():
    t1, _ = templateize("SELECT a FROM t WHERE b = 1")
    t2, _ = templateize("SELECT a FROM t WHERE c = 1")
    assert t1 != t2
