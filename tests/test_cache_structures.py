"""Dependency table, page cache, analysis cache, and stats tests."""

import pytest

from repro.cache.analysis import QueryAnalysisEngine
from repro.cache.analysis_cache import AnalysisCache
from repro.cache.dependency import DependencyTable
from repro.cache.entry import PageEntry, QueryInstance
from repro.cache.page_cache import PageCache
from repro.cache.replacement import LruPolicy
from repro.cache.stats import CacheStats
from repro.sql.template import templateize


def read_instance(sql, params):
    template, values = templateize(sql, params)
    return QueryInstance(template, values)


@pytest.fixture
def dep_table():
    return DependencyTable()


class TestDependencyTable:
    def test_register_and_lookup(self, dep_table):
        instance = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        dep_table.register("/page1", (instance,))
        pairs = dep_table.instances_for(instance.template)
        assert pairs == [("/page1", (1,))]

    def test_multiple_pages_same_template(self, dep_table):
        i1 = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        i2 = read_instance("SELECT a FROM t WHERE b = ?", (2,))
        dep_table.register("/p1", (i1,))
        dep_table.register("/p2", (i2,))
        assert dep_table.template_count == 1
        assert len(dep_table.instances_for(i1.template)) == 2

    def test_same_page_multiple_vectors(self, dep_table):
        i1 = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        i2 = read_instance("SELECT a FROM t WHERE b = ?", (2,))
        dep_table.register("/p", (i1, i2))
        assert dep_table.registration_count == 2

    def test_unregister_removes_page(self, dep_table):
        instance = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        dep_table.register("/p", (instance,))
        dep_table.unregister("/p", (instance,))
        assert dep_table.template_count == 0
        assert dep_table.instances_for(instance.template) == []

    def test_unregister_unknown_is_noop(self, dep_table):
        instance = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        dep_table.unregister("/ghost", (instance,))

    def test_clear(self, dep_table):
        instance = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        dep_table.register("/p", (instance,))
        dep_table.clear()
        assert dep_table.read_templates() == []


class TestPageCache:
    def entry(self, key, deps=(), **kwargs):
        return PageEntry(key=key, body=f"body-{key}", dependencies=deps, **kwargs)

    def test_insert_and_hit(self):
        cache = PageCache()
        cache.insert(self.entry("/a"))
        entry, reason = cache.lookup("/a", now=0.0)
        assert entry is not None and reason == "hit"
        assert entry.hit_count == 1

    def test_cold_miss(self):
        cache = PageCache()
        entry, reason = cache.lookup("/nope", now=0.0)
        assert entry is None and reason == "cold"

    def test_invalidation_miss_reason(self):
        cache = PageCache()
        cache.insert(self.entry("/a"))
        assert cache.invalidate("/a")
        entry, reason = cache.lookup("/a", now=0.0)
        assert entry is None and reason == "invalidation"
        # The reason is consumed: a second lookup is cold again.
        _entry, reason = cache.lookup("/a", now=0.0)
        assert reason == "cold"

    def test_invalidate_absent_returns_false(self):
        cache = PageCache()
        assert not cache.invalidate("/ghost")

    def test_ttl_expiry(self):
        cache = PageCache()
        cache.insert(self.entry("/a", created_at=0.0, expires_at=30.0, semantic=True))
        entry, reason = cache.lookup("/a", now=10.0)
        assert entry is not None
        entry, reason = cache.lookup("/a", now=31.0)
        assert entry is None and reason == "expired"

    def test_dependencies_registered_and_unregistered(self):
        cache = PageCache()
        instance = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        cache.insert(self.entry("/a", deps=(instance,)))
        assert cache.dependencies.template_count == 1
        cache.invalidate("/a")
        assert cache.dependencies.template_count == 0

    def test_semantic_pages_skip_dependency_registration(self):
        cache = PageCache()
        instance = read_instance("SELECT a FROM t WHERE b = ?", (1,))
        cache.insert(
            self.entry("/a", deps=(instance,), semantic=True, expires_at=10.0)
        )
        assert cache.dependencies.template_count == 0

    def test_capacity_eviction(self):
        cache = PageCache(LruPolicy(capacity=2))
        cache.insert(self.entry("/a"))
        cache.insert(self.entry("/b"))
        evicted = cache.insert(self.entry("/c"))
        assert [e.key for e in evicted] == ["/a"]
        _entry, reason = cache.lookup("/a", now=0.0)
        assert reason == "capacity"
        assert len(cache) == 2

    def test_refresh_replaces_in_place(self):
        cache = PageCache()
        cache.insert(self.entry("/a"))
        refreshed = PageEntry(key="/a", body="new")
        cache.insert(refreshed)
        entry, reason = cache.lookup("/a", now=0.0)
        assert entry.body == "new" and reason == "hit"
        assert len(cache) == 1

    def test_clear(self):
        cache = PageCache()
        cache.insert(self.entry("/a"))
        cache.clear()
        assert len(cache) == 0
        _entry, reason = cache.lookup("/a", now=0.0)
        assert reason == "cold"

    def test_peek_does_not_touch(self):
        cache = PageCache(LruPolicy(capacity=2))
        cache.insert(self.entry("/a"))
        cache.insert(self.entry("/b"))
        cache.peek("/a")  # no recency update
        cache.insert(self.entry("/c"))
        assert "/a" not in cache


class TestAnalysisCache:
    def test_memoisation_and_stats(self):
        analysis = AnalysisCache(QueryAnalysisEngine())
        read, _ = templateize("SELECT a FROM t WHERE b = 1")
        write, _ = templateize("UPDATE t SET a = 2")
        first = analysis.analyse(read, write)
        second = analysis.analyse(read, write)
        assert first is second
        assert analysis.stats.hits == 1
        assert analysis.stats.misses == 1
        assert analysis.stats.hit_rate == 0.5
        assert analysis.entry_count == 1

    def test_growth_series(self):
        analysis = AnalysisCache(QueryAnalysisEngine())
        read, _ = templateize("SELECT a FROM t WHERE b = 1")
        for i, table in enumerate(("t", "u", "v")):
            write, _ = templateize(f"UPDATE {table} SET a = 2")
            analysis.analyse(read, write)
        assert analysis.stats.growth == [(1, 1), (2, 2), (3, 3)]

    def test_same_template_different_values_hits(self):
        analysis = AnalysisCache(QueryAnalysisEngine())
        r1, _ = templateize("SELECT a FROM t WHERE b = 1")
        r2, _ = templateize("SELECT a FROM t WHERE b = 99")
        w, _ = templateize("UPDATE t SET a = 5")
        analysis.analyse(r1, w)
        analysis.analyse(r2, w)
        assert analysis.entry_count == 1
        assert analysis.stats.hits == 1


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats()
        stats.record_hit("/a", semantic=False)
        stats.record_miss("/a", "cold")
        assert stats.hit_rate == 0.5

    def test_semantic_hits_counted(self):
        stats = CacheStats()
        stats.record_hit("/a", semantic=True)
        assert stats.semantic_hits == 1
        assert stats.hit_rate == 1.0

    def test_uncacheable_excluded_from_hit_rate(self):
        stats = CacheStats()
        stats.record_hit("/a", semantic=False)
        stats.record_uncacheable("/b")
        assert stats.hit_rate == 1.0
        assert stats.uncacheable == 1

    def test_per_type_breakdown(self):
        stats = CacheStats()
        stats.record_hit("/a", semantic=False)
        stats.record_miss("/a", "invalidation")
        stats.record_write("/w")
        a = stats.type_stats("/a")
        assert a.hits == 1 and a.misses_invalidation == 1
        assert a.reads == 2 and a.hit_rate == 0.5
        assert stats.type_stats("/w").writes == 1

    def test_unknown_miss_reason_rejected(self):
        stats = CacheStats()
        with pytest.raises(ValueError):
            stats.record_miss("/a", "mystery")

    def test_empty_rates_are_zero(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.type_stats("/a").hit_rate == 0.0
