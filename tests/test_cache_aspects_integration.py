"""End-to-end tests: caching woven into the notes mini-application.

This is the paper's core behaviour in miniature: transparent cache
checks/inserts on reads, consistency collection at the driver level,
and precise invalidation on writes -- all without a line of caching
code in the servlets (see tests/conftest.py).
"""

import pytest

from repro.cache.analysis import InvalidationPolicy
from repro.cache.autowebcache import AutoWebCache
from repro.cache.semantics import SemanticsRegistry
from repro.errors import CacheError

from tests.conftest import build_notes_app


def add(container, note_id, topic, body, score=0):
    response = container.post(
        "/add",
        {"id": str(note_id), "topic": topic, "body": body, "score": str(score)},
    )
    assert response.status == 200


class TestReadPath:
    def test_miss_then_hit_same_body(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "hello")
        first = container.get("/view_topic", {"topic": "a"})
        second = container.get("/view_topic", {"topic": "a"})
        assert first.body == second.body
        assert awc.stats.misses_cold == 1
        assert awc.stats.hits == 1

    def test_different_params_different_entries(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        add(container, 2, "b", "y")
        container.get("/view_topic", {"topic": "a"})
        container.get("/view_topic", {"topic": "b"})
        assert len(awc.cache) == 2

    def test_error_pages_not_cached(self, cached_notes_app):
        db, container, awc = cached_notes_app
        response = container.get("/view_note", {})  # missing id -> 500
        assert response.status == 500
        assert len(awc.cache) == 0

    def test_served_page_bypasses_servlet(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        container.get("/view_topic", {"topic": "a"})
        queries_before = db.stats.queries
        container.get("/view_topic", {"topic": "a"})
        assert db.stats.queries == queries_before  # no SQL on a hit


class TestWritePath:
    def test_related_write_invalidates(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "old")
        container.get("/view_topic", {"topic": "a"})
        add(container, 2, "a", "new")
        page = container.get("/view_topic", {"topic": "a"})
        assert "new" in page.body
        assert awc.stats.misses_invalidation == 1

    def test_unrelated_write_preserves_entry(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        container.get("/view_topic", {"topic": "a"})
        add(container, 2, "b", "y")  # different topic
        container.get("/view_topic", {"topic": "a"})
        assert awc.stats.hits == 1
        assert awc.stats.misses_invalidation == 0

    def test_update_invalidates_only_affected_note(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        add(container, 2, "a", "y")
        container.get("/view_note", {"id": "1"})
        container.get("/view_note", {"id": "2"})
        container.post("/score", {"id": "1", "score": "9"})
        page1 = container.get("/view_note", {"id": "1"})
        assert "|9" in page1.body
        container.get("/view_note", {"id": "2"})
        assert awc.stats.hits == 1  # note 2 survived
        assert awc.stats.misses_invalidation == 1  # note 1 did not

    def test_delete_invalidates_topic_page(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        container.get("/view_topic", {"topic": "a"})
        container.post("/delete", {"id": "1"})
        page = container.get("/view_topic", {"topic": "a"})
        assert "x" not in page.body
        assert awc.stats.misses_invalidation == 1

    def test_delete_in_other_topic_preserves_entry(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        add(container, 2, "b", "y")
        container.get("/view_topic", {"topic": "a"})
        container.post("/delete", {"id": "2"})  # in topic b
        container.get("/view_topic", {"topic": "a"})
        # The DELETE's pre-image (topic of note 2) proves disjointness.
        assert awc.stats.hits == 1


class TestPolicies:
    def test_column_only_over_invalidates(self):
        db, container = build_notes_app()
        awc = AutoWebCache(policy=InvalidationPolicy.COLUMN_ONLY)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            container.get("/view_topic", {"topic": "a"})
            add(container, 2, "b", "y")  # unrelated topic
            container.get("/view_topic", {"topic": "a"})
            assert awc.stats.misses_invalidation == 1  # false invalidation
        finally:
            awc.uninstall()

    def test_extra_query_issues_pre_image_queries(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        container.get("/view_topic", {"topic": "a"})
        before = awc.jdbc_aspect.extra_queries
        container.post("/score", {"id": "1", "score": "5"})
        assert awc.jdbc_aspect.extra_queries == before + 1

    def test_where_match_skips_pre_image_queries(self):
        db, container = build_notes_app()
        awc = AutoWebCache(policy=InvalidationPolicy.WHERE_MATCH)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            container.post("/score", {"id": "1", "score": "5"})
            assert awc.jdbc_aspect.extra_queries == 0
        finally:
            awc.uninstall()


class TestSemanticsIntegration:
    def test_uncacheable_uri_never_cached(self):
        db, container = build_notes_app()
        semantics = SemanticsRegistry().mark_uncacheable("/view_topic")
        awc = AutoWebCache(semantics=semantics)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            container.get("/view_topic", {"topic": "a"})
            container.get("/view_topic", {"topic": "a"})
            assert awc.stats.uncacheable == 2
            assert len(awc.cache) == 0
        finally:
            awc.uninstall()

    def test_ttl_window_survives_writes_then_expires(self):
        db, container = build_notes_app()
        clock = {"now": 0.0}
        semantics = SemanticsRegistry().set_ttl_window("/view_topic", 30.0)
        awc = AutoWebCache(semantics=semantics, clock=lambda: clock["now"])
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            container.get("/view_topic", {"topic": "a"})
            add(container, 2, "a", "fresh")  # would normally invalidate
            stale = container.get("/view_topic", {"topic": "a"})
            assert "fresh" not in stale.body  # stale within the window
            assert awc.stats.semantic_hits == 1
            clock["now"] = 31.0
            current = container.get("/view_topic", {"topic": "a"})
            assert "fresh" in current.body
            assert awc.stats.misses_expired == 1
        finally:
            awc.uninstall()


class TestForcedMiss:
    def test_forced_miss_mode_never_hits(self):
        db, container = build_notes_app()
        awc = AutoWebCache(forced_miss=True)
        awc.install(container.servlet_classes)
        try:
            add(container, 1, "a", "x")
            container.get("/view_topic", {"topic": "a"})
            container.get("/view_topic", {"topic": "a"})
            assert awc.stats.hits == 0
            assert awc.stats.misses_cold == 2
        finally:
            awc.uninstall()


class TestLifecycle:
    def test_double_install_rejected(self, cached_notes_app):
        _db, _container, awc = cached_notes_app
        with pytest.raises(CacheError):
            awc.install([])

    def test_uninstall_restores_no_cache_behaviour(self):
        db, container = build_notes_app()
        awc = AutoWebCache()
        awc.install(container.servlet_classes)
        add(container, 1, "a", "x")
        container.get("/view_topic", {"topic": "a"})
        awc.uninstall()
        lookups = awc.stats.lookups
        container.get("/view_topic", {"topic": "a"})
        assert awc.stats.lookups == lookups  # cache no longer consulted
        awc.uninstall()  # idempotent

    def test_context_manager(self):
        db, container = build_notes_app()
        with AutoWebCache() as awc:
            awc.install(container.servlet_classes)
            assert awc.installed
        assert not awc.installed

    def test_weave_report_covers_servlets_and_driver(self, cached_notes_app):
        _db, _container, awc = cached_notes_app
        classes = {jp.class_name for jp in awc.weave_report.join_points}
        assert "Statement" in classes
        assert "ViewTopicServlet" in classes
        assert "AddNoteServlet" in classes

    def test_external_invalidate_key(self, cached_notes_app):
        db, container, awc = cached_notes_app
        add(container, 1, "a", "x")
        container.get("/view_topic", {"topic": "a"})
        key = "/view_topic?topic=a"
        assert awc.cache.invalidate_key(key)
        assert not awc.cache.invalidate_key(key)
