"""Weaver/pointcut introspection: the surfaces the static checker
stands on, exercised directly.

- ``Weaver.join_point_surface`` must enumerate the *original* method
  objects even after weaving (the checker reads source off them);
- ``Pointcut.explain`` must say why each candidate is accepted or
  rejected, one line per sub-expression;
- the pointcut parser must reject malformed patterns with errors that
  point at the offending character.
"""

from __future__ import annotations

import pytest

from repro.aop import Aspect, around
from repro.aop.joinpoint import JoinPoint
from repro.aop.pointcut import MethodTarget, parse_pointcut
from repro.aop.weaver import Weaver
from repro.errors import PointcutSyntaxError

pytestmark = pytest.mark.staticcheck


class Servlet:
    def do_get(self, request, response):
        return "page"

    def helper(self):
        return 1


class SubServlet(Servlet):
    def do_get(self, request, response):
        return "subpage"


def target_of(cls, name: str) -> MethodTarget:
    return MethodTarget(cls=cls, method_name=name, function=vars(cls)[name])


class PassThrough(Aspect):
    @around("execution(Servlet+.do_get(..))")
    def advise(self, joinpoint: JoinPoint) -> object:
        return joinpoint.proceed()


def test_join_point_surface_lists_defined_methods():
    surface = Weaver.join_point_surface([Servlet])
    names = {mt.method_name for mt in surface}
    assert names == {"do_get", "helper"}
    assert all(mt.cls is Servlet for mt in surface)


def test_join_point_surface_unwraps_woven_methods():
    original = vars(SubServlet)["do_get"]
    weaver = Weaver().add_aspect(PassThrough())
    weaver.weave([SubServlet])
    try:
        woven = vars(SubServlet)["do_get"]
        assert woven is not original  # precondition: weaving happened
        surface = Weaver.join_point_surface([SubServlet])
        functions = {mt.method_name: mt.function for mt in surface}
        assert functions["do_get"] is original
    finally:
        weaver.unweave()


def test_explain_reports_match():
    pointcut = parse_pointcut("execution(Servlet+.do_get(..))")
    text = pointcut.explain(target_of(SubServlet, "do_get"))
    assert text == "matches: execution(Servlet+.do_get(..))"


def test_explain_reports_each_failure_reason():
    pointcut = parse_pointcut("execution(Servlet.do_post(..))")
    text = pointcut.explain(target_of(SubServlet, "do_get"))
    assert text.startswith("no match:")
    assert "method 'do_get' != pattern 'do_post'" in text
    assert "type pattern 'Servlet'" in text  # SubServlet, no '+' marker


def test_explain_renders_composite_tree():
    pointcut = parse_pointcut(
        "execution(Servlet+.do_get(..)) "
        "&& !cflowbelow(execution(Servlet+.do_get(..)))"
    )
    lines = pointcut.explain(target_of(SubServlet, "do_get")).splitlines()
    assert len(lines) > 2
    assert lines[0].startswith("matches:")
    # Children are indented below the head line.
    assert all(line.startswith("  ") for line in lines[1:])
    assert any("dynamic" in line for line in lines)


def test_parse_pointcut_passes_through_instances():
    pointcut = parse_pointcut("execution(Servlet.do_get(..))")
    assert parse_pointcut(pointcut) is pointcut


def test_parse_pointcut_rejects_non_strings():
    with pytest.raises(PointcutSyntaxError, match="got int"):
        parse_pointcut(7)


def test_parse_error_trailing_input():
    with pytest.raises(PointcutSyntaxError, match="trailing input") as err:
        parse_pointcut(
            "execution(Servlet.do_get(..)) execution(Servlet.do_post(..))"
        )
    assert "^" in str(err.value)  # caret points at the offending offset


def test_parse_error_character_class_in_method_pattern():
    with pytest.raises(
        PointcutSyntaxError, match="invalid character '\\['"
    ) as err:
        parse_pointcut("execution(Servlet.do_get[0-9](..))")
    message = str(err.value)
    assert "do_get" in message
    assert "'*' wildcard only" in message


def test_parse_error_missing_argument_list():
    with pytest.raises(PointcutSyntaxError, match="argument list"):
        parse_pointcut("execution(Servlet.do_get)")


def test_parse_accepts_subtype_marker():
    pointcut = parse_pointcut("execution(Servlet+.do_get(..))")
    assert pointcut.matches(target_of(SubServlet, "do_get"))
