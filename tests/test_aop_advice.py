"""Advice declaration and aspect introspection tests."""

from repro.aop import Aspect, Weaver, after_returning, around, before
from repro.aop.advice import AdviceKind


class Target:
    def alpha(self):
        return "a"

    def beta(self):
        return "b"


def test_one_method_many_pointcuts():
    class Multi(Aspect):
        def __init__(self):
            self.count = 0

        @before("execution(Target.alpha(..))")
        @before("execution(Target.beta(..))")
        def bump(self, jp):
            self.count += 1

    aspect = Multi()
    specs = [advice.spec for advice in aspect.advices()]
    assert len(specs) == 2
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Target])
    try:
        target = Target()
        target.alpha()
        target.beta()
        assert aspect.count == 2
    finally:
        weaver.unweave()


def test_mixed_kinds_on_one_method():
    events = []

    class Mixed(Aspect):
        @around("execution(Target.alpha(..))")
        def wrap(self, jp):
            events.append("around")
            return jp.proceed() + "!"

        @after_returning("execution(Target.alpha(..))")
        def done(self, jp):
            events.append(("after", jp.result))

    weaver = Weaver().add_aspect(Mixed())
    weaver.weave([Target])
    try:
        assert Target().alpha() == "a!"
        assert events == ["around", ("after", "a!")]
    finally:
        weaver.unweave()


def test_aspect_inheritance_collects_base_advice():
    class BaseAspect(Aspect):
        def __init__(self):
            self.seen = []

        @before("execution(Target.alpha(..))")
        def base_advice(self, jp):
            self.seen.append("base")

    class DerivedAspect(BaseAspect):
        @before("execution(Target.alpha(..))")
        def derived_advice(self, jp):
            self.seen.append("derived")

    aspect = DerivedAspect()
    names = {advice.method.__name__ for advice in aspect.advices()}
    assert names == {"base_advice", "derived_advice"}
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Target])
    try:
        Target().alpha()
        assert sorted(aspect.seen) == ["base", "derived"]
    finally:
        weaver.unweave()


def test_override_shadows_base_advice():
    class BaseAspect(Aspect):
        def __init__(self):
            self.calls = []

        @before("execution(Target.alpha(..))")
        def advice(self, jp):
            self.calls.append("base")

    class DerivedAspect(BaseAspect):
        @before("execution(Target.alpha(..))")
        def advice(self, jp):  # overrides, does not duplicate
            self.calls.append("derived")

    aspect = DerivedAspect()
    assert len(list(aspect.advices())) == 1
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Target])
    try:
        Target().alpha()
        assert aspect.calls == ["derived"]
    finally:
        weaver.unweave()


def test_advice_kind_values():
    assert AdviceKind.BEFORE.value == "before"
    assert AdviceKind.AROUND.value == "around"


def test_declaration_order_preserved_within_precedence():
    order = []

    class Ordered(Aspect):
        @before("execution(Target.alpha(..))")
        def first(self, jp):
            order.append(1)

        @before("execution(Target.alpha(..))")
        def second(self, jp):
            order.append(2)

    weaver = Weaver().add_aspect(Ordered())
    weaver.weave([Target])
    try:
        Target().alpha()
        assert order == [1, 2]
    finally:
        weaver.unweave()
