"""Query analysis engine tests.

The example pairs from Section 3.2 of the paper are encoded verbatim:
each of the three policies must accept/reject exactly as the paper
describes.
"""

import pytest

from repro.cache.analysis import InvalidationPolicy, QueryAnalysisEngine
from repro.cache.entry import QueryInstance
from repro.sql.template import templateize

COL = InvalidationPolicy.COLUMN_ONLY
WHERE = InvalidationPolicy.WHERE_MATCH
EXTRA = InvalidationPolicy.EXTRA_QUERY


@pytest.fixture
def engine():
    return QueryAnalysisEngine()


def pair_of(engine, read_sql, write_sql):
    read, _ = templateize(read_sql, (0,) * read_sql.count("?"))
    write, _ = templateize(write_sql, (0,) * write_sql.count("?"))
    return engine.analyse_pair(read, write), read, write


def instance(sql, params=None, pre_image=None):
    template, values = templateize(sql, params)
    return QueryInstance(template, values, pre_image)


class TestPairAnalysis:
    def test_disjoint_tables_no_dependency(self, engine):
        pair, *_ = pair_of(
            engine, "SELECT a FROM t WHERE b = 1", "UPDATE u SET a = 2"
        )
        assert not pair.possible

    def test_paper_policy1_intersecting_columns(self, engine):
        # "SELECT a FROM T WHERE b=X" vs "UPDATE T SET a=new_val" may
        # intersect (paper example 1a).
        pair, *_ = pair_of(
            engine, "SELECT a FROM t WHERE b = 1", "UPDATE t SET a = 9 "
        )
        assert pair.possible

    def test_paper_policy1_disjoint_columns(self, engine):
        # "SELECT a FROM T WHERE b=X" vs "UPDATE T SET c=new_val" does
        # not intersect (paper example 1b).
        pair, *_ = pair_of(
            engine, "SELECT a FROM t WHERE b = 1", "UPDATE t SET c = 9"
        )
        assert not pair.possible

    def test_update_on_where_column_is_dependency(self, engine):
        pair, *_ = pair_of(
            engine, "SELECT a FROM t WHERE b = 1", "UPDATE t SET b = 9"
        )
        assert pair.possible

    def test_delete_always_possible_on_shared_table(self, engine):
        pair, *_ = pair_of(engine, "SELECT a FROM t WHERE b = 1", "DELETE FROM t")
        assert pair.possible

    def test_star_read_depends_on_any_column(self, engine):
        pair, *_ = pair_of(
            engine, "SELECT * FROM t WHERE id = 1", "UPDATE t SET zz = 1"
        )
        assert pair.possible

    def test_insert_into_read_table(self, engine):
        pair, *_ = pair_of(
            engine,
            "SELECT a FROM t WHERE b = 1",
            "INSERT INTO t (a, b) VALUES (1, 2)",
        )
        assert pair.possible


class TestPolicy2WhereMatch:
    def test_paper_example_2a_different_values_prune(self, engine):
        # "SELECT a FROM T WHERE b=X" vs "UPDATE T SET a=v WHERE b=Y"
        # does not intersect when X != Y (paper example 2a).
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE b = ?",
        )
        w = QueryInstance(write, (9, 200))
        assert engine.intersects(pair, (100,), w, COL)  # policy 1: false positive
        assert not engine.intersects(pair, (100,), w, WHERE)
        assert not engine.intersects(pair, (100,), w, EXTRA)

    def test_same_values_intersect(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE b = ?",
        )
        w = QueryInstance(write, (9, 100))
        assert engine.intersects(pair, (100,), w, WHERE)

    def test_insert_binding_prunes(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "INSERT INTO t (a, b) VALUES (?, ?)",
        )
        assert not engine.intersects(
            pair, (1,), QueryInstance(write, (5, 2)), WHERE
        )
        assert engine.intersects(
            pair, (1,), QueryInstance(write, (5, 1)), WHERE
        )

    def test_insert_missing_column_prunes(self, engine):
        # The inserted row has NULL in the read's bound column.
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "INSERT INTO t (a) VALUES (?)",
        )
        assert not engine.intersects(pair, (1,), QueryInstance(write, (5,)), WHERE)

    def test_update_rewriting_bound_column_not_pruned_by_where(self, engine):
        # UPDATE t SET b=v WHERE c=w can move rows INTO or OUT of the
        # read's b=X set; without a pre-image nothing can be proved.
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET b = ? WHERE c = ?",
        )
        w = QueryInstance(write, (5, 7))
        assert engine.intersects(pair, (1,), w, WHERE)

    def test_non_conjunctive_read_never_pruned(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b > ?",
            "UPDATE t SET a = ? WHERE b = ?",
        )
        w = QueryInstance(write, (9, 5))
        assert engine.intersects(pair, (100,), w, WHERE)
        assert engine.intersects(pair, (100,), w, EXTRA)

    def test_non_conjunctive_write_never_pruned(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE b > ?",
        )
        w = QueryInstance(write, (9, 5))
        assert engine.intersects(pair, (100,), w, WHERE)


class TestPolicy3ExtraQuery:
    def test_paper_example_3_pre_image_decides(self, engine):
        # "SELECT a FROM T WHERE b=X" vs "UPDATE T SET a=v WHERE d=W":
        # the write does not mention b, so the extra query fetches b of
        # the updated rows; intersect iff it returns X (paper example 3).
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE d = ?",
        )
        hit = QueryInstance(write, (9, 7), pre_image=({"b": 100, "d": 7},))
        miss = QueryInstance(write, (9, 7), pre_image=({"b": 55, "d": 7},))
        assert engine.intersects(pair, (100,), hit, EXTRA)
        assert not engine.intersects(pair, (100,), miss, EXTRA)
        # WHERE_MATCH cannot decide without the pre-image: conservative.
        assert engine.intersects(pair, (100,), miss, WHERE)

    def test_missing_pre_image_is_conservative(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE d = ?",
        )
        w = QueryInstance(write, (9, 7), pre_image=None)
        assert engine.intersects(pair, (100,), w, EXTRA)

    def test_empty_pre_image_prunes(self, engine):
        # The write matched no rows at all.
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE d = ?",
        )
        w = QueryInstance(write, (9, 7), pre_image=())
        assert not engine.intersects(pair, (100,), w, EXTRA)

    def test_delete_pre_image(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "DELETE FROM t WHERE d = ?",
        )
        gone = QueryInstance(write, (7,), pre_image=({"b": 100, "d": 7},))
        unrelated = QueryInstance(write, (7,), pre_image=({"b": 1, "d": 7},))
        assert engine.intersects(pair, (100,), gone, EXTRA)
        assert not engine.intersects(pair, (100,), unrelated, EXTRA)

    def test_update_rewrite_with_pre_image_checks_both_directions(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET b = ? WHERE c = ?",
        )
        # Rows enter the read's set: new value == X.
        entering = QueryInstance(write, (100, 7), pre_image=({"b": 3, "c": 7},))
        assert engine.intersects(pair, (100,), entering, EXTRA)
        # Rows leave the read's set: old value == X.
        leaving = QueryInstance(write, (3, 7), pre_image=({"b": 100, "c": 7},))
        assert engine.intersects(pair, (100,), leaving, EXTRA)
        # Neither: prune.
        unrelated = QueryInstance(write, (3, 7), pre_image=({"b": 4, "c": 7},))
        assert not engine.intersects(pair, (100,), unrelated, EXTRA)


class TestPolicyOrdering:
    """EXTRA ⊆ WHERE ⊆ COLUMN_ONLY on a grid of instances."""

    def test_monotone_precision(self, engine):
        pair, read, write = pair_of(
            engine,
            "SELECT a FROM t WHERE b = ?",
            "UPDATE t SET a = ? WHERE b = ?",
        )
        for read_value in (1, 2, 3):
            for write_value in (1, 2, 3):
                w = QueryInstance(
                    write, (0, write_value), pre_image=({"b": write_value},)
                )
                col = engine.intersects(pair, (read_value,), w, COL)
                where = engine.intersects(pair, (read_value,), w, WHERE)
                extra = engine.intersects(pair, (read_value,), w, EXTRA)
                assert (not where) or col  # WHERE ⊆ COL
                assert (not extra) or where  # EXTRA ⊆ WHERE

    def test_info_memoised(self, engine):
        template, _ = templateize("SELECT a FROM t WHERE b = 1")
        first = engine.info(template)
        second = engine.info(template)
        assert first is second
