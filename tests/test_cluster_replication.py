"""R-way replication: write-through, failover, bounded-staleness oracle."""

import pytest

from repro.cache.external import TriggerInvalidationBridge
from repro.cluster import ClusterAutoWebCache
from repro.errors import ClusterError
from repro.web.http import HttpRequest

from tests.conftest import build_notes_app

TOPICS = [f"topic-{i}" for i in range(12)]


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def build_cluster(n_nodes=3, **kwargs):
    db, container = build_notes_app()
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("bus_pump", False)
    awc = ClusterAutoWebCache(n_nodes=n_nodes, **kwargs)
    awc.install(container.servlet_classes)
    return db, container, awc


def populate(container, topics=TOPICS):
    for i, topic in enumerate(topics):
        response = container.post(
            "/add",
            {"id": str(i + 1), "topic": topic, "body": f"b{i}", "score": "0"},
        )
        assert response.status == 200


def warm(container, topics=TOPICS):
    for topic in topics:
        assert container.get("/view_topic", {"topic": topic}).status == 200


def topic_key(topic: str) -> str:
    return HttpRequest("GET", "/view_topic", {"topic": topic}).cache_key()


class TestWriteThrough:
    def test_every_key_lives_on_its_whole_replica_set(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            for topic in TOPICS:
                key = topic_key(topic)
                holders = [
                    node.name
                    for node in awc.router.nodes()
                    if key in node.cache.pages
                ]
                assert sorted(holders) == sorted(awc.router.replica_names(key))
                assert len(holders) == 2
        finally:
            awc.uninstall()

    def test_replica_copies_are_independent_entries(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            key = topic_key(TOPICS[0])
            copies = [
                node.cache.pages.peek(key)
                for node in awc.router.nodes()
                if key in node.cache.pages
            ]
            assert len(copies) == 2
            first, second = copies
            assert first is not second
            assert first.body == second.body
            assert first.dependencies == second.dependencies
        finally:
            awc.uninstall()

    def test_copy_counters_and_accounting_exact(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            snapshot = awc.cluster_snapshot()
            copies = sum(n["replica_copies"] for n in snapshot["nodes"])
            assert copies == len(TOPICS)  # one secondary per stored page
            for node in awc.router.nodes():
                pages = node.cache.pages
                entries = pages.entries()
                assert pages.total_bytes == sum(e.size for e in entries)
        finally:
            awc.uninstall()

    def test_write_dooms_every_copy(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            key = topic_key(TOPICS[0])
            container.post("/score", {"id": "1", "score": "77"})
            for node in awc.router.nodes():
                assert key not in node.cache.pages
            page = container.get("/view_topic", {"topic": TOPICS[0]})
            assert "(77)" in page.body
        finally:
            awc.uninstall()

    def test_replication_one_stores_single_copy(self):
        _db, container, awc = build_cluster(replication=1)
        try:
            populate(container)
            warm(container)
            for topic in TOPICS:
                key = topic_key(topic)
                holders = [
                    node.name
                    for node in awc.router.nodes()
                    if key in node.cache.pages
                ]
                assert len(holders) == 1
            snapshot = awc.cluster_snapshot()
            assert sum(n["replica_copies"] for n in snapshot["nodes"]) == 0
        finally:
            awc.uninstall()


class TestReadPath:
    def test_hot_key_reads_rotate_over_the_replica_set(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            key = topic_key(TOPICS[0])
            holders = {
                node.name: node
                for node in awc.router.nodes()
                if key in node.cache.pages
            }
            before = {
                name: node.cache.stats.hits for name, node in holders.items()
            }
            for _ in range(8):
                assert container.get(
                    "/view_topic", {"topic": TOPICS[0]}
                ).status == 200
            gained = {
                name: node.cache.stats.hits - before[name]
                for name, node in holders.items()
            }
            assert sum(gained.values()) == 8
            assert all(count > 0 for count in gained.values()), gained
        finally:
            awc.uninstall()

    def test_failover_serves_the_surviving_copy_as_a_hit(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            key = topic_key(TOPICS[0])
            primary, secondary = awc.router.replica_names(key)
            awc.router.fail_node(primary)
            assert primary not in awc.router.node_names
            # Removing the primary from the ring promotes the next
            # distinct successor into the replica set: the survivor
            # plus one cold newcomer.
            after = awc.router.replica_names(key)
            assert secondary in after and len(after) == 2
            survivor = awc.router.node(secondary)
            hits_before = survivor.cache.stats.hits
            # Rotation alternates between the warm survivor and the
            # cold newcomer; two reads guarantee the survivor serves
            # its copy at least once, and the newcomer warms up.
            for _ in range(2):
                page = container.get("/view_topic", {"topic": TOPICS[0]})
                assert page.status == 200
            assert survivor.cache.stats.hits >= hits_before + 1
            holders = [
                node.name
                for node in awc.router.nodes()
                if key in node.cache.pages
            ]
            assert sorted(holders) == sorted(after)
        finally:
            awc.uninstall()

    def test_failed_over_copy_still_hears_invalidations(self):
        _db, container, awc = build_cluster()
        try:
            populate(container)
            warm(container)
            key = topic_key(TOPICS[0])
            primary, _secondary = awc.router.replica_names(key)
            awc.router.fail_node(primary)
            container.post("/score", {"id": "1", "score": "88"})
            for node in awc.router.nodes():
                assert key not in node.cache.pages
            page = container.get("/view_topic", {"topic": TOPICS[0]})
            assert "(88)" in page.body
        finally:
            awc.uninstall()

    def test_losing_every_replica_falls_back_to_the_ring(self):
        _db, container, awc = build_cluster(n_nodes=3)
        try:
            populate(container)
            warm(container)
            key = topic_key(TOPICS[0])
            for name in list(awc.router.replica_names(key)):
                awc.router.fail_node(name)
            # One node left; it serves the key (as a recompute).
            assert awc.router.owner_name(key) == awc.router.node_names[0]
            assert container.get(
                "/view_topic", {"topic": TOPICS[0]}
            ).status == 200
            awc.router.fail_node(awc.router.node_names[0])
            with pytest.raises(ClusterError, match="reachable|empty"):
                awc.router.owner_name(key)
        finally:
            awc.uninstall()


class TestGossipDrivenEviction:
    def test_silent_node_is_detected_and_evicted_by_ticks(self):
        clock = FakeClock()
        _db, container, awc = build_cluster(clock=clock)
        try:
            populate(container)
            warm(container)
            victim = awc.router.node_names[0]
            awc.router.silence_node(victim)
            # Routing fails over immediately, before any detection.
            assert all(
                victim not in awc.router.replica_names(topic_key(t))
                for t in TOPICS
            )
            # Gossip-paced detection: the router's view walks the
            # silent peer through SUSPECT to DEAD, then evicts it.
            for _ in range(20):
                clock.advance(0.5)
                awc.router.tick()
                if victim not in awc.router.node_names:
                    break
            assert victim not in awc.router.node_names
            assert awc.router.membership.state(victim) == "dead"
            assert victim not in awc.bus.subscriber_names
            warm(container)  # the survivors serve everything
        finally:
            awc.uninstall()

    def test_membership_appears_in_cluster_snapshot(self):
        _db, _container, awc = build_cluster()
        try:
            table = awc.cluster_snapshot()["membership"]
            assert set(table) == set(awc.router.node_names)
            for view in table.values():
                assert view["state"] == "alive"
        finally:
            awc.uninstall()


class TestBoundedStaleness:
    def test_bounded_publish_defers_delivery_until_flush(self):
        clock = FakeClock()
        _db, container, awc = build_cluster(
            bus_mode="bounded", staleness_bound=1.0, clock=clock
        )
        try:
            populate(container)
            # Warm twice: the first pass's miss-inserts flush the bus
            # (the write-through barrier), delivering the queued /add
            # messages, which conservatively doom the pages warmed
            # before them.  The second pass re-warms those over empty
            # queues, leaving a stable fully-replicated working set.
            warm(container)
            warm(container)
            key = topic_key(TOPICS[0])
            container.post("/score", {"id": "1", "score": "55"})
            # The write returned after durable enqueue: the copies are
            # still cached, and the queues hold one message per node.
            holders = [
                node for node in awc.router.nodes() if key in node.cache.pages
            ]
            assert len(holders) == 2
            depths = awc.bus.queue_depths()
            assert all(depth >= 1 for depth in depths.values()), depths
            awc.bus.flush()
            for node in awc.router.nodes():
                assert key not in node.cache.pages
            assert key in awc.router.take_async_doomed()
            assert awc.router.take_async_doomed() == set()  # drained
        finally:
            awc.uninstall()

    def test_bounded_read_within_window_may_serve_stale_then_converges(self):
        clock = FakeClock()
        _db, container, awc = build_cluster(
            bus_mode="bounded", staleness_bound=1.0, clock=clock
        )
        try:
            populate(container)
            warm(container)
            warm(container)  # settle the working set (see above)
            container.post("/score", {"id": "1", "score": "66"})
            # Within the window the cached page may still show the old
            # score -- that is the contract being bought.
            stale = container.get("/view_topic", {"topic": TOPICS[0]})
            assert "(0)" in stale.body
            awc.bus.flush()
            fresh = container.get("/view_topic", {"topic": TOPICS[0]})
            assert "(66)" in fresh.body
        finally:
            awc.uninstall()

    def test_publish_side_shedding_bounds_queue_age(self):
        clock = FakeClock()
        _db, container, awc = build_cluster(
            bus_mode="bounded", staleness_bound=1.0, clock=clock
        )
        try:
            populate(container)
            warm(container)
            container.post("/score", {"id": "1", "score": "11"})
            clock.advance(0.6)  # past bound/2: next publish must shed
            container.post("/score", {"id": "2", "score": "22"})
            assert awc.bus.stats.sheds > 0
            assert awc.bus.stats.max_staleness <= 1.0
        finally:
            awc.uninstall()


class TestStalenessOracle:
    def test_bridge_reports_zero_bound_for_strong_cluster(self):
        db, _container, awc = build_cluster(bus_mode="strong")
        try:
            bridge = TriggerInvalidationBridge(awc.router, awc.collector)
            bridge.attach(db)
            assert bridge.staleness_bound == 0.0
            assert bridge.measured_staleness() == 0.0
            assert bridge.assert_staleness_bound() == 0.0
        finally:
            awc.uninstall()

    def test_external_write_measured_within_bound(self):
        clock = FakeClock()
        db, container, awc = build_cluster(
            bus_mode="bounded", staleness_bound=1.0, clock=clock
        )
        try:
            bridge = TriggerInvalidationBridge(awc.router, awc.collector)
            bridge.attach(db)
            populate(container)
            warm(container)
            db.update("UPDATE notes SET score = 9 WHERE id = 1")
            assert bridge.external_writes == 1
            assert bridge.staleness_bound == 1.0
            clock.advance(0.4)  # lag accrues while the message queues
            measured = bridge.assert_staleness_bound()
            assert measured == pytest.approx(0.4)
            fresh = container.get("/view_topic", {"topic": TOPICS[0]})
            assert "(9)" in fresh.body
        finally:
            awc.uninstall()

    def test_oracle_raises_when_the_contract_is_broken(self):
        clock = FakeClock()
        db, container, awc = build_cluster(
            bus_mode="bounded", staleness_bound=1.0, clock=clock
        )
        try:
            bridge = TriggerInvalidationBridge(awc.router, awc.collector)
            bridge.attach(db)
            populate(container)
            warm(container)
            db.update("UPDATE notes SET score = 9 WHERE id = 1")
            # No pump, no traffic: nothing sheds the queue, so the lag
            # sails past the bound -- exactly what the oracle is for.
            clock.advance(2.5)
            with pytest.raises(AssertionError, match="bounded-staleness"):
                bridge.assert_staleness_bound()
        finally:
            awc.uninstall()
