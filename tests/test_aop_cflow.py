"""cflowbelow pointcut tests (the paper's footnote 2 mechanism)."""

import pytest

from repro.aop import Aspect, Weaver, around, current_cflow, parse_pointcut
from repro.aop.pointcut import Cflowbelow, MethodTarget
from repro.errors import PointcutSyntaxError


def make_forwarding_service():
    """outer() calls inner() internally -- interleaved handlers."""

    class Service:
        def __init__(self):
            self.log = []

        def outer(self, x):
            self.log.append("outer")
            return self.inner(x) + 1

        def inner(self, x):
            self.log.append("inner")
            return x * 2

    return Service


class TopLevelOnly(Aspect):
    """Advises every method execution NOT already below one."""

    def __init__(self):
        self.advised = []

    @around("execution(Service.*(..)) && !cflowbelow(execution(Service.*(..)))")
    def record(self, jp):
        self.advised.append(jp.signature.method_name)
        return jp.proceed()


class EveryLevel(Aspect):
    def __init__(self):
        self.advised = []

    @around("execution(Service.*(..))")
    def record(self, jp):
        self.advised.append(jp.signature.method_name)
        return jp.proceed()


def test_parse_cflowbelow():
    pc = parse_pointcut("cflowbelow(execution(Foo.bar(..)))")
    assert isinstance(pc, Cflowbelow)
    assert pc.is_dynamic


def test_negated_dynamic_still_weaves_statically():
    pc = parse_pointcut(
        "execution(Service.outer(..)) && !cflowbelow(execution(Service.*(..)))"
    )
    Service = make_forwarding_service()
    target = MethodTarget(Service, "outer", vars(Service)["outer"])
    assert pc.matches(target)  # static: cannot be refuted at weave time
    assert pc.is_dynamic


def test_cflowbelow_suppresses_nested_advice():
    Service = make_forwarding_service()
    aspect = TopLevelOnly()
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Service])
    try:
        service = Service()
        assert service.outer(3) == 7
        # Only the top-level call was advised; inner ran unadvised.
        assert aspect.advised == ["outer"]
        # Both methods still executed.
        assert service.log == ["outer", "inner"]
    finally:
        weaver.unweave()


def test_without_guard_both_levels_advised():
    Service = make_forwarding_service()
    aspect = EveryLevel()
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Service])
    try:
        Service().outer(3)
        assert aspect.advised == ["outer", "inner"]
    finally:
        weaver.unweave()


def test_direct_inner_call_is_top_level():
    Service = make_forwarding_service()
    aspect = TopLevelOnly()
    weaver = Weaver().add_aspect(aspect)
    weaver.weave([Service])
    try:
        Service().inner(1)
        assert aspect.advised == ["inner"]
    finally:
        weaver.unweave()


def test_cflow_stack_visible_during_execution():
    Service = make_forwarding_service()
    seen = []

    class Peek(Aspect):
        @around("execution(Service.*(..))")
        def look(self, jp):
            if jp.signature.method_name == "inner":
                seen.append([frame.method_name for frame in current_cflow()])
            return jp.proceed()

    weaver = Weaver().add_aspect(Peek())
    weaver.weave([Service])
    try:
        Service().outer(1)
        # During inner's advice, outer and inner are both on the stack.
        assert seen == [["outer", "inner"]]
    finally:
        weaver.unweave()


def test_only_woven_methods_appear_on_stack():
    Service = make_forwarding_service()
    seen = []

    class PeekInnerOnly(Aspect):
        @around("execution(Service.inner(..))")
        def look(self, jp):
            seen.append([frame.method_name for frame in current_cflow()])
            return jp.proceed()

    weaver = Weaver().add_aspect(PeekInnerOnly())
    weaver.weave([Service])
    try:
        Service().outer(1)
        # outer carries no advice, so it was never woven and does not
        # appear in the control flow -- cflow sees *join points*, and
        # unadvised methods are not join points after weaving.
        assert seen == [["inner"]]
    finally:
        weaver.unweave()


def test_stack_unwinds_after_exception():
    class Service:
        def boom(self):
            raise ValueError("x")

    class Noop(Aspect):
        @around("execution(Service.boom(..))")
        def passthrough(self, jp):
            return jp.proceed()

    weaver = Weaver().add_aspect(Noop())
    weaver.weave([Service])
    try:
        with pytest.raises(ValueError):
            Service().boom()
        assert current_cflow() == ()
    finally:
        weaver.unweave()


def test_unclosed_cflowbelow_rejected():
    with pytest.raises(PointcutSyntaxError):
        parse_pointcut("cflowbelow(execution(Foo.bar(..))")


def test_forwarding_servlets_cached_once():
    """A servlet that forwards to another servlet's do_get is handled
    as one request: one cache entry, one lookup."""
    from repro.cache.autowebcache import AutoWebCache
    from repro.db import connect
    from repro.web.container import ServletContainer
    from repro.web.servlet import HttpServlet

    from tests.conftest import ViewTopicServlet, make_notes_db

    db = make_notes_db()
    connection = connect(db)
    inner = ViewTopicServlet(connection)

    class FrontPage(HttpServlet):
        def do_get(self, request, response):
            response.write("<header>")
            inner.do_get(request, response)  # internal forward
            response.write("<footer>")

    container = ServletContainer()
    container.register("/front", FrontPage())
    awc = AutoWebCache()
    awc.install([FrontPage, ViewTopicServlet])
    try:
        db.update(
            "INSERT INTO notes (id, topic, body, score) VALUES (1, 'a', 'x', 0)"
        )
        first = container.get("/front", {"topic": "a"})
        assert "<header>" in first.body and "<footer>" in first.body
        assert awc.stats.lookups == 1  # inner do_get not captured
        assert len(awc.cache) == 1
        second = container.get("/front", {"topic": "a"})
        assert second.body == first.body
        assert awc.stats.hits == 1
    finally:
        awc.uninstall()
