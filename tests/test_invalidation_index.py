"""Unit tests for the dependency-table indexes and write dedupe.

The table index and value index are pure accelerators: every answer
they give must be a subset-with-accounting of what the full scan would
return, and anything they cannot answer soundly must degrade to the
full scan (``None``), never to a wrong subset.
"""

from __future__ import annotations

from repro.cache.analysis import InvalidationPolicy, QueryAnalysisEngine
from repro.cache.analysis_cache import AnalysisCache
from repro.cache.dependency import DependencyTable
from repro.cache.entry import PageEntry, QueryInstance
from repro.cache.invalidation import Invalidator, dedupe_writes
from repro.cache.page_cache import PageCache
from repro.cache.replacement import make_policy
from repro.cache.stats import CacheStats
from repro.sql.parser import parse_statement
from repro.sql.template import QueryTemplate, templateize


def _read(sql: str, params: tuple = ()) -> QueryInstance:
    template, values = templateize(sql, params)
    return QueryInstance(template, values)


def _write(sql: str, params: tuple = (), pre_image=None) -> QueryInstance:
    template, values = templateize(sql, params)
    return QueryInstance(template, values, pre_image)


def _indexed_invalidator(pages: PageCache) -> Invalidator:
    return Invalidator(
        pages,
        AnalysisCache(QueryAnalysisEngine()),
        CacheStats(),
        InvalidationPolicy.EXTRA_QUERY,
        indexed=True,
    )


class TestTableIndex:
    def test_candidates_limited_to_shared_tables(self):
        table = DependencyTable()
        users = _read("SELECT name FROM users WHERE id = ?", (1,))
        items = _read("SELECT price FROM items WHERE id = ?", (2,))
        table.register("p-users", (users,))
        table.register("p-items", (items,))

        candidates, skipped = table.candidate_templates(["users"])
        assert [t.text for t in candidates] == [users.template.text]
        assert skipped == 1

        candidates, skipped = table.candidate_templates(["bids"])
        assert candidates == []
        assert skipped == 2

    def test_unregister_cleans_both_indexes(self):
        table = DependencyTable()
        read = _read("SELECT name FROM users WHERE id = ?", (1,))
        table.register("p1", (read,))
        table.register("p2", (read,))

        table.unregister("p1", (read,))
        candidates, _ = table.candidate_templates(["users"])
        assert len(candidates) == 1  # p2 still registered

        table.unregister("p2", (read,))
        assert table.template_count == 0
        candidates, skipped = table.candidate_templates(["users"])
        assert candidates == [] and skipped == 0
        # The value index must not leak the dead template either.
        assert table._value_index == {}
        assert table._templates_by_table == {}

    def test_duplicate_registration_is_idempotent(self):
        table = DependencyTable()
        read = _read("SELECT name FROM users WHERE id = ?", (1,))
        table.register("p1", (read, read))
        table.register("p1", (read,))
        assert table.registration_count == 1
        result = table.instances_for_values(read.template, 0, [1])
        assert result is not None
        candidates, skipped = result
        assert candidates == [("p1", (1,))] and skipped == 0


class TestValueIndex:
    def test_lookup_returns_only_matching_values(self):
        table = DependencyTable()
        template, _ = templateize("SELECT name FROM users WHERE id = ?", (0,))
        for k in range(4):
            table.register(f"p{k}", (QueryInstance(template, (k,)),))

        result = table.instances_for_values(template, 0, [2])
        assert result == ([("p2", (2,))], 3)

        result = table.instances_for_values(template, 0, [1, 3])
        assert result is not None
        candidates, skipped = result
        assert sorted(candidates) == [("p1", (1,)), ("p3", (3,))]
        assert skipped == 2

    def test_missing_position_falls_back(self):
        table = DependencyTable()
        # No equality binding -> no indexable positions -> no value index.
        read = _read("SELECT name FROM users WHERE id > ?", (1,))
        table.register("p1", (read,))
        assert table.instances_for_values(read.template, 0, [1]) is None

    def test_absent_template_answers_empty(self):
        table = DependencyTable()
        read = _read("SELECT name FROM users WHERE id = ?", (1,))
        assert table.instances_for_values(read.template, 0, [1]) == ([], 0)

    def test_unhashable_value_demotes_template_permanently(self):
        table = DependencyTable()
        template, _ = templateize("SELECT name FROM users WHERE id = ?", (0,))
        table.register("p0", (QueryInstance(template, (0,)),))
        # A registration with an unhashable bound value poisons the
        # whole template's value index...
        table.register("bad", (QueryInstance(template, ([1, 2],)),))
        assert table.instances_for_values(template, 0, [0]) is None
        # ...and the demotion sticks even after the bad page goes away
        # (a partially rebuilt index would answer unsoundly).
        table.unregister("bad", (QueryInstance(template, ([1, 2],)),))
        assert table.instances_for_values(template, 0, [0]) is None
        # The full scan still sees everything.
        assert ("p0", (0,)) in table.instances_for(template)

    def test_unhashable_probe_value_falls_back(self):
        table = DependencyTable()
        template, _ = templateize("SELECT name FROM users WHERE id = ?", (0,))
        table.register("p0", (QueryInstance(template, (0,)),))
        assert table.instances_for_values(template, 0, [[1, 2]]) is None


class TestIndexedInvalidatorFallbacks:
    """The invalidator must produce brute-force results even when the
    indexes degrade."""

    def test_unindexable_template_still_invalidated_correctly(self):
        pages = PageCache(make_policy("unbounded", None))
        template, _ = templateize("SELECT name FROM users WHERE id = ?", (0,))
        pages.insert(
            PageEntry(
                key="good",
                body="x",
                dependencies=(QueryInstance(template, (1,)),),
            )
        )
        pages.insert(
            PageEntry(
                key="bad",
                body="x",
                dependencies=(QueryInstance(template, ([9],)),),
            )
        )
        invalidator = _indexed_invalidator(pages)
        writes = [_write("UPDATE users SET name = ? WHERE id = ?", ("n", 1))]
        assert invalidator.affected_pages(writes) == {"good"}

    def test_literal_read_binding_prunes_whole_template(self):
        """Reads with literal equality bindings (no placeholder) decide
        in/out per template, not per instance."""
        pages = PageCache(make_policy("unbounded", None))
        statement = parse_statement("SELECT name FROM users WHERE id = 5")
        template = QueryTemplate(text=statement.unparse(), statement=statement)
        pages.insert(
            PageEntry(
                key="pinned",
                body="x",
                dependencies=(QueryInstance(template, ()),),
            )
        )
        invalidator = _indexed_invalidator(pages)

        miss = [_write("UPDATE users SET name = ? WHERE id = ?", ("n", 3))]
        assert invalidator.affected_pages(miss) == set()

        hit = [_write("UPDATE users SET name = ? WHERE id = ?", ("n", 5))]
        assert invalidator.affected_pages(hit) == {"pinned"}

    def test_pruning_counters_recorded(self):
        pages = PageCache(make_policy("unbounded", None))
        read_tpl, _ = templateize("SELECT name FROM users WHERE id = ?", (0,))
        for k in range(4):
            pages.insert(
                PageEntry(
                    key=f"u{k}",
                    body="x",
                    dependencies=(QueryInstance(read_tpl, (k,)),),
                )
            )
        pages.insert(
            PageEntry(
                key="item",
                body="x",
                dependencies=(
                    _read("SELECT price FROM items WHERE id = ?", (1,)),
                ),
            )
        )
        invalidator = _indexed_invalidator(pages)
        writes = [_write("UPDATE users SET name = ? WHERE id = ?", ("n", 2))]
        assert invalidator.affected_pages(writes) == {"u2"}
        snapshot = invalidator._stats.snapshot()
        # The items template never shares a table with the write; three
        # of the four user registrations are value-pruned.
        assert snapshot["templates_skipped_by_index"] == 1
        assert snapshot["instances_skipped_by_index"] == 3
        assert snapshot["pair_analyses"] == 1
        assert snapshot["intersection_tests"] == 1


class TestDedupeWrites:
    def test_identical_instances_collapse(self):
        a = _write("DELETE FROM users WHERE id = ?", (1,))
        b = _write("DELETE FROM users WHERE id = ?", (1,))
        c = _write("DELETE FROM users WHERE id = ?", (2,))
        assert len(dedupe_writes([a, b, c, a])) == 2

    def test_distinct_pre_images_do_not_collapse(self):
        a = _write(
            "DELETE FROM users WHERE id = ?", (1,), ({"id": 1, "name": "x"},)
        )
        b = _write(
            "DELETE FROM users WHERE id = ?", (1,), ({"id": 1, "name": "y"},)
        )
        assert len(dedupe_writes([a, b])) == 2
        assert len(dedupe_writes([a, a, b])) == 2

    def test_unhashable_values_kept_conservatively(self):
        a = _write("DELETE FROM users WHERE id = ?", ([1],))
        b = _write("DELETE FROM users WHERE id = ?", ([1],))
        assert len(dedupe_writes([a, b])) == 2
