"""FCFS multi-worker resources (app server, database server)."""

from __future__ import annotations

import heapq

from repro.errors import SimulationError


class Resource:
    """A service station with ``workers`` parallel servers and FCFS order.

    ``schedule(arrival, demand)`` assigns the request to the earliest
    available worker and returns its completion time.  Requests must be
    scheduled in non-decreasing arrival order (the event loop guarantees
    this), which makes the earliest-free-worker rule exactly FCFS.
    """

    def __init__(self, name: str, workers: int) -> None:
        if workers <= 0:
            raise SimulationError("a resource needs at least one worker")
        self.name = name
        self.workers = workers
        self._free_at = [0.0] * workers
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.jobs = 0

    def schedule(self, arrival: float, demand: float) -> float:
        """Serve ``demand`` seconds of work arriving at ``arrival``."""
        if demand < 0:
            raise SimulationError("negative service demand")
        if demand == 0.0:
            return arrival
        free_at = heapq.heappop(self._free_at)
        start = max(arrival, free_at)
        completion = start + demand
        heapq.heappush(self._free_at, completion)
        self.busy_time += demand
        self.jobs += 1
        return completion

    def utilization(self, duration: float) -> float:
        """Fraction of total worker capacity used over ``duration``."""
        if duration <= 0:
            return 0.0
        return self.busy_time / (duration * self.workers)

    def reset(self) -> None:
        self._free_at = [0.0] * self.workers
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.jobs = 0
