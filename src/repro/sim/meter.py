"""Work measurement around a single request execution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.autowebcache import AutoWebCache
from repro.db.engine import Database
from repro.sim.costs import RequestWork
from repro.web.http import HttpResponse


@dataclass
class _Snapshot:
    queries: int
    updates: int
    rows: int
    hits: int
    semantic_hits: int
    misses_cold: int
    misses_invalidation: int
    misses_capacity: int
    misses_expired: int
    uncacheable: int
    tests: int


class WorkMeter:
    """Measures the work one dispatched request performed.

    Usage: ``before = meter.snapshot()``, dispatch the request, then
    ``meter.work_since(before, response, is_write)``.
    """

    def __init__(self, database: Database, awc: AutoWebCache | None = None) -> None:
        self._database = database
        self._awc = awc

    @property
    def cache_enabled(self) -> bool:
        return self._awc is not None

    def snapshot(self) -> _Snapshot:
        stats = self._database.stats
        if self._awc is not None:
            cache = self._awc.cache.stats
            return _Snapshot(
                queries=stats.queries,
                updates=stats.updates,
                rows=stats.rows_examined,
                hits=cache.hits,
                semantic_hits=cache.semantic_hits,
                misses_cold=cache.misses_cold,
                misses_invalidation=cache.misses_invalidation,
                misses_capacity=cache.misses_capacity,
                misses_expired=cache.misses_expired,
                uncacheable=cache.uncacheable,
                tests=cache.intersection_tests,
            )
        return _Snapshot(
            queries=stats.queries,
            updates=stats.updates,
            rows=stats.rows_examined,
            hits=0,
            semantic_hits=0,
            misses_cold=0,
            misses_invalidation=0,
            misses_capacity=0,
            misses_expired=0,
            uncacheable=0,
            tests=0,
        )

    def work_since(
        self, before: _Snapshot, response: HttpResponse, is_write: bool
    ) -> RequestWork:
        after = self.snapshot()
        hit = (after.hits + after.semantic_hits) > (
            before.hits + before.semantic_hits
        )
        miss_reason = None
        if not hit:
            if after.misses_invalidation > before.misses_invalidation:
                miss_reason = "invalidation"
            elif after.misses_capacity > before.misses_capacity:
                miss_reason = "capacity"
            elif after.misses_expired > before.misses_expired:
                miss_reason = "expired"
            elif after.misses_cold > before.misses_cold:
                miss_reason = "cold"
            elif after.uncacheable > before.uncacheable:
                miss_reason = "uncacheable"
        return RequestWork(
            queries=after.queries - before.queries,
            updates=after.updates - before.updates,
            rows_examined=after.rows - before.rows,
            bytes_out=len(response.body),
            intersection_tests=after.tests - before.tests,
            cache_hit=hit,
            semantic_hit=after.semantic_hits > before.semantic_hits,
            miss_reason=miss_reason,
            cache_enabled=self.cache_enabled,
            is_write=is_write,
        )
