"""The load simulator: clients -> container -> resources in virtual time.

Requests are executed for real at their (virtual) issue instant; their
measured work is charged to the app-server and database resources to
obtain completion times.  Metrics are collected only for requests issued
after the warm-up phase, matching the paper's "warm the cache for 15
minutes, measure for 30" protocol (scaled down by default; fully
configurable).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field

from repro.cache.autowebcache import AutoWebCache
from repro.db.engine import Database
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.meter import WorkMeter
from repro.sim.resources import Resource
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest
from repro.workload.metrics import MetricsCollector, RequestSample
from repro.workload.mix import InteractionMix
from repro.workload.session import ClientSession, SessionConfig


@dataclass
class SimulationConfig:
    """Knobs for one simulation run.

    Defaults are scaled down from the paper's 15 min warm-up / 30 min
    measurement to keep the benchmark suite fast; the harness can dial
    them up for full-fidelity runs.
    """

    n_clients: int = 100
    warmup: float = 60.0
    duration: float = 240.0
    seed: int = 42
    app_workers: int = 1
    db_workers: int = 1
    session: SessionConfig = field(default_factory=SessionConfig)


@dataclass
class SimulationResult:
    """Everything measured in one run."""

    config: SimulationConfig
    metrics: MetricsCollector
    app_utilization: float
    db_utilization: float
    total_requests: int
    errors: int

    @property
    def mean_response_time_ms(self) -> float:
        return self.metrics.overall.mean * 1000.0

    @property
    def hit_rate(self) -> float:
        return self.metrics.reads.hit_rate

    @property
    def throughput(self) -> float:
        """Measured requests per simulated second (measurement window)."""
        if self.config.duration <= 0:
            return 0.0
        return self.metrics.request_count / self.config.duration


class LoadSimulator:
    """Drives ``n_clients`` emulated sessions through the application."""

    def __init__(
        self,
        container: ServletContainer,
        database: Database,
        mix: InteractionMix,
        config: SimulationConfig,
        cost_model: CostModel,
        clock: VirtualClock | None = None,
        awc: AutoWebCache | None = None,
    ) -> None:
        self.container = container
        self.database = database
        self.mix = mix
        self.config = config
        self.cost_model = cost_model
        self.clock = clock or VirtualClock()
        self.meter = WorkMeter(database, awc)
        self.app = Resource("app-server", config.app_workers)
        self.db = Resource("db-server", config.db_workers)
        self._session_ids = itertools.count()
        self._rng = random.Random(config.seed)
        self.errors = 0
        self.total_requests = 0

    def _new_session(self, started_at: float) -> ClientSession:
        session_id = next(self._session_ids)
        return ClientSession(
            session_id=session_id,
            mix=self.mix,
            rng=random.Random(self._rng.getrandbits(64)),
            config=self.config.session,
            started_at=started_at,
        )

    def run(self) -> SimulationResult:
        metrics = MetricsCollector()
        end_time = self.config.warmup + self.config.duration
        # Event heap: (time, tiebreak, session).  Sessions re-arm
        # themselves after each completion + think time.
        heap: list[tuple[float, int, ClientSession]] = []
        tiebreak = itertools.count()
        for _ in range(self.config.n_clients):
            start = self._rng.uniform(0.0, self.config.session.think_time_mean)
            session = self._new_session(start)
            heapq.heappush(heap, (start, next(tiebreak), session))

        while heap:
            issue_at, _tb, session = heapq.heappop(heap)
            if issue_at >= end_time:
                continue  # client would issue after the run ends
            self.clock.advance_to(issue_at)
            if session.expired(issue_at):
                session = self._new_session(issue_at)

            planned = session.next_request()
            before = self.meter.snapshot()
            request = HttpRequest(planned.method, planned.uri, dict(planned.params))
            response = self.container.handle(request)
            if response.status != 200:
                self.errors += 1
            work = self.meter.work_since(before, response, planned.is_write)
            session.observe_response(planned, response.body)
            self.total_requests += 1

            app_demand, db_demand = self.cost_model.demands(work)
            app_done = self.app.schedule(issue_at, app_demand)
            completed = (
                self.db.schedule(app_done, db_demand) if db_demand > 0 else app_done
            )
            response_time = completed - issue_at

            if issue_at >= self.config.warmup:
                metrics.record(
                    RequestSample(
                        uri=planned.uri,
                        issued_at=issue_at,
                        response_time=response_time,
                        cache_hit=work.cache_hit,
                        is_write=planned.is_write,
                        semantic_hit=work.semantic_hit,
                        miss_reason=work.miss_reason,
                    )
                )
            else:
                metrics.record_warmup()

            next_issue = completed + session.think_time()
            if next_issue < end_time:
                heapq.heappush(heap, (next_issue, next(tiebreak), session))

        return SimulationResult(
            config=self.config,
            metrics=metrics,
            app_utilization=self.app.utilization(end_time),
            db_utilization=self.db.utilization(end_time),
            total_requests=self.total_requests,
            errors=self.errors,
        )
