"""Service-demand model: converting measured work into virtual seconds.

Each request's *work* is measured exactly (queries, rows examined, bytes
generated, invalidation tests); the cost model converts it into app-tier
and database-tier service demands.  Constants are calibrated so that
the simulated testbed saturates in the same client-count region the
paper's hardware did (RUBiS towards 1000 clients, TPC-W towards 300-400
clients).  The TPC-W model charges more per examined row than the RUBiS
model because the synthetic TPC-W population is scaled down ~100x from
the spec's (each synthetic row stands for many real ones); see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RequestWork:
    """Measured work for one request (deltas across its execution)."""

    queries: int = 0
    updates: int = 0
    rows_examined: int = 0
    bytes_out: int = 0
    intersection_tests: int = 0
    cache_hit: bool = False
    #: Hit served under an application-semantics TTL window.
    semantic_hit: bool = False
    #: For misses: "cold" / "invalidation" / "capacity" / "expired" /
    #: "uncacheable"; None for hits and writes.
    miss_reason: str | None = None
    cache_enabled: bool = False
    is_write: bool = False


@dataclass(frozen=True)
class CostModel:
    """Per-unit service costs, in (virtual) seconds."""

    app_base: float = 0.003  # request parsing, dispatch, servlet overhead
    app_per_query: float = 0.0005  # driver call overhead per SQL statement
    app_per_kb: float = 0.001  # page generation per KB of output
    app_cache_lookup: float = 0.0002  # hash lookup + key canonicalisation
    app_hit_serve: float = 0.0004  # copying a cached page into the response
    app_per_intersection: float = 0.00002  # one invalidation test
    db_per_query: float = 0.0004  # per-statement fixed cost
    db_per_row: float = 0.00004  # per row examined

    def demands(self, work: RequestWork) -> tuple[float, float]:
        """Return (app_demand, db_demand) in seconds."""
        statements = work.queries + work.updates
        if work.cache_enabled and work.cache_hit:
            # Hit path: lookup plus serving the stored page; the servlet
            # and database were bypassed entirely.
            app = self.app_cache_lookup + self.app_hit_serve
            return app, 0.0
        app = (
            self.app_base
            + self.app_per_query * statements
            + self.app_per_kb * (work.bytes_out / 1024.0)
        )
        if work.cache_enabled:
            app += self.app_cache_lookup
            app += self.app_per_intersection * work.intersection_tests
        db = self.db_per_query * statements + self.db_per_row * work.rows_examined
        return app, db


#: RUBiS calibration: saturation approaching ~1000 clients (Figure 13).
RUBIS_COST_MODEL = CostModel(
    app_base=0.0042,
    app_per_kb=0.0013,
    app_per_intersection=0.000005,
)

#: TPC-W calibration: the scaled-down population makes row counts ~100x
#: smaller than the spec's, so the per-row cost is inflated to keep the
#: BestSellers aggregation as dominant as it was on the paper's testbed
#: (saturation in the 300-400 client region, Figure 14).
TPCW_COST_MODEL = CostModel(
    app_base=0.004,
    app_per_kb=0.0015,
    app_per_intersection=0.000005,
    db_per_row=0.0002,
    db_per_query=0.0005,
)
