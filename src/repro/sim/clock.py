"""Virtual time."""

from __future__ import annotations


class VirtualClock:
    """A manually advanced clock.

    The simulator sets :attr:`time` as it processes events; everything
    time-dependent (cache TTL windows, session expiry) reads it through
    :meth:`now`, so simulated seconds are completely decoupled from
    wall-clock seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.time = start

    def now(self) -> float:
        return self.time

    def advance_to(self, t: float) -> None:
        """Move the clock forward (never backward)."""
        if t > self.time:
            self.time = t
