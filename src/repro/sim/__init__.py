"""Discrete-event load simulator: the hardware-testbed substitute.

The paper measured wall-clock response times on a cluster (Xeon
machines running Apache, Tomcat and MySQL over a 1 Gbps LAN).  This
package replaces the cluster with a calibrated queueing simulation:

- every emulated request is **actually executed** against the real
  servlet container and in-memory database (so cache contents, hit
  rates and invalidations are exact, not modelled);
- only *time* is virtual: the work a request performed (queries issued,
  rows examined, bytes generated, invalidation tests run) is converted
  into service demands by a :class:`~repro.sim.costs.CostModel`, and the
  request flows through finite-capacity app-server and database
  resources (FCFS multi-worker queues) in virtual time.

Response-time-versus-load *shapes* (who wins, where the knees fall) are
queueing phenomena this reproduces; absolute milliseconds differ from
the 2006 testbed, which is expected and documented in EXPERIMENTS.md.
"""

from repro.sim.clock import VirtualClock
from repro.sim.cluster import (
    ClusterCostModel,
    ClusterLoadSimulator,
    ClusterSimulationResult,
)
from repro.sim.costs import CostModel, RequestWork, RUBIS_COST_MODEL, TPCW_COST_MODEL
from repro.sim.resources import Resource
from repro.sim.meter import WorkMeter
from repro.sim.runner import LoadSimulator, SimulationConfig, SimulationResult

__all__ = [
    "VirtualClock",
    "ClusterCostModel",
    "ClusterLoadSimulator",
    "ClusterSimulationResult",
    "CostModel",
    "RequestWork",
    "RUBIS_COST_MODEL",
    "TPCW_COST_MODEL",
    "Resource",
    "WorkMeter",
    "LoadSimulator",
    "SimulationConfig",
    "SimulationResult",
]
