"""Cluster cost model + simulator: scaling curves in virtual time.

The single-node simulator (:mod:`repro.sim.runner`) charges each
request's measured work to one app-server resource.  The cluster
variant gives every cache node its own app-server resource and routes
each request to the node that owns its cache key (the same consistent
hash the real router uses), over one shared database resource.  Writes
pay the invalidation bus: the response is not complete until every
node has replayed the invalidation (the bus is synchronous), so a
write's completion time is the *maximum* over the remote replay
completions -- per-node service plus a propagation delay.

This yields the two curves the harness CLI emits (``python -m repro
cluster``): throughput vs node count (the app tier parallelises; the
shared database eventually caps it) and hit rate vs ring size (near
flat: placement is deterministic, so sharding splits the key space
without duplicating or losing entries).

FCFS note: with N independent app resources, database arrivals are no
longer globally monotone; :class:`~repro.sim.resources.Resource`
tolerates this (service order may locally deviate from FCFS), which is
an acceptable approximation for a capacity model.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field

from repro.cluster.awc import ClusterAutoWebCache
from repro.db.engine import Database
from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel, RequestWork
from repro.sim.meter import WorkMeter
from repro.sim.resources import Resource
from repro.sim.runner import SimulationConfig, SimulationResult
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest
from repro.workload.metrics import MetricsCollector, RequestSample
from repro.workload.mix import InteractionMix
from repro.workload.session import ClientSession


@dataclass(frozen=True)
class ClusterCostModel:
    """Per-node service demands plus invalidation-bus costs.

    ``base`` prices the request work exactly as the single-node model
    does; the cluster adds the front-end router hop and, for writes,
    the bus broadcast: each node replays the invalidation
    (``bus_apply_cost`` of its own CPU) after ``bus_delay`` seconds of
    propagation.
    """

    base: CostModel = field(default_factory=CostModel)
    #: Consistent-hash lookup + dispatch at the front end, per request.
    router_cost: float = 0.0001
    #: One-way propagation latency of a bus message (LAN-ish).
    bus_delay: float = 0.0005
    #: CPU a node spends replaying one invalidation message.  The
    #: per-intersection cost on top comes from the measured work.
    bus_apply_cost: float = 0.0002
    #: CPU a secondary spends storing one replica write-through copy
    #: (clone + page-store insert; no recomputation).
    replica_copy_cost: float = 0.0002

    def demands(self, work: RequestWork) -> tuple[float, float]:
        app, db = self.base.demands(work)
        return app + self.router_cost, db


def _heavy_rubis_base() -> CostModel:
    from dataclasses import replace

    from repro.sim.costs import RUBIS_COST_MODEL

    return replace(
        RUBIS_COST_MODEL,
        app_base=RUBIS_COST_MODEL.app_base * 8,
        app_per_kb=RUBIS_COST_MODEL.app_per_kb * 4,
    )


#: Calibration for the scaling benchmark: the app tier is priced so a
#: single node saturates around ~500 RUBiS clients, making the
#: throughput-vs-node-count knee visible at benchmark-friendly client
#: counts (the stock RUBiS model needs ~1600+ clients to pin one node,
#: which costs minutes of wall clock per cell for the same curve shape).
CLUSTER_SCALING_COST_MODEL = ClusterCostModel(base=_heavy_rubis_base())


@dataclass
class ClusterSimulationResult(SimulationResult):
    """Single-node result shape plus cluster-side accounting."""

    n_nodes: int = 1
    node_utilizations: dict[str, float] = field(default_factory=dict)
    bus_messages: int = 0
    cluster_snapshot: dict = field(default_factory=dict)


class ClusterLoadSimulator:
    """Drives emulated clients through a sharded cache cluster.

    ``awc`` must be a :class:`ClusterAutoWebCache` already installed
    over the container's servlet classes: the simulator asks its router
    which node owns each request so virtual-time capacity matches the
    real placement.
    """

    def __init__(
        self,
        container: ServletContainer,
        database: Database,
        mix: InteractionMix,
        config: SimulationConfig,
        cost_model: ClusterCostModel,
        awc: ClusterAutoWebCache,
        clock: VirtualClock | None = None,
    ) -> None:
        if not awc.router.node_names:
            raise SimulationError("cluster simulator needs at least one node")
        self.container = container
        self.database = database
        self.mix = mix
        self.config = config
        self.cost_model = cost_model
        self.awc = awc
        self.clock = clock or VirtualClock()
        self.meter = WorkMeter(database, awc)
        self.apps = {
            name: Resource(f"app:{name}", config.app_workers)
            for name in awc.router.node_names
        }
        self.db = Resource("db-server", config.db_workers)
        self._session_ids = itertools.count()
        self._rng = random.Random(config.seed)
        self.errors = 0
        self.total_requests = 0
        #: Bounded-staleness bus: writes do not barrier on remote
        #: replay; the simulator drives delivery from virtual time
        #: (the bus's own publish-side shedding plus this opportunistic
        #: flush keep the measured lag under the bound).
        self._bounded = awc.bus.mode == "bounded"
        #: Drain cadence sets the staleness/recompute-rate trade: every
        #: drain re-dooms the hot pages bid on since the last one, and
        #: each doom buys an expensive recompute on the key's replica
        #: pair.  0.4x the bound keeps measured lag comfortably inside
        #: the bound while staying under the bus's own publish-side
        #: shed threshold (half the bound), so sheds remain an
        #: exceptional backpressure signal rather than the steady state.
        self._flush_age = awc.bus.staleness_bound * 0.4
        #: Asynchronous background CPU owed by each node (bounded-mode
        #: bus replays, replica write-through copies), folded into the
        #: node's next scheduled request.  Scheduling this work directly
        #: at its future completion timestamp would push the target's
        #: single FCFS timeline past that instant and block its earlier
        #: arrivals behind pure idle time -- a modelling artefact that
        #: cascades cluster-wide at large N.  Deferral charges the same
        #: CPU while keeping each node's arrival stream monotone.
        self._deferred = {name: 0.0 for name in self.apps}

    def _new_session(self, started_at: float) -> ClientSession:
        session_id = next(self._session_ids)
        return ClientSession(
            session_id=session_id,
            mix=self.mix,
            rng=random.Random(self._rng.getrandbits(64)),
            config=self.config.session,
            started_at=started_at,
        )

    def _app_for(self, request: HttpRequest) -> Resource:
        owner = self.awc.router.owner_name(request.cache_key())
        return self.apps[owner]

    def run(self) -> ClusterSimulationResult:
        metrics = MetricsCollector()
        end_time = self.config.warmup + self.config.duration
        heap: list[tuple[float, int, ClientSession]] = []
        tiebreak = itertools.count()
        for _ in range(self.config.n_clients):
            start = self._rng.uniform(0.0, self.config.session.think_time_mean)
            session = self._new_session(start)
            heapq.heappush(heap, (start, next(tiebreak), session))

        model = self.cost_model
        while heap:
            issue_at, _tb, session = heapq.heappop(heap)
            if issue_at >= end_time:
                continue
            self.clock.advance_to(issue_at)
            if session.expired(issue_at):
                session = self._new_session(issue_at)

            planned = session.next_request()
            before = self.meter.snapshot()
            request = HttpRequest(planned.method, planned.uri, dict(planned.params))
            response = self.container.handle(request)
            if response.status != 200:
                self.errors += 1
            work = self.meter.work_since(before, response, planned.is_write)
            session.observe_response(planned, response.body)
            self.total_requests += 1

            owner = self.awc.router.owner_name(request.cache_key())
            app_resource = self.apps[owner]
            app_demand, db_demand = model.demands(work)
            # Settle the background CPU this node owes (bus replays,
            # replica copies) as a surcharge on its next request.
            app_demand += self._deferred[owner]
            self._deferred[owner] = 0.0
            app_done = app_resource.schedule(issue_at, app_demand)
            completed = (
                self.db.schedule(app_done, db_demand) if db_demand > 0 else app_done
            )
            if planned.is_write and work.updates > 0 and len(self.apps) > 1:
                if self._bounded:
                    # Bounded-staleness bus: the replay still costs
                    # every other node CPU, but the write response does
                    # not wait for it -- the barrier (the max() below)
                    # is exactly what this mode removes.
                    for name in self._deferred:
                        if name != owner:
                            self._deferred[name] += model.bus_apply_cost
                else:
                    # Synchronous bus: every other node replays the
                    # invalidation before the write response is sent.
                    completed = max(
                        completed,
                        max(
                            resource.schedule(
                                completed + model.bus_delay,
                                model.bus_apply_cost,
                            )
                            for resource in self.apps.values()
                            if resource is not app_resource
                        ),
                    )
            if (
                self.awc.router.replication > 1
                and not planned.is_write
                and not work.cache_hit
                and work.miss_reason is not None
            ):
                # Write-through replication: a cacheable miss stores the
                # recomputed page on its secondaries too.  The copy is a
                # clone + page-store insert (no recomputation), charged
                # to each secondary as background work.
                for name in self.awc.router.replica_names(
                    request.cache_key()
                )[1:]:
                    if name != owner and name in self._deferred:
                        self._deferred[name] += model.replica_copy_cost
            if self._bounded and self.awc.bus.oldest_age(issue_at) >= (
                self._flush_age
            ):
                self.awc.bus.flush()
            response_time = completed - issue_at

            if issue_at >= self.config.warmup:
                metrics.record(
                    RequestSample(
                        uri=planned.uri,
                        issued_at=issue_at,
                        response_time=response_time,
                        cache_hit=work.cache_hit,
                        is_write=planned.is_write,
                        semantic_hit=work.semantic_hit,
                        miss_reason=work.miss_reason,
                    )
                )
            else:
                metrics.record_warmup()

            next_issue = completed + session.think_time()
            if next_issue < end_time:
                heapq.heappush(heap, (next_issue, next(tiebreak), session))

        if self._bounded:
            # Deliver the residue so the final snapshot's staleness
            # accounting covers every published message.
            self.awc.bus.flush()
        utilisations = {
            name: resource.utilization(end_time)
            for name, resource in self.apps.items()
        }
        return ClusterSimulationResult(
            config=self.config,
            metrics=metrics,
            app_utilization=(
                sum(utilisations.values()) / len(utilisations)
                if utilisations
                else 0.0
            ),
            db_utilization=self.db.utilization(end_time),
            total_requests=self.total_requests,
            errors=self.errors,
            n_nodes=len(self.apps),
            node_utilizations=utilisations,
            bus_messages=self.awc.bus.stats.published,
            cluster_snapshot=self.awc.cluster_snapshot(),
        )
