"""TPC-W workload mixes (Section 5: the shopping mix, ~80% reads).

Interaction weights follow the TPC-W v1.8 shopping-mix CBMG's stationary
distribution (the same one the paper's Figure 17 x-axis reflects:
SearchRequest ~20%, Home ~16%, ProductDetail ~17%, ...).  Cart flows
are stateful: a session learns its server-allocated cart id from the
returned page, checks out through BuyRequest, and completes with
BuyConfirm.
"""

from __future__ import annotations

from repro.apps.tpcw.data import SUBJECTS, TpcwDataset, _LAST, _TITLE_WORDS
from repro.workload.mix import Interaction, InteractionMix
from repro.workload.session import ClientSession
from repro.workload.zipf import ZipfSampler


class TpcwParamFactory:
    """Parameter generators bound to one dataset's id ranges."""

    def __init__(self, dataset: TpcwDataset) -> None:
        self.dataset = dataset
        self.items = ZipfSampler(dataset.n_items, s=0.9)
        self.subjects = ZipfSampler(len(SUBJECTS), s=0.5)
        self.customers = ZipfSampler(dataset.n_customers, s=0.6)

    def own_customer(self, session: ClientSession) -> int:
        customer = session.state.get("customer")
        if customer is None:
            customer = session.rng.randrange(self.dataset.n_customers)
            session.state["customer"] = customer
        return int(customer)

    def pick_item(self, session: ClientSession) -> int:
        item = self.items.sample(session.rng)
        session.state["item"] = item
        return item

    def current_item(self, session: ClientSession) -> int:
        item = session.state.get("item")
        if item is None:
            item = self.items.sample(session.rng)
            session.state["item"] = item
        return int(item)

    # -- generators ----------------------------------------------------------------

    def none(self, session: ClientSession) -> dict[str, str]:
        return {}

    def home(self, session: ClientSession) -> dict[str, str]:
        return {"c_id": str(self.own_customer(session))}

    def subject(self, session: ClientSession) -> dict[str, str]:
        subject = SUBJECTS[self.subjects.sample(session.rng)]
        session.state["subject"] = subject
        return {"subject": subject}

    def product_detail(self, session: ClientSession) -> dict[str, str]:
        return {"i_id": str(self.pick_item(session))}

    def search(self, session: ClientSession) -> dict[str, str]:
        kind = session.rng.choice(["author", "title", "subject"])
        if kind == "author":
            term = session.rng.choice(_LAST)
        elif kind == "title":
            term = session.rng.choice(_TITLE_WORDS)
        else:
            term = SUBJECTS[self.subjects.sample(session.rng)]
        return {"type": kind, "search": term}

    def order_display(self, session: ClientSession) -> dict[str, str]:
        return {"uname": f"user{self.own_customer(session)}"}

    def admin_item(self, session: ClientSession) -> dict[str, str]:
        return {"i_id": str(self.current_item(session))}

    def shopping_cart(self, session: ClientSession) -> dict[str, str]:
        params = {
            "i_id": str(self.current_item(session)),
            "qty": str(session.rng.randint(1, 3)),
            "c_id": str(self.own_customer(session)),
        }
        cart = session.state.get("cart")
        if cart is not None:
            params["sc_id"] = str(cart)
        session.state["cart_items"] = session.state.get("cart_items", 0) + 1
        return params

    def buy_request(self, session: ClientSession) -> dict[str, str] | None:
        cart = session.state.get("cart")
        if cart is None or not session.state.get("cart_items"):
            return None  # nothing to check out; the mix redraws
        return {"sc_id": str(cart), "c_id": str(self.own_customer(session))}

    def buy_confirm(self, session: ClientSession) -> dict[str, str] | None:
        cart = session.state.get("cart")
        if cart is None or not session.state.get("cart_items"):
            return None
        params = {"sc_id": str(cart), "c_id": str(self.own_customer(session))}
        # The order consumes the cart.
        session.state.pop("cart", None)
        session.state["cart_items"] = 0
        return params

    def admin_confirm(self, session: ClientSession) -> dict[str, str]:
        return {
            "i_id": str(self.current_item(session)),
            "cost": str(round(session.rng.uniform(5, 60), 2)),
            "image": f"img/new{session.requests_issued}.png",
        }


def shopping_mix(dataset: TpcwDataset) -> InteractionMix:
    """TPC-W's primary reporting mix (Figures 14/15/17/19)."""
    p = TpcwParamFactory(dataset)
    interactions = [
        Interaction("Home", "GET", "/tpcw/home", p.home, 16.2),
        Interaction(
            "NewProducts", "GET", "/tpcw/new_products", p.subject, 5.1
        ),
        Interaction(
            "BestSellers", "GET", "/tpcw/best_sellers", p.subject, 5.0
        ),
        Interaction(
            "ProductDetail", "GET", "/tpcw/product_detail", p.product_detail, 17.5
        ),
        Interaction(
            "SearchRequest", "GET", "/tpcw/search_request", p.none, 20.0
        ),
        Interaction(
            "SearchResults", "GET", "/tpcw/search_results", p.search, 17.0
        ),
        Interaction("OrderInquiry", "GET", "/tpcw/order_inquiry", p.none, 0.75),
        Interaction(
            "OrderDisplay", "GET", "/tpcw/order_display", p.order_display, 0.66
        ),
        Interaction(
            "CustomerRegistration",
            "GET",
            "/tpcw/customer_registration",
            p.none,
            3.0,
        ),
        Interaction(
            "AdminRequest", "GET", "/tpcw/admin_request", p.admin_item, 0.1
        ),
        # -- writes --
        Interaction(
            "ShoppingCart",
            "POST",
            "/tpcw/shopping_cart",
            p.shopping_cart,
            11.6,
            True,
        ),
        Interaction(
            "BuyRequest", "POST", "/tpcw/buy_request", p.buy_request, 2.6, True
        ),
        Interaction(
            "BuyConfirm", "POST", "/tpcw/buy_confirm", p.buy_confirm, 1.2, True
        ),
        Interaction(
            "AdminConfirm",
            "POST",
            "/tpcw/admin_confirm",
            p.admin_confirm,
            0.09,
            True,
        ),
    ]
    return InteractionMix("tpcw-shopping", interactions)


def browsing_mix(dataset: TpcwDataset) -> InteractionMix:
    """TPC-W browsing mix: ~95% reads (writes limited to carts)."""
    shopping = shopping_mix(dataset)
    weights = {
        "Home": 29.0, "NewProducts": 11.0, "BestSellers": 11.0,
        "ProductDetail": 21.0, "SearchRequest": 12.0, "SearchResults": 11.0,
        "OrderInquiry": 0.5, "OrderDisplay": 0.25,
        "CustomerRegistration": 0.8, "AdminRequest": 0.1,
        "ShoppingCart": 2.0, "BuyRequest": 0.6, "BuyConfirm": 0.7,
        "AdminConfirm": 0.1,
    }
    interactions = [
        Interaction(
            i.name, i.method, i.uri, i.params, weights[i.name], i.is_write
        )
        for i in shopping.interactions
    ]
    return InteractionMix("tpcw-browsing", interactions)
