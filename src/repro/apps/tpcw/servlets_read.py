"""TPC-W read-only web interactions.

Home, NewProducts, BestSellers, ProductDetail, SearchRequest,
SearchResults, OrderInquiry, OrderDisplay, CustomerRegistration,
AdminRequest.
"""

from __future__ import annotations

from repro.apps.html import begin_page, end_page, fragment, hole, write_table
from repro.apps.tpcw.base import TpcwServlet
from repro.db.dbapi import Statement
from repro.errors import ServletError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import require_parameter

#: Recency window (in order ids) for the best-seller aggregation; the
#: spec uses the 3333 most recent orders out of 259,200.
BESTSELLER_ORDER_WINDOW = 100
BESTSELLER_TOP_N = 50


class Home(TpcwServlet):
    """Personalised greeting + promotions + *random ad banner*.

    The banner and the randomly drawn promotional items make this page
    non-reproducible from the request alone: hidden state.  The paper
    marks HomeInteraction uncacheable for exactly this reason; the
    fragment declarations below recover the cacheable spans -- the
    greeting (pure function of ``c_id``) and each promoted item's link
    (pure function of ``i_id``) -- while the banner and the random item
    *selection* stay holes, recomputed per request.
    """

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        c_id = request.get_int("c_id")
        statement = self.statement()
        begin_page(response, "TPC-W: Welcome to the online bookstore")
        hole(
            response,
            "tpcw/ad",
            lambda: response.write(self._ads.next_banner()),
        )
        if c_id is not None:
            fragment(
                response,
                "tpcw/greeting",
                {"c_id": str(c_id)},
                lambda: self._write_greeting(response, statement, c_id),
            )
        response.write("<h2>Today's picks</h2><ul>")
        hole(
            response,
            "tpcw/promos",
            lambda: self._write_promos(response, statement),
        )
        response.write("</ul>")
        end_page(response)

    def _write_greeting(
        self, response, statement: Statement, c_id: int
    ) -> None:
        customer = statement.execute_query(
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?", (c_id,)
        )
        if customer.next():
            response.write(
                f"<p>Hello {customer.get('c_fname')} "
                f"{customer.get('c_lname')}!</p>"
            )

    def _write_promos(self, response, statement: Statement) -> None:
        # The *selection* is hidden state (a random draw), but each
        # selected item's link is a pure function of its id: a
        # cacheable fragment inside the hole.
        for i_id in self._ads.promotional_items():
            fragment(
                response,
                "tpcw/item_link",
                {"i_id": str(i_id)},
                lambda i_id=i_id: self._write_item_link(
                    response, statement, i_id
                ),
            )

    def _write_item_link(
        self, response, statement: Statement, i_id: int
    ) -> None:
        title = statement.execute_query(
            "SELECT i_title FROM item WHERE i_id = ?", (i_id,)
        )
        response.write(
            f"<li><a href='/tpcw/product_detail?i_id={i_id}'>"
            f"{title.scalar()}</a></li>"
        )


class NewProducts(TpcwServlet):
    """Newest items in one subject."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        subject = require_parameter(request, "subject")
        statement = self.statement()
        result = statement.execute_query(
            "SELECT item.i_id, item.i_title, item.i_pub_date, item.i_srp, "
            "author.a_fname, author.a_lname "
            "FROM item, author "
            "WHERE item.i_subject = ? AND item.i_a_id = author.a_id "
            "ORDER BY item.i_pub_date DESC, item.i_title LIMIT 50",
            (subject,),
        )
        begin_page(response, f"TPC-W: New products in {subject}")
        write_table(
            response,
            ["Title", "Author", "Price"],
            [
                [
                    f"<a href='/tpcw/product_detail?i_id={row['i_id']}'>"
                    f"{row['i_title']}</a>",
                    f"{row['a_fname']} {row['a_lname']}",
                    row["i_srp"],
                ]
                for row in result.all_dicts()
            ],
        )
        end_page(response)


class BestSellers(TpcwServlet):
    """Top sellers in one subject over the most recent orders.

    The most expensive read in TPC-W (an aggregation over the order_line
    join).  Per spec clauses 3.1.4.1/6.3.3.1 the response may ignore
    changes committed within the last 30 seconds -- the semantic window
    the Figure 15 experiment exploits.
    """

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        subject = require_parameter(request, "subject")
        statement = self.statement()
        newest = statement.execute_query("SELECT MAX(o_id) FROM orders")
        horizon = int(newest.scalar() or 0) - BESTSELLER_ORDER_WINDOW
        result = statement.execute_query(
            "SELECT item.i_id, item.i_title, SUM(order_line.ol_qty) AS sold "
            "FROM order_line, item "
            "WHERE order_line.ol_i_id = item.i_id "
            "AND item.i_subject = ? AND order_line.ol_o_id > ? "
            "GROUP BY item.i_id, item.i_title "
            "ORDER BY sold DESC, i_id LIMIT ?",
            (subject, horizon, BESTSELLER_TOP_N),
        )
        begin_page(response, f"TPC-W: Best sellers in {subject}")
        write_table(
            response,
            ["Title", "Copies sold"],
            [
                [
                    f"<a href='/tpcw/product_detail?i_id={row['i_id']}'>"
                    f"{row['i_title']}</a>",
                    row["sold"],
                ]
                for row in result.all_dicts()
            ],
        )
        end_page(response)


class ProductDetail(TpcwServlet):
    """One book's full detail page."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        i_id = int(require_parameter(request, "i_id"))
        statement = self.statement()
        item = statement.execute_query(
            "SELECT * FROM item WHERE i_id = ?", (i_id,)
        )
        if not item.next():
            raise ServletError(f"no item {i_id}")
        author = statement.execute_query(
            "SELECT a_fname, a_lname FROM author WHERE a_id = ?",
            (item.get("i_a_id"),),
        )
        author.next()
        begin_page(response, f"TPC-W: {item.get('i_title')}")
        response.write(
            f"<p>by {author.get('a_fname')} {author.get('a_lname')}</p>"
            f"<p>{item.get('i_desc')}</p>"
            f"<img src='{item.get('i_thumbnail')}'>"
        )
        write_table(
            response,
            ["Subject", "List price", "Our price", "In stock", "Published"],
            [
                [
                    item.get("i_subject"),
                    item.get("i_srp"),
                    item.get("i_cost"),
                    item.get("i_stock"),
                    item.get("i_pub_date"),
                ]
            ],
        )
        end_page(response)


class SearchRequest(TpcwServlet):
    """Search form with a *random ad banner* (hidden state).

    The banner is a hole; the (static) form is a cacheable fragment.
    """

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "TPC-W: Search")
        hole(
            response,
            "tpcw/ad",
            lambda: response.write(self._ads.next_banner()),
        )
        fragment(
            response,
            "tpcw/search_form",
            {},
            lambda: self._write_form(response),
        )
        end_page(response)

    def _write_form(self, response) -> None:
        response.write(
            "<form action='/tpcw/search_results'>"
            "<select name='type'><option>author</option>"
            "<option>title</option><option>subject</option></select>"
            "<input name='search'><input type='submit'></form>"
        )


class SearchResults(TpcwServlet):
    """Execute a search by author, title, or subject."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        search_type = require_parameter(request, "type")
        term = require_parameter(request, "search")
        statement = self.statement()
        if search_type == "author":
            # Authors first: the small table carries the filter, items
            # join through the i_a_id index.
            result = statement.execute_query(
                "SELECT item.i_id, item.i_title, author.a_fname, author.a_lname "
                "FROM author, item "
                "WHERE author.a_lname LIKE ? AND item.i_a_id = author.a_id "
                "ORDER BY item.i_title LIMIT 50",
                (f"{term}%",),
            )
        elif search_type == "title":
            result = statement.execute_query(
                "SELECT item.i_id, item.i_title, author.a_fname, author.a_lname "
                "FROM item, author "
                "WHERE item.i_a_id = author.a_id AND item.i_title LIKE ? "
                "ORDER BY item.i_title LIMIT 50",
                (f"{term}%",),
            )
        elif search_type == "subject":
            result = statement.execute_query(
                "SELECT item.i_id, item.i_title, author.a_fname, author.a_lname "
                "FROM item, author "
                "WHERE item.i_a_id = author.a_id AND item.i_subject = ? "
                "ORDER BY item.i_title LIMIT 50",
                (term,),
            )
        else:
            raise ServletError(f"unknown search type {search_type!r}")
        begin_page(response, f"TPC-W: Search results for {term}")
        write_table(
            response,
            ["Title", "Author"],
            [
                [
                    f"<a href='/tpcw/product_detail?i_id={row['i_id']}'>"
                    f"{row['i_title']}</a>",
                    f"{row['a_fname']} {row['a_lname']}",
                ]
                for row in result.all_dicts()
            ],
        )
        end_page(response)


class OrderInquiry(TpcwServlet):
    """Order-lookup login form; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "TPC-W: Order inquiry")
        response.write(
            "<form action='/tpcw/order_display'>"
            "Username: <input name='uname'> Password: "
            "<input name='passwd' type='password'><input type='submit'></form>"
        )
        end_page(response)


class OrderDisplay(TpcwServlet):
    """Display the customer's most recent order."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        uname = require_parameter(request, "uname")
        statement = self.statement()
        customer = statement.execute_query(
            "SELECT c_id, c_fname, c_lname FROM customer WHERE c_uname = ?",
            (uname,),
        )
        if not customer.next():
            raise ServletError(f"no customer {uname!r}")
        c_id = customer.get("c_id")
        order = statement.execute_query(
            "SELECT o_id, o_date, o_total, o_status FROM orders "
            "WHERE o_c_id = ? ORDER BY o_date DESC, o_id DESC LIMIT 1",
            (c_id,),
        )
        begin_page(response, f"TPC-W: Most recent order for {uname}")
        if not order.next():
            response.write("<p>No orders on file.</p>")
            end_page(response)
            return
        o_id = order.get("o_id")
        lines = statement.execute_query(
            "SELECT item.i_title, order_line.ol_qty "
            "FROM order_line, item "
            "WHERE order_line.ol_o_id = ? AND order_line.ol_i_id = item.i_id "
            "ORDER BY item.i_title",
            (o_id,),
        )
        payment = statement.execute_query(
            "SELECT cx_type, cx_amount FROM cc_xacts WHERE cx_o_id = ?",
            (o_id,),
        )
        response.write(
            f"<p>Order {o_id}: total {order.get('o_total')}, "
            f"status {order.get('o_status')}</p>"
        )
        write_table(
            response,
            ["Title", "Qty"],
            [[row["i_title"], row["ol_qty"]] for row in lines.all_dicts()],
        )
        if payment.next():
            response.write(
                f"<p>Paid by {payment.get('cx_type')}: "
                f"{payment.get('cx_amount')}</p>"
            )
        end_page(response)


class CustomerRegistration(TpcwServlet):
    """Registration form; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "TPC-W: Customer registration")
        response.write(
            "<form action='/tpcw/buy_request' method='post'>"
            "First: <input name='fname'> Last: <input name='lname'>"
            "<input type='submit'></form>"
        )
        end_page(response)


class AdminRequest(TpcwServlet):
    """Admin item-edit form showing current values."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        i_id = int(require_parameter(request, "i_id"))
        statement = self.statement()
        item = statement.execute_query(
            "SELECT i_title, i_cost, i_thumbnail FROM item WHERE i_id = ?",
            (i_id,),
        )
        if not item.next():
            raise ServletError(f"no item {i_id}")
        begin_page(response, f"TPC-W: Admin edit {item.get('i_title')}")
        response.write(
            f"<form action='/tpcw/admin_confirm' method='post'>"
            f"<input type='hidden' name='i_id' value='{i_id}'>"
            f"Cost: <input name='cost' value='{item.get('i_cost')}'>"
            f" Image: <input name='image' value='{item.get('i_thumbnail')}'>"
            "<input type='submit'></form>"
        )
        end_page(response)
