"""TPC-W application assembly: database + container + servlet routing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.tpcw import servlets_read, servlets_write
from repro.apps.tpcw.base import AdRotator
from repro.apps.tpcw.data import TpcwDataset, populate_tpcw
from repro.apps.tpcw.schema import create_tpcw_schema
from repro.cache.semantics import SemanticsRegistry
from repro.db import Database, connect
from repro.db.dbapi import Connection
from repro.web.container import ServletContainer

#: URI -> (servlet class, is_write) for all 14 interactions.
INTERACTIONS: dict[str, tuple[type, bool]] = {
    "/tpcw/home": (servlets_read.Home, False),
    "/tpcw/new_products": (servlets_read.NewProducts, False),
    "/tpcw/best_sellers": (servlets_read.BestSellers, False),
    "/tpcw/product_detail": (servlets_read.ProductDetail, False),
    "/tpcw/search_request": (servlets_read.SearchRequest, False),
    "/tpcw/search_results": (servlets_read.SearchResults, False),
    "/tpcw/order_inquiry": (servlets_read.OrderInquiry, False),
    "/tpcw/order_display": (servlets_read.OrderDisplay, False),
    "/tpcw/customer_registration": (servlets_read.CustomerRegistration, False),
    "/tpcw/admin_request": (servlets_read.AdminRequest, False),
    "/tpcw/shopping_cart": (servlets_write.ShoppingCart, True),
    "/tpcw/buy_request": (servlets_write.BuyRequest, True),
    "/tpcw/buy_confirm": (servlets_write.BuyConfirm, True),
    "/tpcw/admin_confirm": (servlets_write.AdminConfirm, True),
}

#: Interactions embedding hidden state (random ad banners): the paper
#: marks these uncacheable (Section 4.3, Figure 17).
HIDDEN_STATE_URIS = ("/tpcw/home", "/tpcw/search_request")

#: The BestSeller dirty-read window from TPC-W spec 3.1.4.1 / 6.3.3.1.
BEST_SELLER_WINDOW_SECONDS = 30.0


@dataclass
class TpcwApplication:
    """A fully assembled TPC-W instance."""

    database: Database
    connection: Connection
    container: ServletContainer
    dataset: TpcwDataset
    ads: AdRotator

    @property
    def servlet_classes(self) -> list[type]:
        return self.container.servlet_classes

    @property
    def read_uris(self) -> list[str]:
        return [uri for uri, (_cls, write) in INTERACTIONS.items() if not write]

    @property
    def write_uris(self) -> list[str]:
        return [uri for uri, (_cls, write) in INTERACTIONS.items() if write]


def build_tpcw(
    dataset: TpcwDataset | None = None, ad_seed: int | None = None
) -> TpcwApplication:
    """Create, populate and route a TPC-W instance.

    The ad rotator is seeded from the dataset seed unless ``ad_seed``
    overrides it: an unseeded rotator (OS entropy) made differential
    and stress runs non-reproducible across processes, since the only
    source of nondeterminism in the whole application was the banner
    draw.
    """
    dataset = dataset or TpcwDataset()
    database = Database("tpcw")
    create_tpcw_schema(database)
    populate_tpcw(database, dataset)
    connection = connect(database)
    if ad_seed is None:
        ad_seed = dataset.seed
    ads = AdRotator(ad_seed, n_items=dataset.n_items)
    container = ServletContainer()
    for uri, (servlet_class, _is_write) in INTERACTIONS.items():
        container.register(uri, servlet_class(connection, ads))
    return TpcwApplication(
        database=database,
        connection=connection,
        container=container,
        dataset=dataset,
        ads=ads,
    )


def standard_semantics(use_best_seller_window: bool = False) -> SemanticsRegistry:
    """The paper's TPC-W cache configuration.

    Always marks the hidden-state pages whole-page uncacheable;
    optionally enables the BestSeller 30-second window (the Figure 15
    optimisation).  The hidden-state pages are marked *fragmented*
    rather than plainly uncacheable: their servlets declare fragment
    boundaries, so with the fragment aspect installed their cacheable
    spans (greeting, item links, search form) are cached per-fragment
    while the ad banner stays a per-request hole.
    """
    registry = SemanticsRegistry()
    for uri in HIDDEN_STATE_URIS:
        registry.mark_fragmented(uri)
    if use_best_seller_window:
        registry.set_ttl_window("/tpcw/best_sellers", BEST_SELLER_WINDOW_SECONDS)
    return registry
