"""Synthetic TPC-W population.

Scaled down from the spec's 10k-item / 288k-customer configuration to
in-memory-simulation sizes while preserving the ratios that matter to
caching: ~24 subjects, orders with several lines each (feeding the
BestSellers aggregation), and customers with order history (feeding
OrderDisplay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db import Database

SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SCIENCE", "SCIFI", "SELF-HELP", "SPORTS", "TRAVEL", "YOUTH",
]

_FIRST = ["JOHN", "MARY", "WEI", "ANNA", "LUIS", "SARA", "OMAR", "NINA"]
_LAST = ["DOE", "SMITH", "CHEN", "GARCIA", "SILVA", "KHAN", "MEYER", "ROSSI"]
_TITLE_WORDS = [
    "SECRET", "HISTORY", "NIGHT", "GARDEN", "STONE", "RIVER", "WINTER",
    "LETTERS", "SHADOW", "CROWN", "JOURNEY", "SILENCE", "FIRE", "MAPS",
]
_COUNTRIES = ["United States", "France", "Switzerland", "India", "Japan"]


@dataclass
class TpcwDataset:
    """Population parameters and resulting counts."""

    n_items: int = 500
    n_customers: int = 200
    n_authors: int = 60
    n_orders: int = 250
    lines_per_order: int = 3
    seed: int = 19990101
    base_time: float = 0.0

    n_subjects: int = len(SUBJECTS)
    n_order_lines: int = 0
    n_carts: int = 0


def populate_tpcw(db: Database, dataset: TpcwDataset) -> TpcwDataset:
    """Fill ``db`` with a deterministic synthetic population."""
    rng = random.Random(dataset.seed)

    db.insert_rows(
        "country",
        [{"co_id": i, "co_name": name} for i, name in enumerate(_COUNTRIES)],
    )
    db.insert_rows(
        "address",
        [
            {
                "addr_id": i,
                "addr_street": f"{i} Main St",
                "addr_city": f"City{i % 40}",
                "addr_co_id": i % len(_COUNTRIES),
            }
            for i in range(dataset.n_customers)
        ],
    )
    db.insert_rows(
        "author",
        [
            {
                "a_id": i,
                "a_fname": rng.choice(_FIRST),
                "a_lname": f"{rng.choice(_LAST)}{i}",
            }
            for i in range(dataset.n_authors)
        ],
    )
    db.insert_rows(
        "customer",
        [
            {
                "c_id": i,
                "c_uname": f"user{i}",
                "c_passwd": f"pw{i}",
                "c_fname": rng.choice(_FIRST),
                "c_lname": rng.choice(_LAST),
                "c_addr_id": i,
                "c_discount": round(rng.uniform(0.0, 0.5), 2),
                "c_since": dataset.base_time,
            }
            for i in range(dataset.n_customers)
        ],
    )

    items = []
    for i in range(dataset.n_items):
        srp = round(rng.uniform(5, 80), 2)
        title = " ".join(rng.sample(_TITLE_WORDS, 3)) + f" {i}"
        items.append(
            {
                "i_id": i,
                "i_title": title,
                "i_a_id": rng.randrange(dataset.n_authors),
                "i_pub_date": dataset.base_time - rng.uniform(0, 3650) * 86400,
                "i_subject": SUBJECTS[i % len(SUBJECTS)],
                "i_desc": f"Description of book {i}. " * 4,
                "i_cost": round(srp * 0.8, 2),
                "i_srp": srp,
                "i_stock": rng.randint(10, 30),
                "i_thumbnail": f"img/{i}.png",
            }
        )
    db.insert_rows("item", items)

    orders = []
    order_lines = []
    cc = []
    line_id = 0
    for o_id in range(dataset.n_orders):
        c_id = rng.randrange(dataset.n_customers)
        total = 0.0
        for _ in range(dataset.lines_per_order):
            i_id = rng.randrange(dataset.n_items)
            qty = rng.randint(1, 4)
            order_lines.append(
                {
                    "ol_id": line_id,
                    "ol_o_id": o_id,
                    "ol_i_id": i_id,
                    "ol_qty": qty,
                    "ol_discount": 0.0,
                }
            )
            total += qty * float(items[i_id]["i_cost"])  # type: ignore[arg-type]
            line_id += 1
        orders.append(
            {
                "o_id": o_id,
                "o_c_id": c_id,
                "o_date": dataset.base_time - rng.uniform(0, 90) * 86400,
                "o_total": round(total, 2),
                "o_status": "SHIPPED",
            }
        )
        cc.append({"cx_o_id": o_id, "cx_type": "VISA", "cx_amount": round(total, 2)})
    db.insert_rows("orders", orders)
    db.insert_rows("order_line", order_lines)
    db.insert_rows("cc_xacts", cc)

    dataset.n_order_lines = line_id
    dataset.n_carts = 0
    return dataset
