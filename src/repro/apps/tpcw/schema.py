"""TPC-W database schema (trimmed to the columns the interactions use)."""

from __future__ import annotations

from repro.db import Column, ColumnType, Database, TableSchema

INT = ColumnType.INT
FLOAT = ColumnType.FLOAT
VARCHAR = ColumnType.VARCHAR
DATETIME = ColumnType.DATETIME


def create_tpcw_schema(db: Database) -> None:
    """Create every TPC-W table in ``db``."""
    db.create_table(
        TableSchema(
            "country",
            [Column("co_id", INT), Column("co_name", VARCHAR)],
            primary_key="co_id",
        )
    )
    db.create_table(
        TableSchema(
            "address",
            [
                Column("addr_id", INT),
                Column("addr_street", VARCHAR),
                Column("addr_city", VARCHAR),
                Column("addr_co_id", INT),
            ],
            primary_key="addr_id",
        )
    )
    db.create_table(
        TableSchema(
            "author",
            [
                Column("a_id", INT),
                Column("a_fname", VARCHAR),
                Column("a_lname", VARCHAR),
            ],
            primary_key="a_id",
            indexes=["a_lname"],
        )
    )
    db.create_table(
        TableSchema(
            "customer",
            [
                Column("c_id", INT),
                Column("c_uname", VARCHAR),
                Column("c_passwd", VARCHAR),
                Column("c_fname", VARCHAR),
                Column("c_lname", VARCHAR),
                Column("c_addr_id", INT),
                Column("c_discount", FLOAT),
                Column("c_since", DATETIME),
            ],
            primary_key="c_id",
            indexes=["c_uname"],
        )
    )
    db.create_table(
        TableSchema(
            "item",
            [
                Column("i_id", INT),
                Column("i_title", VARCHAR),
                Column("i_a_id", INT),
                Column("i_pub_date", DATETIME),
                Column("i_subject", VARCHAR),
                Column("i_desc", VARCHAR),
                Column("i_cost", FLOAT),
                Column("i_srp", FLOAT),
                Column("i_stock", INT),
                Column("i_thumbnail", VARCHAR),
            ],
            primary_key="i_id",
            indexes=["i_subject", "i_a_id", "i_title"],
        )
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("o_id", INT),
                Column("o_c_id", INT),
                Column("o_date", DATETIME),
                Column("o_total", FLOAT),
                Column("o_status", VARCHAR),
            ],
            primary_key="o_id",
            indexes=["o_c_id"],
        )
    )
    db.create_table(
        TableSchema(
            "order_line",
            [
                Column("ol_id", INT),
                Column("ol_o_id", INT),
                Column("ol_i_id", INT),
                Column("ol_qty", INT),
                Column("ol_discount", FLOAT),
            ],
            primary_key="ol_id",
            indexes=["ol_o_id", "ol_i_id"],
        )
    )
    db.create_table(
        TableSchema(
            "cc_xacts",
            [
                Column("cx_o_id", INT),
                Column("cx_type", VARCHAR),
                Column("cx_amount", FLOAT),
            ],
            primary_key="cx_o_id",
        )
    )
    db.create_table(
        TableSchema(
            "shopping_cart",
            [
                Column("sc_id", INT),
                Column("sc_c_id", INT),
                Column("sc_date", DATETIME),
                Column("sc_sub_total", FLOAT),
            ],
            primary_key="sc_id",
            indexes=["sc_c_id"],
        )
    )
    db.create_table(
        TableSchema(
            "shopping_cart_line",
            [
                Column("scl_id", INT),
                Column("scl_sc_id", INT),
                Column("scl_i_id", INT),
                Column("scl_qty", INT),
            ],
            primary_key="scl_id",
            indexes=["scl_sc_id"],
        )
    )
