"""TPC-W: the online-bookstore benchmark (14 web interactions).

Follows the TPC-W v1.8 specification at the fidelity the cache
observes, including the two semantic quirks the paper leans on:

- Home and SearchRequest embed a *random ad banner* (hidden state), so
  they must be marked uncacheable (Figure 17);
- BestSellers may serve data up to 30 seconds stale (spec clauses
  3.1.4.1 / 6.3.3.1), enabling the TTL-window optimisation (Figure 15).
"""

from repro.apps.tpcw.app import TpcwApplication, build_tpcw
from repro.apps.tpcw.schema import create_tpcw_schema
from repro.apps.tpcw.data import TpcwDataset, populate_tpcw

__all__ = [
    "TpcwApplication",
    "build_tpcw",
    "create_tpcw_schema",
    "TpcwDataset",
    "populate_tpcw",
]
