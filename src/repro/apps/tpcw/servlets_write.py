"""TPC-W write web interactions.

ShoppingCart, BuyRequest, BuyConfirm, AdminConfirm.
"""

from __future__ import annotations

from repro.apps.html import begin_page, end_page, write_table
from repro.apps.tpcw.base import TpcwServlet
from repro.db.dbapi import Statement
from repro.errors import ServletError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import require_parameter


def _render_cart(
    statement: Statement, response: HttpResponse, sc_id: int
) -> float:
    """Write the cart contents table; returns the subtotal."""
    lines = statement.execute_query(
        "SELECT item.i_title, item.i_cost, shopping_cart_line.scl_qty "
        "FROM shopping_cart_line, item "
        "WHERE shopping_cart_line.scl_sc_id = ? "
        "AND shopping_cart_line.scl_i_id = item.i_id "
        "ORDER BY item.i_title",
        (sc_id,),
    )
    rows = lines.all_dicts()
    subtotal = sum(
        float(row["i_cost"]) * int(row["scl_qty"]) for row in rows  # type: ignore[arg-type]
    )
    write_table(
        response,
        ["Title", "Price", "Qty"],
        [[row["i_title"], row["i_cost"], row["scl_qty"]] for row in rows],
    )
    response.write(f"<p>Subtotal: {round(subtotal, 2)}</p>")
    return subtotal


class ShoppingCart(TpcwServlet):
    """Create a cart / add an item / update a quantity, then display it."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        statement = self.statement()
        sc_id = request.get_int("sc_id")
        if sc_id is None:
            statement.execute_update(
                "INSERT INTO shopping_cart (sc_c_id, sc_date, sc_sub_total) "
                "VALUES (?, ?, ?)",
                (request.get_int("c_id", -1), 0.0, 0.0),
            )
            sc_id = int(statement.generated_key())  # type: ignore[arg-type]
        i_id = request.get_int("i_id")
        if i_id is not None:
            qty = request.get_int("qty", 1) or 1
            existing = statement.execute_query(
                "SELECT scl_id, scl_qty FROM shopping_cart_line "
                "WHERE scl_sc_id = ? AND scl_i_id = ?",
                (sc_id, i_id),
            )
            if existing.next():
                statement.execute_update(
                    "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_id = ?",
                    (int(existing.get("scl_qty")) + qty, existing.get("scl_id")),
                )
            else:
                statement.execute_update(
                    "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, "
                    "scl_qty) VALUES (?, ?, ?)",
                    (sc_id, i_id, qty),
                )
        begin_page(response, f"TPC-W: Shopping cart {sc_id}")
        subtotal = _render_cart(statement, response, sc_id)
        statement.execute_update(
            "UPDATE shopping_cart SET sc_sub_total = ? WHERE sc_id = ?",
            (round(subtotal, 2), sc_id),
        )
        response.write(
            f"<form action='/tpcw/buy_request' method='post'>"
            f"<input type='hidden' name='sc_id' value='{sc_id}'>"
            "Customer id: <input name='c_id'><input type='submit' "
            "value='Checkout'></form>"
        )
        end_page(response)


class BuyRequest(TpcwServlet):
    """Associate the cart with a customer and show billing details."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        sc_id = int(require_parameter(request, "sc_id"))
        c_id = int(require_parameter(request, "c_id"))
        statement = self.statement()
        customer = statement.execute_query(
            "SELECT c_fname, c_lname, c_discount FROM customer WHERE c_id = ?",
            (c_id,),
        )
        if not customer.next():
            raise ServletError(f"no customer {c_id}")
        statement.execute_update(
            "UPDATE shopping_cart SET sc_c_id = ? WHERE sc_id = ?",
            (c_id, sc_id),
        )
        begin_page(response, "TPC-W: Confirm purchase")
        response.write(
            f"<p>Billing {customer.get('c_fname')} {customer.get('c_lname')} "
            f"(discount {customer.get('c_discount')})</p>"
        )
        _render_cart(statement, response, sc_id)
        response.write(
            f"<form action='/tpcw/buy_confirm' method='post'>"
            f"<input type='hidden' name='sc_id' value='{sc_id}'>"
            f"<input type='hidden' name='c_id' value='{c_id}'>"
            "<input type='submit' value='Buy'></form>"
        )
        end_page(response)


class BuyConfirm(TpcwServlet):
    """Turn the cart into an order: the heavyweight TPC-W write."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        sc_id = int(require_parameter(request, "sc_id"))
        c_id = int(require_parameter(request, "c_id"))
        statement = self.statement()
        lines = statement.execute_query(
            "SELECT shopping_cart_line.scl_i_id, shopping_cart_line.scl_qty, "
            "item.i_cost "
            "FROM shopping_cart_line, item "
            "WHERE shopping_cart_line.scl_sc_id = ? "
            "AND shopping_cart_line.scl_i_id = item.i_id",
            (sc_id,),
        ).all_dicts()
        if not lines:
            raise ServletError(f"cart {sc_id} is empty")
        total = round(
            sum(float(l["i_cost"]) * int(l["scl_qty"]) for l in lines), 2  # type: ignore[arg-type]
        )
        statement.execute_update(
            "INSERT INTO orders (o_c_id, o_date, o_total, o_status) "
            "VALUES (?, ?, ?, ?)",
            (c_id, 0.0, total, "PENDING"),
        )
        o_id = int(statement.generated_key())  # type: ignore[arg-type]
        for line in lines:
            statement.execute_update(
                "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, "
                "ol_discount) VALUES (?, ?, ?, ?)",
                (o_id, line["scl_i_id"], line["scl_qty"], 0.0),
            )
            statement.execute_update(
                "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?",
                (line["scl_qty"], line["scl_i_id"]),
            )
        statement.execute_update(
            "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_amount) "
            "VALUES (?, ?, ?)",
            (o_id, "VISA", total),
        )
        statement.execute_update(
            "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?", (sc_id,)
        )
        statement.execute_update(
            "DELETE FROM shopping_cart WHERE sc_id = ?", (sc_id,)
        )
        begin_page(response, "TPC-W: Order placed")
        response.write(f"<p>Order {o_id} placed, total {total}.</p>")
        end_page(response)


class AdminConfirm(TpcwServlet):
    """Apply the admin's item update (cost, image, publication date)."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        i_id = int(require_parameter(request, "i_id"))
        cost = float(require_parameter(request, "cost"))
        image = request.get_parameter("image", "img/default.png") or ""
        statement = self.statement()
        affected = statement.execute_update(
            "UPDATE item SET i_cost = ?, i_thumbnail = ?, i_pub_date = ? "
            "WHERE i_id = ?",
            (cost, image, 1.0, i_id),
        )
        if not affected:
            raise ServletError(f"no item {i_id}")
        begin_page(response, "TPC-W: Item updated")
        response.write(f"<p>Item {i_id} now costs {cost}.</p>")
        end_page(response)
