"""Shared infrastructure for TPC-W servlets."""

from __future__ import annotations

import random

from repro.db.dbapi import Connection, Statement
from repro.web.servlet import HttpServlet


class AdRotator:
    """Random advertisement banners: the paper's *hidden state*.

    Pages embedding a banner differ between identical requests, which is
    why Home and SearchRequest must be marked uncacheable (Section 4.3,
    "The Hidden State Problem"; Figure 17).  The rotator deliberately
    lives outside the request: its RNG is application state invisible to
    the URI+parameters cache key.
    """

    BANNERS = [
        "BUY MORE BOOKS!", "FREE SHIPPING TODAY", "JOIN OUR BOOK CLUB",
        "50% OFF BESTSELLERS", "NEW ARRIVALS WEEKLY", "GIFT CARDS INSIDE",
    ]

    def __init__(self, seed: int | None = None, n_items: int = 1) -> None:
        self._rng = random.Random(seed)
        #: Catalogue size, set by the application assembly; the rotator
        #: draws promotional item ids from it (TPC-W's I_RELATED role).
        self.n_items = max(1, n_items)

    def next_banner(self) -> str:
        index = self._rng.randrange(len(self.BANNERS))
        return f"<div class='ad' data-n='{self._rng.randrange(10**9)}'>" \
               f"{self.BANNERS[index]}</div>"

    def promotional_items(self, count: int = 5) -> list[int]:
        """Random item ids for the Home page's promotions."""
        return [self._rng.randrange(self.n_items) for _ in range(count)]


class TpcwServlet(HttpServlet):
    """Servlet holding the shared connection and ad rotator.

    As with RUBiS, there is no caching code below: AutoWebCache is
    woven around these classes.
    """

    def __init__(self, connection: Connection, ads: AdRotator) -> None:
        self._connection = connection
        self._ads = ads

    def statement(self) -> Statement:
        return self._connection.create_statement()
