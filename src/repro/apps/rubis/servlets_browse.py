"""RUBiS browse/search interactions (read-only).

Home, Browse, BrowseCategories, BrowseRegions, BrowseCategoriesInRegion,
SearchItemsByCategory, SearchItemsByRegion.
"""

from __future__ import annotations

from repro.apps.html import begin_page, end_page, fragment, write_table
from repro.apps.rubis.base import RubisServlet
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import require_parameter

ITEMS_PER_PAGE = 25

_ITEM_COLUMNS = ["id", "name", "initial_price", "max_bid", "nb_of_bids", "end_date"]


class Home(RubisServlet):
    """Landing page; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: Welcome")
        response.write(
            "<p>Welcome to RUBiS, an auction site.</p>"
            "<p><a href='/rubis/browse'>Browse</a> | "
            "<a href='/rubis/sell'>Sell</a> | "
            "<a href='/rubis/register'>Register</a></p>"
        )
        end_page(response)


class Browse(RubisServlet):
    """Browse hub page; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: Browse")
        response.write(
            "<p><a href='/rubis/browse_categories'>Browse all categories</a></p>"
            "<p><a href='/rubis/browse_regions'>Browse all regions</a></p>"
        )
        end_page(response)


class BrowseCategories(RubisServlet):
    """List every category (Figure 16's near-100%-hit request).

    The full-scan category listing is declared as a fragment: the table
    body caches once and every page embedding it (this one included)
    dies through the containment closure when a category changes,
    instead of each carrying its own full-scan dependency.
    """

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: All categories")
        fragment(
            response,
            "rubis/category_table",
            {},
            lambda: self._write_categories(response),
        )
        end_page(response)

    def _write_categories(self, response) -> None:
        rows = [
            (
                f"<a href='/rubis/search_items_by_category?category={row['id']}'>"
                f"{row['name']}</a>",
            )
            for row in self._catalogue.categories()
        ]
        write_table(response, ["Category"], rows)


class BrowseRegions(RubisServlet):
    """List every region."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: All regions")
        fragment(
            response,
            "rubis/region_table",
            {},
            lambda: self._write_regions(response),
        )
        end_page(response)

    def _write_regions(self, response) -> None:
        rows = [
            (
                f"<a href='/rubis/browse_categories_in_region?region={row['id']}'>"
                f"{row['name']}</a>",
            )
            for row in self._catalogue.regions()
        ]
        write_table(response, ["Region"], rows)


class BrowseCategoriesInRegion(RubisServlet):
    """Categories listing scoped to one region.

    The region-name lookup is the page's own (indexable) dependency;
    the category table is a per-region fragment over the shared
    catalogue scan.
    """

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        region_id = int(require_parameter(request, "region"))
        statement = self.statement()
        region = statement.execute_query(
            "SELECT name FROM regions WHERE id = ?", (region_id,)
        )
        region_name = region.scalar() or "unknown region"
        begin_page(response, f"RUBiS: Categories in {region_name}")
        fragment(
            response,
            "rubis/region_categories",
            {"region": str(region_id)},
            lambda: self._write_region_categories(response, region_id),
        )
        end_page(response)

    def _write_region_categories(self, response, region_id: int) -> None:
        rows = [
            (
                f"<a href='/rubis/search_items_by_region?region={region_id}"
                f"&category={row['id']}'>{row['name']}</a>",
            )
            for row in self._catalogue.categories()
        ]
        write_table(response, ["Category"], rows)


class SearchItemsByCategory(RubisServlet):
    """Current auctions in one category, paginated."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        category = int(require_parameter(request, "category"))
        page = request.get_int("page", 0) or 0
        statement = self.statement()
        result = statement.execute_query(
            "SELECT id, name, initial_price, max_bid, nb_of_bids, end_date "
            "FROM items WHERE category = ? "
            "ORDER BY end_date LIMIT ? OFFSET ?",
            (category, ITEMS_PER_PAGE, page * ITEMS_PER_PAGE),
        )
        begin_page(response, f"RUBiS: Items in category {category}")
        write_table(
            response,
            _ITEM_COLUMNS,
            [[row[c] for c in _ITEM_COLUMNS] for row in result.all_dicts()],
        )
        end_page(response)


class SearchItemsByRegion(RubisServlet):
    """Current auctions in one category sold from one region."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        category = int(require_parameter(request, "category"))
        region = int(require_parameter(request, "region"))
        page = request.get_int("page", 0) or 0
        statement = self.statement()
        result = statement.execute_query(
            "SELECT items.id, items.name, items.initial_price, items.max_bid, "
            "items.nb_of_bids, items.end_date "
            "FROM items, users "
            "WHERE items.seller = users.id AND users.region = ? "
            "AND items.category = ? "
            "ORDER BY items.end_date LIMIT ? OFFSET ?",
            (region, category, ITEMS_PER_PAGE, page * ITEMS_PER_PAGE),
        )
        begin_page(
            response, f"RUBiS: Items in category {category}, region {region}"
        )
        write_table(
            response,
            _ITEM_COLUMNS,
            [[row[c] for c in _ITEM_COLUMNS] for row in result.all_dicts()],
        )
        end_page(response)
