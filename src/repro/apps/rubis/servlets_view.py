"""RUBiS view interactions (read-only).

ViewItem, ViewBidHistory, ViewUserInfo, AboutMe.
"""

from __future__ import annotations

from repro.apps.html import begin_page, end_page, write_table
from repro.apps.rubis.base import RubisServlet
from repro.errors import ServletError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import require_parameter


class ViewItem(RubisServlet):
    """Item detail page (Figure 16: misses mostly from invalidation --
    every bid updates the item row)."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        statement = self.statement()
        item = statement.execute_query(
            "SELECT * FROM items WHERE id = ?", (item_id,)
        )
        if not item.next():
            raise ServletError(f"no item {item_id}")
        seller_id = item.get("seller")
        seller = statement.execute_query(
            "SELECT nickname FROM users WHERE id = ?", (seller_id,)
        )
        begin_page(response, f"RUBiS: {item.get('name')}")
        response.write(f"<p>{item.get('description')}</p>")
        write_table(
            response,
            ["Initial price", "Current bid", "Bids", "Quantity", "Seller", "Ends"],
            [
                [
                    item.get("initial_price"),
                    item.get("max_bid"),
                    item.get("nb_of_bids"),
                    item.get("quantity"),
                    seller.scalar(),
                    item.get("end_date"),
                ]
            ],
        )
        response.write(
            f"<p><a href='/rubis/put_bid?item={item_id}'>Bid</a> | "
            f"<a href='/rubis/buy_now_auth?item={item_id}'>Buy now</a> | "
            f"<a href='/rubis/view_bid_history?item={item_id}'>Bid history</a></p>"
        )
        end_page(response)


class ViewBidHistory(RubisServlet):
    """Bid history for one item (invalidated by every new bid)."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        statement = self.statement()
        name = statement.execute_query(
            "SELECT name FROM items WHERE id = ?", (item_id,)
        )
        bids = statement.execute_query(
            "SELECT users.nickname, bids.bid, bids.qty, bids.date "
            "FROM bids, users "
            "WHERE bids.item_id = ? AND bids.user_id = users.id "
            "ORDER BY bids.bid DESC",
            (item_id,),
        )
        begin_page(response, f"RUBiS: Bid history for {name.scalar()}")
        write_table(
            response,
            ["Bidder", "Bid", "Qty", "Date"],
            [
                [row["nickname"], row["bid"], row["qty"], row["date"]]
                for row in bids.all_dicts()
            ],
        )
        end_page(response)


class ViewUserInfo(RubisServlet):
    """User profile with received comments."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        user_id = int(require_parameter(request, "user"))
        statement = self.statement()
        user = statement.execute_query(
            "SELECT nickname, rating, creation_date, region FROM users "
            "WHERE id = ?",
            (user_id,),
        )
        if not user.next():
            raise ServletError(f"no user {user_id}")
        comments = statement.execute_query(
            "SELECT users.nickname, comments.rating, comments.date, "
            "comments.comment "
            "FROM comments, users "
            "WHERE comments.to_user_id = ? AND comments.from_user_id = users.id "
            "ORDER BY comments.date DESC",
            (user_id,),
        )
        begin_page(response, f"RUBiS: User {user.get('nickname')}")
        response.write(
            f"<p>Rating: {user.get('rating')}; member since "
            f"{user.get('creation_date')}</p>"
        )
        write_table(
            response,
            ["From", "Rating", "Date", "Comment"],
            [
                [row["nickname"], row["rating"], row["date"], row["comment"]]
                for row in comments.all_dicts()
            ],
        )
        end_page(response)


class AboutMe(RubisServlet):
    """The user's personal summary page.

    The most query-heavy read in RUBiS (items on sale, bids placed,
    items bought, comments received) -- the paper's Figure 18 shows its
    high miss penalty compensated by a high hit rate.
    """

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        user_id = int(require_parameter(request, "user"))
        statement = self.statement()
        user = statement.execute_query(
            "SELECT nickname, rating, balance FROM users WHERE id = ?",
            (user_id,),
        )
        if not user.next():
            raise ServletError(f"no user {user_id}")
        selling = statement.execute_query(
            "SELECT id, name, max_bid, nb_of_bids, end_date FROM items "
            "WHERE seller = ? ORDER BY end_date",
            (user_id,),
        )
        sold = statement.execute_query(
            "SELECT name, max_bid, end_date FROM old_items "
            "WHERE seller = ? ORDER BY end_date DESC",
            (user_id,),
        )
        bidding = statement.execute_query(
            "SELECT items.id, items.name, bids.bid, items.max_bid "
            "FROM bids, items "
            "WHERE bids.user_id = ? AND bids.item_id = items.id "
            "ORDER BY items.id",
            (user_id,),
        )
        bought = statement.execute_query(
            "SELECT items.name, buy_now.qty, buy_now.date "
            "FROM buy_now, items "
            "WHERE buy_now.buyer_id = ? AND buy_now.item_id = items.id "
            "ORDER BY buy_now.date DESC",
            (user_id,),
        )
        comments = statement.execute_query(
            "SELECT rating, comment FROM comments WHERE to_user_id = ? "
            "ORDER BY date DESC",
            (user_id,),
        )
        begin_page(response, f"RUBiS: About {user.get('nickname')}")
        response.write(f"<h2>Rating {user.get('rating')}</h2>")
        response.write("<h2>Items you are selling</h2>")
        write_table(
            response,
            ["Item", "Current bid", "Bids", "Ends"],
            [
                [row["name"], row["max_bid"], row["nb_of_bids"], row["end_date"]]
                for row in selling.all_dicts()
            ],
        )
        response.write("<h2>Items you sold</h2>")
        write_table(
            response,
            ["Item", "Final price", "Ended"],
            [
                [row["name"], row["max_bid"], row["end_date"]]
                for row in sold.all_dicts()
            ],
        )
        response.write("<h2>Items you bid on</h2>")
        write_table(
            response,
            ["Item", "Your bid", "Current bid"],
            [
                [row["name"], row["bid"], row["max_bid"]]
                for row in bidding.all_dicts()
            ],
        )
        response.write("<h2>Items you bought</h2>")
        write_table(
            response,
            ["Item", "Qty", "Date"],
            [[row["name"], row["qty"], row["date"]] for row in bought.all_dicts()],
        )
        response.write("<h2>Comments about you</h2>")
        write_table(
            response,
            ["Rating", "Comment"],
            [[row["rating"], row["comment"]] for row in comments.all_dicts()],
        )
        end_page(response)
