"""RUBiS application assembly: database + container + servlet routing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.rubis import servlets_browse, servlets_forms, servlets_view
from repro.apps.rubis import servlets_write
from repro.apps.rubis.data import RubisDataset, populate_rubis
from repro.apps.rubis.schema import create_rubis_schema
from repro.db import Database, connect
from repro.db.dbapi import Connection
from repro.web.container import ServletContainer

#: URI -> (servlet class, is_write) for all 26 interactions.
INTERACTIONS: dict[str, tuple[type, bool]] = {
    "/rubis/home": (servlets_browse.Home, False),
    "/rubis/browse": (servlets_browse.Browse, False),
    "/rubis/browse_categories": (servlets_browse.BrowseCategories, False),
    "/rubis/browse_regions": (servlets_browse.BrowseRegions, False),
    "/rubis/browse_categories_in_region": (
        servlets_browse.BrowseCategoriesInRegion,
        False,
    ),
    "/rubis/search_items_by_category": (
        servlets_browse.SearchItemsByCategory,
        False,
    ),
    "/rubis/search_items_by_region": (
        servlets_browse.SearchItemsByRegion,
        False,
    ),
    "/rubis/view_item": (servlets_view.ViewItem, False),
    "/rubis/view_bid_history": (servlets_view.ViewBidHistory, False),
    "/rubis/view_user_info": (servlets_view.ViewUserInfo, False),
    "/rubis/about_me": (servlets_view.AboutMe, False),
    "/rubis/buy_now_auth": (servlets_forms.BuyNowAuth, False),
    "/rubis/buy_now": (servlets_forms.BuyNow, False),
    "/rubis/store_buy_now": (servlets_write.StoreBuyNow, True),
    "/rubis/put_bid_auth": (servlets_forms.PutBidAuth, False),
    "/rubis/put_bid": (servlets_forms.PutBid, False),
    "/rubis/store_bid": (servlets_write.StoreBid, True),
    "/rubis/put_comment_auth": (servlets_forms.PutCommentAuth, False),
    "/rubis/put_comment": (servlets_forms.PutComment, False),
    "/rubis/store_comment": (servlets_write.StoreComment, True),
    "/rubis/register": (servlets_forms.Register, False),
    "/rubis/register_user": (servlets_write.RegisterUser, True),
    "/rubis/sell": (servlets_forms.Sell, False),
    "/rubis/select_category_to_sell": (
        servlets_forms.SelectCategoryToSellItem,
        False,
    ),
    "/rubis/sell_item_form": (servlets_forms.SellItemForm, False),
    "/rubis/register_item": (servlets_write.RegisterItem, True),
}


@dataclass
class RubisApplication:
    """A fully assembled RUBiS instance."""

    database: Database
    connection: Connection
    container: ServletContainer
    dataset: RubisDataset

    @property
    def servlet_classes(self) -> list[type]:
        return self.container.servlet_classes

    @property
    def read_uris(self) -> list[str]:
        return [uri for uri, (_cls, write) in INTERACTIONS.items() if not write]

    @property
    def write_uris(self) -> list[str]:
        return [uri for uri, (_cls, write) in INTERACTIONS.items() if write]


def build_rubis(dataset: RubisDataset | None = None) -> RubisApplication:
    """Create, populate and route a RUBiS instance."""
    dataset = dataset or RubisDataset()
    database = Database("rubis")
    create_rubis_schema(database)
    populate_rubis(database, dataset)
    connection = connect(database)
    container = ServletContainer()
    for uri, (servlet_class, _is_write) in INTERACTIONS.items():
        container.register(uri, servlet_class(connection))
    return RubisApplication(
        database=database,
        connection=connection,
        container=container,
        dataset=dataset,
    )
