"""RUBiS database schema.

Follows the original RUBiS MySQL schema (categories, regions, users,
items, bids, comments, buy_now), trimmed to the columns the 26
interactions actually touch.  Secondary indexes mirror the columns the
original schema indexes (foreign keys used by the hot queries).
"""

from __future__ import annotations

from repro.db import Column, ColumnType, Database, TableSchema

INT = ColumnType.INT
FLOAT = ColumnType.FLOAT
VARCHAR = ColumnType.VARCHAR
DATETIME = ColumnType.DATETIME


def create_rubis_schema(db: Database) -> None:
    """Create every RUBiS table in ``db``."""
    db.create_table(
        TableSchema(
            "categories",
            [Column("id", INT), Column("name", VARCHAR)],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "regions",
            [Column("id", INT), Column("name", VARCHAR)],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "users",
            [
                Column("id", INT),
                Column("firstname", VARCHAR),
                Column("lastname", VARCHAR),
                Column("nickname", VARCHAR),
                Column("password", VARCHAR),
                Column("email", VARCHAR),
                Column("rating", INT),
                Column("balance", FLOAT),
                Column("creation_date", DATETIME),
                Column("region", INT),
            ],
            primary_key="id",
            indexes=["region", "nickname"],
        )
    )
    db.create_table(
        TableSchema(
            "items",
            [
                Column("id", INT),
                Column("name", VARCHAR),
                Column("description", VARCHAR),
                Column("initial_price", FLOAT),
                Column("quantity", INT),
                Column("reserve_price", FLOAT),
                Column("buy_now", FLOAT),
                Column("nb_of_bids", INT),
                Column("max_bid", FLOAT),
                Column("start_date", DATETIME),
                Column("end_date", DATETIME),
                Column("seller", INT),
                Column("category", INT),
            ],
            primary_key="id",
            indexes=["seller", "category"],
        )
    )
    db.create_table(
        TableSchema(
            "old_items",
            [
                Column("id", INT),
                Column("name", VARCHAR),
                Column("description", VARCHAR),
                Column("initial_price", FLOAT),
                Column("quantity", INT),
                Column("reserve_price", FLOAT),
                Column("buy_now", FLOAT),
                Column("nb_of_bids", INT),
                Column("max_bid", FLOAT),
                Column("start_date", DATETIME),
                Column("end_date", DATETIME),
                Column("seller", INT),
                Column("category", INT),
            ],
            primary_key="id",
            indexes=["seller", "category"],
        )
    )
    db.create_table(
        TableSchema(
            "bids",
            [
                Column("id", INT),
                Column("user_id", INT),
                Column("item_id", INT),
                Column("qty", INT),
                Column("bid", FLOAT),
                Column("max_bid", FLOAT),
                Column("date", DATETIME),
            ],
            primary_key="id",
            indexes=["item_id", "user_id"],
        )
    )
    db.create_table(
        TableSchema(
            "comments",
            [
                Column("id", INT),
                Column("from_user_id", INT),
                Column("to_user_id", INT),
                Column("item_id", INT),
                Column("rating", INT),
                Column("date", DATETIME),
                Column("comment", VARCHAR),
            ],
            primary_key="id",
            indexes=["to_user_id", "item_id"],
        )
    )
    db.create_table(
        TableSchema(
            "buy_now",
            [
                Column("id", INT),
                Column("buyer_id", INT),
                Column("item_id", INT),
                Column("qty", INT),
                Column("date", DATETIME),
            ],
            primary_key="id",
            indexes=["buyer_id", "item_id"],
        )
    )
