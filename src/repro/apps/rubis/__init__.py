"""RUBiS: the auction-site benchmark (26 interactions).

RUBiS models the core functionality of an auction site like eBay:
selling, browsing and bidding.  :func:`build_rubis` assembles a
populated database and a servlet container routing all 26 interactions.
"""

from repro.apps.rubis.app import RubisApplication, build_rubis
from repro.apps.rubis.schema import create_rubis_schema
from repro.apps.rubis.data import RubisDataset, populate_rubis

__all__ = [
    "RubisApplication",
    "build_rubis",
    "create_rubis_schema",
    "RubisDataset",
    "populate_rubis",
]
