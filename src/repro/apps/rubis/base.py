"""Shared base class (and catalogue helper) for RUBiS servlets."""

from __future__ import annotations

from repro.db.dbapi import Connection, Statement
from repro.web.servlet import HttpServlet


class CategoryCatalogue:
    """The unfiltered category/region listings several pages share.

    BrowseCategories, BrowseCategoriesInRegion and
    SelectCategoryToSellItem all render the full (unindexable) category
    scan; hosting the query here gives the pages' fragment declarations
    one shared data source instead of three copies of the SQL.
    """

    def __init__(self, connection: Connection) -> None:
        self._connection = connection

    def categories(self) -> list[dict]:
        result = self._connection.create_statement().execute_query(
            "SELECT id, name FROM categories ORDER BY name"
        )
        return result.all_dicts()

    def regions(self) -> list[dict]:
        result = self._connection.create_statement().execute_query(
            "SELECT id, name FROM regions ORDER BY name"
        )
        return result.all_dicts()


class RubisServlet(HttpServlet):
    """A servlet holding the shared database connection.

    Note there is no caching code anywhere below: the servlets only
    render pages from SQL results.  AutoWebCache is woven around them.
    """

    def __init__(self, connection: Connection) -> None:
        self._connection = connection
        self._catalogue = CategoryCatalogue(connection)

    def statement(self) -> Statement:
        return self._connection.create_statement()
