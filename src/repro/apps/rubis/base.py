"""Shared base class for RUBiS servlets."""

from __future__ import annotations

from repro.db.dbapi import Connection, Statement
from repro.web.servlet import HttpServlet


class RubisServlet(HttpServlet):
    """A servlet holding the shared database connection.

    Note there is no caching code anywhere below: the servlets only
    render pages from SQL results.  AutoWebCache is woven around them.
    """

    def __init__(self, connection: Connection) -> None:
        self._connection = connection

    def statement(self) -> Statement:
        return self._connection.create_statement()
