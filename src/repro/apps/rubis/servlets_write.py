"""RUBiS write interactions.

StoreBid, StoreBuyNow, StoreComment, RegisterUser, RegisterItem.  All
are POST handlers: the ``WriteServletAspect`` collects their updates and
invalidates affected cached pages after they complete.

New rows rely on the engine's AUTO_INCREMENT primary keys (insert with
the id column omitted, read the assigned key back with
``Statement.generated_key()``), exactly as the original RUBiS servlets
use MySQL auto_increment columns through JDBC.
"""

from __future__ import annotations

from repro.apps.html import begin_page, end_page
from repro.apps.rubis.base import RubisServlet
from repro.errors import ServletError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import require_parameter


class StoreBid(RubisServlet):
    """Record a bid: insert into bids, bump the item's bid summary."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        user_id = int(require_parameter(request, "user"))
        amount = float(require_parameter(request, "bid"))
        qty = request.get_int("qty", 1) or 1
        statement = self.statement()
        item = statement.execute_query(
            "SELECT nb_of_bids, max_bid FROM items WHERE id = ?", (item_id,)
        )
        if not item.next():
            raise ServletError(f"no item {item_id}")
        nb_of_bids = int(item.get("nb_of_bids") or 0) + 1
        max_bid = max(float(item.get("max_bid") or 0.0), amount)
        statement.execute_update(
            "INSERT INTO bids (user_id, item_id, qty, bid, max_bid, date) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (user_id, item_id, qty, amount, amount, 0.0),
        )
        statement.execute_update(
            "UPDATE items SET nb_of_bids = ?, max_bid = ? WHERE id = ?",
            (nb_of_bids, max_bid, item_id),
        )
        begin_page(response, "RUBiS: Bid recorded")
        response.write(f"<p>Bid {amount} on item {item_id} recorded.</p>")
        end_page(response)


class StoreBuyNow(RubisServlet):
    """Record a buy-now purchase and decrement the item quantity."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        user_id = int(require_parameter(request, "user"))
        qty = request.get_int("qty", 1) or 1
        statement = self.statement()
        statement.execute_update(
            "INSERT INTO buy_now (buyer_id, item_id, qty, date) "
            "VALUES (?, ?, ?, ?)",
            (user_id, item_id, qty, 0.0),
        )
        statement.execute_update(
            "UPDATE items SET quantity = quantity - ? WHERE id = ?",
            (qty, item_id),
        )
        begin_page(response, "RUBiS: Purchase recorded")
        response.write(f"<p>Bought {qty} of item {item_id}.</p>")
        end_page(response)


class StoreComment(RubisServlet):
    """Record a comment and adjust the target user's rating."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        to_user = int(require_parameter(request, "to"))
        from_user = int(require_parameter(request, "from"))
        rating = int(require_parameter(request, "rating"))
        text = request.get_parameter("comment", "") or ""
        statement = self.statement()
        statement.execute_update(
            "INSERT INTO comments (from_user_id, to_user_id, item_id, "
            "rating, date, comment) VALUES (?, ?, ?, ?, ?, ?)",
            (from_user, to_user, item_id, rating, 0.0, text),
        )
        statement.execute_update(
            "UPDATE users SET rating = rating + ? WHERE id = ?",
            (rating, to_user),
        )
        begin_page(response, "RUBiS: Comment recorded")
        response.write(f"<p>Comment on user {to_user} recorded.</p>")
        end_page(response)


class RegisterUser(RubisServlet):
    """Create a user account."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        firstname = require_parameter(request, "firstname")
        lastname = require_parameter(request, "lastname")
        nickname = require_parameter(request, "nickname")
        region = int(require_parameter(request, "region"))
        statement = self.statement()
        existing = statement.execute_query(
            "SELECT id FROM users WHERE nickname = ?", (nickname,)
        )
        if existing.next():
            raise ServletError(f"nickname {nickname!r} is taken")
        statement.execute_update(
            "INSERT INTO users (firstname, lastname, nickname, password, "
            "email, rating, balance, creation_date, region) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                firstname,
                lastname,
                nickname,
                "secret",
                f"{nickname}@example.com",
                0,
                0.0,
                0.0,
                region,
            ),
        )
        user_id = statement.generated_key()
        begin_page(response, "RUBiS: User registered")
        response.write(f"<p>Welcome {nickname}, your id is {user_id}.</p>")
        end_page(response)


class RegisterItem(RubisServlet):
    """Put a new item up for auction."""

    def do_post(self, request: HttpRequest, response: HttpResponse) -> None:
        name = require_parameter(request, "name")
        description = request.get_parameter("description", "") or ""
        initial_price = float(require_parameter(request, "initial_price"))
        category = int(require_parameter(request, "category"))
        seller = int(require_parameter(request, "seller"))
        quantity = request.get_int("quantity", 1) or 1
        statement = self.statement()
        statement.execute_update(
            "INSERT INTO items (name, description, initial_price, "
            "quantity, reserve_price, buy_now, nb_of_bids, max_bid, "
            "start_date, end_date, seller, category) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                name,
                description,
                initial_price,
                quantity,
                initial_price * 1.1,
                initial_price * 2.0,
                0,
                0.0,
                0.0,
                7 * 24 * 3600.0,
                seller,
                category,
            ),
        )
        item_id = statement.generated_key()
        begin_page(response, "RUBiS: Item registered")
        response.write(f"<p>Item {item_id} ({name}) is up for auction.</p>")
        end_page(response)
