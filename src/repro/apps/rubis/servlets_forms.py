"""RUBiS form interactions (read-only pages preceding writes).

BuyNowAuth, BuyNow, PutBidAuth, PutBid, PutCommentAuth, PutComment,
Register, Sell, SelectCategoryToSellItem, SellItemForm.

The BuyNow/PutBid/PutComment pages carry both the item *and* the
authenticated user in their parameters, so cache hits require "the same
customer and item as a previous request" -- the paper's explanation for
their low hit rates (Figure 16, footnote 4).
"""

from __future__ import annotations

from repro.apps.html import begin_page, end_page, fragment
from repro.apps.rubis.base import RubisServlet
from repro.errors import ServletError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import require_parameter


class BuyNowAuth(RubisServlet):
    """Login form before buying; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        begin_page(response, "RUBiS: Buy now authentication")
        response.write(
            f"<form action='/rubis/buy_now'>"
            f"<input type='hidden' name='item' value='{item_id}'>"
            "Nickname: <input name='nickname'> Password: "
            "<input name='password' type='password'>"
            "<input type='submit'></form>"
        )
        end_page(response)


class BuyNow(RubisServlet):
    """Buy-now confirmation page for an (item, user) pair."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        user_id = int(require_parameter(request, "user"))
        statement = self.statement()
        item = statement.execute_query(
            "SELECT name, buy_now, quantity, seller FROM items WHERE id = ?",
            (item_id,),
        )
        if not item.next():
            raise ServletError(f"no item {item_id}")
        user = statement.execute_query(
            "SELECT nickname FROM users WHERE id = ?", (user_id,)
        )
        begin_page(response, f"RUBiS: Buy {item.get('name')} now")
        response.write(
            f"<p>{user.scalar()}, buy it now for {item.get('buy_now')} "
            f"({item.get('quantity')} available)</p>"
            f"<form action='/rubis/store_buy_now' method='post'>"
            f"<input type='hidden' name='item' value='{item_id}'>"
            f"<input type='hidden' name='user' value='{user_id}'>"
            "Qty: <input name='qty' value='1'><input type='submit'></form>"
        )
        end_page(response)


class PutBidAuth(RubisServlet):
    """Login form before bidding; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        begin_page(response, "RUBiS: Bid authentication")
        response.write(
            f"<form action='/rubis/put_bid'>"
            f"<input type='hidden' name='item' value='{item_id}'>"
            "Nickname: <input name='nickname'> Password: "
            "<input name='password' type='password'>"
            "<input type='submit'></form>"
        )
        end_page(response)


class PutBid(RubisServlet):
    """Bid form for an (item, user) pair, showing the current price."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        user_id = int(require_parameter(request, "user"))
        statement = self.statement()
        item = statement.execute_query(
            "SELECT name, initial_price, max_bid, nb_of_bids FROM items "
            "WHERE id = ?",
            (item_id,),
        )
        if not item.next():
            raise ServletError(f"no item {item_id}")
        user = statement.execute_query(
            "SELECT nickname FROM users WHERE id = ?", (user_id,)
        )
        minimum = max(
            float(item.get("initial_price") or 0.0),
            float(item.get("max_bid") or 0.0),
        )
        begin_page(response, f"RUBiS: Bid on {item.get('name')}")
        response.write(
            f"<p>{user.scalar()}: current bid {item.get('max_bid')}, "
            f"{item.get('nb_of_bids')} bids so far; bid at least "
            f"{minimum + 1.0}</p>"
            f"<form action='/rubis/store_bid' method='post'>"
            f"<input type='hidden' name='item' value='{item_id}'>"
            f"<input type='hidden' name='user' value='{user_id}'>"
            "Bid: <input name='bid'><input type='submit'></form>"
        )
        end_page(response)


class PutCommentAuth(RubisServlet):
    """Login form before commenting; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        to_user = int(require_parameter(request, "to"))
        begin_page(response, "RUBiS: Comment authentication")
        response.write(
            f"<form action='/rubis/put_comment'>"
            f"<input type='hidden' name='item' value='{item_id}'>"
            f"<input type='hidden' name='to' value='{to_user}'>"
            "Nickname: <input name='nickname'> Password: "
            "<input name='password' type='password'>"
            "<input type='submit'></form>"
        )
        end_page(response)


class PutComment(RubisServlet):
    """Comment form about a user for a transaction on an item."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        item_id = int(require_parameter(request, "item"))
        to_user = int(require_parameter(request, "to"))
        from_user = int(require_parameter(request, "user"))
        statement = self.statement()
        item = statement.execute_query(
            "SELECT name FROM items WHERE id = ?", (item_id,)
        )
        target = statement.execute_query(
            "SELECT nickname FROM users WHERE id = ?", (to_user,)
        )
        begin_page(response, f"RUBiS: Comment on {target.scalar()}")
        response.write(
            f"<p>About your transaction on {item.scalar()}</p>"
            f"<form action='/rubis/store_comment' method='post'>"
            f"<input type='hidden' name='item' value='{item_id}'>"
            f"<input type='hidden' name='to' value='{to_user}'>"
            f"<input type='hidden' name='from' value='{from_user}'>"
            "Rating: <input name='rating'> Comment: <input name='comment'>"
            "<input type='submit'></form>"
        )
        end_page(response)


class Register(RubisServlet):
    """New-user registration form; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: Register")
        response.write(
            "<form action='/rubis/register_user' method='post'>"
            "First name: <input name='firstname'> Last name: "
            "<input name='lastname'> Nickname: <input name='nickname'>"
            " Region: <input name='region'><input type='submit'></form>"
        )
        end_page(response)


class Sell(RubisServlet):
    """Sell hub page; no database access."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: Sell your item")
        response.write(
            "<p><a href='/rubis/select_category_to_sell'>Choose a category"
            "</a></p>"
        )
        end_page(response)


class SelectCategoryToSellItem(RubisServlet):
    """Category chooser for sellers.

    The chooser list is a fragment over the shared catalogue scan (the
    same data as BrowseCategories' table, different markup)."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        begin_page(response, "RUBiS: Select a category")
        fragment(
            response,
            "rubis/category_options",
            {},
            lambda: self._write_options(response),
        )
        end_page(response)

    def _write_options(self, response) -> None:
        response.write("<ul>")
        for row in self._catalogue.categories():
            response.write(
                f"<li><a href='/rubis/sell_item_form?category={row['id']}'>"
                f"{row['name']}</a></li>"
            )
        response.write("</ul>")


class SellItemForm(RubisServlet):
    """Item entry form for one category."""

    def do_get(self, request: HttpRequest, response: HttpResponse) -> None:
        category = int(require_parameter(request, "category"))
        statement = self.statement()
        name = statement.execute_query(
            "SELECT name FROM categories WHERE id = ?", (category,)
        )
        begin_page(response, f"RUBiS: Sell in {name.scalar()}")
        response.write(
            f"<form action='/rubis/register_item' method='post'>"
            f"<input type='hidden' name='category' value='{category}'>"
            "Name: <input name='name'> Description: <input name='description'>"
            " Initial price: <input name='initial_price'>"
            " Seller: <input name='seller'><input type='submit'></form>"
        )
        end_page(response)
