"""RUBiS workload mixes (Section 5: the bidding mix, 85% reads).

Parameter generators keep session locality: a session bids on the item
it last viewed, comments on the user it last inspected, and visits its
own AboutMe page -- mirroring the RUBiS client emulator's CBMG, whose
transitions route through item/user pages before the corresponding
writes.
"""

from __future__ import annotations

from repro.apps.rubis.data import RubisDataset
from repro.workload.mix import Interaction, InteractionMix
from repro.workload.session import ClientSession
from repro.workload.zipf import ZipfSampler


class RubisParamFactory:
    """Builds parameter generators bound to one dataset's id ranges."""

    def __init__(self, dataset: RubisDataset) -> None:
        self.dataset = dataset
        self.items = ZipfSampler(dataset.n_items, s=1.1)
        self.users = ZipfSampler(dataset.n_users, s=1.2)
        self.categories = ZipfSampler(dataset.n_categories, s=1.1)
        self.regions = ZipfSampler(dataset.n_regions, s=1.1)

    # -- session state helpers ------------------------------------------------

    def own_user(self, session: ClientSession) -> int:
        user = session.state.get("user")
        if user is None:
            user = session.rng.randrange(self.dataset.n_users)
            session.state["user"] = user
        return int(user)

    def current_item(self, session: ClientSession) -> int:
        item = session.state.get("item")
        if item is None:
            item = self.items.sample(session.rng)
            session.state["item"] = item
        return int(item)

    def pick_item(self, session: ClientSession) -> int:
        item = self.items.sample(session.rng)
        session.state["item"] = item
        return item

    def other_user(self, session: ClientSession) -> int:
        user = session.state.get("other_user")
        if user is None:
            user = self.users.sample(session.rng)
            session.state["other_user"] = user
        return int(user)

    # -- parameter generators ------------------------------------------------------

    def none(self, session: ClientSession) -> dict[str, str]:
        return {}

    def region(self, session: ClientSession) -> dict[str, str]:
        region = self.regions.sample(session.rng)
        session.state["region"] = region
        return {"region": str(region)}

    def category_page(self, session: ClientSession) -> dict[str, str]:
        category = self.categories.sample(session.rng)
        session.state["category"] = category
        page = 0 if session.rng.random() < 0.75 else session.rng.randint(1, 2)
        return {"category": str(category), "page": str(page)}

    def category_region_page(self, session: ClientSession) -> dict[str, str]:
        params = self.category_page(session)
        # Sessions mostly stay in the region they are browsing, which is
        # what concentrates SearchItemsByRegion onto few pages (the
        # near-100% hit rates of Figure 16).
        region = session.state.get("region")
        if region is None or session.rng.random() < 0.2:
            region = self.regions.sample(session.rng)
            session.state["region"] = region
        params["region"] = str(region)
        return params

    def view_item(self, session: ClientSession) -> dict[str, str]:
        return {"item": str(self.pick_item(session))}

    def item_only(self, session: ClientSession) -> dict[str, str]:
        return {"item": str(self.current_item(session))}

    def item_user(self, session: ClientSession) -> dict[str, str]:
        return {
            "item": str(self.current_item(session)),
            "user": str(self.own_user(session)),
        }

    def view_user(self, session: ClientSession) -> dict[str, str]:
        user = self.users.sample(session.rng)
        session.state["other_user"] = user
        return {"user": str(user)}

    def about_me(self, session: ClientSession) -> dict[str, str]:
        return {"user": str(self.own_user(session))}

    def comment_form(self, session: ClientSession) -> dict[str, str]:
        return {
            "item": str(self.current_item(session)),
            "to": str(self.other_user(session)),
            "user": str(self.own_user(session)),
        }

    def store_bid(self, session: ClientSession) -> dict[str, str]:
        return {
            "item": str(self.current_item(session)),
            "user": str(self.own_user(session)),
            "bid": str(round(session.rng.uniform(1, 500), 2)),
        }

    def store_buy_now(self, session: ClientSession) -> dict[str, str]:
        return {
            "item": str(self.current_item(session)),
            "user": str(self.own_user(session)),
            "qty": "1",
        }

    def store_comment(self, session: ClientSession) -> dict[str, str]:
        return {
            "item": str(self.current_item(session)),
            "to": str(self.other_user(session)),
            "from": str(self.own_user(session)),
            "rating": str(session.rng.randint(-5, 5)),
            "comment": "nice transaction",
        }

    def register_user(self, session: ClientSession) -> dict[str, str]:
        count = session.state.get("registered", 0)
        session.state["registered"] = count + 1
        return {
            "firstname": "new",
            "lastname": "user",
            "nickname": f"nick{session.session_id}x{count}",
            "region": str(self.regions.sample(session.rng)),
        }

    def sell_item_form(self, session: ClientSession) -> dict[str, str]:
        category = self.categories.sample(session.rng)
        session.state["category"] = category
        return {"category": str(category)}

    def register_item(self, session: ClientSession) -> dict[str, str]:
        return {
            "name": f"fresh-item-{session.session_id}-{session.requests_issued}",
            "description": "brand new",
            "initial_price": str(round(session.rng.uniform(1, 100), 2)),
            "category": str(session.state.get("category", 0)),
            "seller": str(self.own_user(session)),
        }


def bidding_mix(dataset: RubisDataset) -> InteractionMix:
    """The paper's primary RUBiS mix: 15% writes (Figure 13/16/18)."""
    p = RubisParamFactory(dataset)
    interactions = [
        Interaction("Home", "GET", "/rubis/home", p.none, 3.0),
        Interaction("Browse", "GET", "/rubis/browse", p.none, 4.0),
        Interaction(
            "BrowseCategories", "GET", "/rubis/browse_categories", p.none, 6.0
        ),
        Interaction("BrowseRegions", "GET", "/rubis/browse_regions", p.none, 3.0),
        Interaction(
            "BrowseCategoriesInRegion",
            "GET",
            "/rubis/browse_categories_in_region",
            p.region,
            3.0,
        ),
        Interaction(
            "SearchItemsByCategory",
            "GET",
            "/rubis/search_items_by_category",
            p.category_page,
            16.0,
        ),
        Interaction(
            "SearchItemsByRegion",
            "GET",
            "/rubis/search_items_by_region",
            p.category_region_page,
            9.0,
        ),
        Interaction("ViewItem", "GET", "/rubis/view_item", p.view_item, 17.0),
        Interaction(
            "ViewBidHistory", "GET", "/rubis/view_bid_history", p.item_only, 4.0
        ),
        Interaction(
            "ViewUserInfo", "GET", "/rubis/view_user_info", p.view_user, 4.0
        ),
        Interaction("AboutMe", "GET", "/rubis/about_me", p.about_me, 3.0),
        Interaction("BuyNowAuth", "GET", "/rubis/buy_now_auth", p.item_only, 1.0),
        Interaction("BuyNow", "GET", "/rubis/buy_now", p.item_user, 1.5),
        Interaction("PutBidAuth", "GET", "/rubis/put_bid_auth", p.item_only, 2.0),
        Interaction("PutBid", "GET", "/rubis/put_bid", p.item_user, 5.0),
        Interaction(
            "PutCommentAuth",
            "GET",
            "/rubis/put_comment_auth",
            p.comment_form,
            0.7,
        ),
        Interaction(
            "PutComment", "GET", "/rubis/put_comment", p.comment_form, 0.8
        ),
        Interaction("Register", "GET", "/rubis/register", p.none, 0.5),
        Interaction("Sell", "GET", "/rubis/sell", p.none, 0.5),
        Interaction(
            "SelectCategoryToSellItem",
            "GET",
            "/rubis/select_category_to_sell",
            p.none,
            0.5,
        ),
        Interaction(
            "SellItemForm", "GET", "/rubis/sell_item_form", p.sell_item_form, 0.5
        ),
        # -- writes (15%) --
        Interaction(
            "StoreBid", "POST", "/rubis/store_bid", p.store_bid, 11.0, True
        ),
        Interaction(
            "StoreBuyNow",
            "POST",
            "/rubis/store_buy_now",
            p.store_buy_now,
            1.5,
            True,
        ),
        Interaction(
            "StoreComment",
            "POST",
            "/rubis/store_comment",
            p.store_comment,
            1.5,
            True,
        ),
        Interaction(
            "RegisterUser",
            "POST",
            "/rubis/register_user",
            p.register_user,
            0.5,
            True,
        ),
        Interaction(
            "RegisterItem",
            "POST",
            "/rubis/register_item",
            p.register_item,
            0.5,
            True,
        ),
    ]
    return InteractionMix("rubis-bidding", interactions)


def browsing_mix(dataset: RubisDataset) -> InteractionMix:
    """Read-only RUBiS mix (no writes; the no-invalidation baseline)."""
    bidding = bidding_mix(dataset)
    reads = [i for i in bidding.interactions if not i.is_write]
    return InteractionMix("rubis-browsing", reads)
