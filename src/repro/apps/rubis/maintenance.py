"""RUBiS maintenance: closing expired auctions.

The original RUBiS moves ended auctions from ``items`` to
``old_items``.  On the paper's test bed this runs as a database-side
maintenance job -- i.e. *updates performed directly on the database*,
the very case Section 8 warns breaks cache transparency and proposes
database triggers for.  Pair this module with
:class:`~repro.cache.external.TriggerInvalidationBridge` and the cached
pages of closed auctions disappear correctly (see
tests/test_rubis_maintenance.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.engine import Database

_ITEM_COLUMNS = (
    "id", "name", "description", "initial_price", "quantity",
    "reserve_price", "buy_now", "nb_of_bids", "max_bid", "start_date",
    "end_date", "seller", "category",
)


@dataclass
class AuctionCloseReport:
    """Outcome of one maintenance pass."""

    closed: int
    remaining_active: int


def close_expired_auctions(db: Database, now: float) -> AuctionCloseReport:
    """Move every item whose auction has ended into ``old_items``.

    Issued directly against the database (no servlet involved),
    mirroring how RUBiS deployments run this as a cron job.
    """
    expired = db.query(
        "SELECT * FROM items WHERE end_date <= ?", (now,)
    ).dicts()
    columns = ", ".join(_ITEM_COLUMNS)
    placeholders = ", ".join("?" for _ in _ITEM_COLUMNS)
    for row in expired:
        db.update(
            f"INSERT INTO old_items ({columns}) VALUES ({placeholders})",
            tuple(row[column] for column in _ITEM_COLUMNS),
        )
        db.update("DELETE FROM items WHERE id = ?", (row["id"],))
    remaining = int(db.query("SELECT COUNT(*) FROM items").scalar() or 0)
    return AuctionCloseReport(closed=len(expired), remaining_active=remaining)
