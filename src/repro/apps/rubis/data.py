"""Synthetic RUBiS population.

The paper fixes the database size while varying client load.  The
original RUBiS populator uses ~1M users and ~33k active items; that
scale is pointless in an in-memory reproduction, so :class:`RubisDataset`
parameterises the sizes with defaults small enough for fast simulation
while keeping the *ratios* (items per category, bids per item, comments
per user) that drive hit rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db import Database

_FIRST_NAMES = [
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "ken", "laura", "mallory", "nick", "olivia", "peggy",
]
_LAST_NAMES = [
    "smith", "jones", "brown", "wilson", "taylor", "lopez", "kim", "patel",
    "mueller", "rossi", "santos", "nguyen", "cohen", "haddad", "novak",
]
_CATEGORY_NAMES = [
    "Antiques", "Books", "Business", "Clothing", "Computers", "Electronics",
    "Movies", "Music", "Photo", "Sports", "Toys", "Travel", "Jewelry",
    "Garden", "Collectibles", "Stamps", "Coins", "Art", "Dolls", "Pottery",
]
_REGION_NAMES = [
    "AZ-Phoenix", "CA-Los Angeles", "CA-San Francisco", "CO-Denver",
    "FL-Miami", "GA-Atlanta", "IL-Chicago", "MA-Boston", "MI-Detroit",
    "MN-Minneapolis", "MO-St Louis", "NY-New York", "OH-Columbus",
    "OR-Portland", "PA-Philadelphia", "TX-Dallas", "TX-Houston",
    "WA-Seattle", "WI-Milwaukee", "DC-Washington",
]


@dataclass
class RubisDataset:
    """Population parameters and resulting id ranges."""

    n_users: int = 300
    n_items: int = 600
    n_categories: int = len(_CATEGORY_NAMES)
    n_regions: int = len(_REGION_NAMES)
    bids_per_item: int = 3
    comments_per_user: int = 2
    seed: int = 20060101
    #: Epoch origin for synthetic dates (all simulated time is relative).
    base_time: float = 0.0
    auction_duration: float = 7 * 24 * 3600.0

    # Populated by populate_rubis:
    n_bids: int = 0
    n_comments: int = 0
    n_buy_now: int = 0


def populate_rubis(db: Database, dataset: RubisDataset) -> RubisDataset:
    """Fill ``db`` with a deterministic synthetic population."""
    rng = random.Random(dataset.seed)

    db.insert_rows(
        "categories",
        [
            {"id": i, "name": _CATEGORY_NAMES[i % len(_CATEGORY_NAMES)]}
            for i in range(dataset.n_categories)
        ],
    )
    db.insert_rows(
        "regions",
        [
            {"id": i, "name": _REGION_NAMES[i % len(_REGION_NAMES)]}
            for i in range(dataset.n_regions)
        ],
    )

    users = []
    for i in range(dataset.n_users):
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        users.append(
            {
                "id": i,
                "firstname": first,
                "lastname": last,
                "nickname": f"{first}{last}{i}",
                "password": f"pw{i}",
                "email": f"{first}.{last}{i}@example.com",
                "rating": rng.randint(0, 5),
                "balance": round(rng.uniform(0, 1000), 2),
                "creation_date": dataset.base_time,
                "region": rng.randrange(dataset.n_regions),
            }
        )
    db.insert_rows("users", users)

    items = []
    for i in range(dataset.n_items):
        initial = round(rng.uniform(1, 100), 2)
        items.append(
            {
                "id": i,
                "name": f"item-{i}",
                "description": f"Description of auction item {i}. " * 3,
                "initial_price": initial,
                "quantity": rng.randint(1, 10),
                "reserve_price": round(initial * 1.1, 2),
                "buy_now": round(initial * 2.0, 2),
                "nb_of_bids": 0,
                "max_bid": 0.0,
                "start_date": dataset.base_time,
                "end_date": dataset.base_time + dataset.auction_duration,
                "seller": rng.randrange(dataset.n_users),
                "category": rng.randrange(dataset.n_categories),
            }
        )
    db.insert_rows("items", items)

    bid_id = 0
    bids = []
    max_bids: dict[int, float] = {}
    counts: dict[int, int] = {}
    for item in items:
        for _ in range(dataset.bids_per_item):
            amount = round(
                item["initial_price"] * rng.uniform(1.0, 1.5), 2  # type: ignore[operator]
            )
            bids.append(
                {
                    "id": bid_id,
                    "user_id": rng.randrange(dataset.n_users),
                    "item_id": item["id"],
                    "qty": 1,
                    "bid": amount,
                    "max_bid": amount,
                    "date": dataset.base_time,
                }
            )
            item_id = int(item["id"])  # type: ignore[arg-type]
            max_bids[item_id] = max(max_bids.get(item_id, 0.0), amount)
            counts[item_id] = counts.get(item_id, 0) + 1
            bid_id += 1
    db.insert_rows("bids", bids)
    for item_id, count in counts.items():
        db.update(
            "UPDATE items SET nb_of_bids = ?, max_bid = ? WHERE id = ?",
            (count, max_bids[item_id], item_id),
        )

    comment_id = 0
    comments = []
    for user_id in range(dataset.n_users):
        for _ in range(dataset.comments_per_user):
            comments.append(
                {
                    "id": comment_id,
                    "from_user_id": rng.randrange(dataset.n_users),
                    "to_user_id": user_id,
                    "item_id": rng.randrange(dataset.n_items),
                    "rating": rng.randint(-5, 5),
                    "date": dataset.base_time,
                    "comment": f"comment {comment_id} text",
                }
            )
            comment_id += 1
    db.insert_rows("comments", comments)

    dataset.n_bids = bid_id
    dataset.n_comments = comment_id
    dataset.n_buy_now = 0
    return dataset
