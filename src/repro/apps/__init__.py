"""Benchmark applications: RUBiS (auction site) and TPC-W (bookstore).

Both are faithful re-implementations of the paper's test-bed
applications at the fidelity the cache observes: the servlet structure
(read handlers in ``do_get``, write handlers in ``do_post``), the SQL
each interaction issues, the parameter flows, and the semantic quirks
the paper calls out (TPC-W's random ad banners and BestSeller window).

The servlet code contains **no caching logic whatsoever** -- that is
the point of the paper.  AutoWebCache is woven in from outside.
"""
