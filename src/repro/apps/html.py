"""Tiny HTML rendering helpers shared by the benchmark applications.

The benchmarks' pages are plain HTML strings; what matters to the cache
is that page content is a pure function of the request parameters and
the database state (except where the paper deliberately introduces
hidden state, e.g. TPC-W ad banners).
"""

from __future__ import annotations

from typing import Iterable

from repro.web.http import HttpResponse


def begin_page(response: HttpResponse, title: str) -> None:
    response.write(f"<html><head><title>{title}</title></head><body>")
    response.write(f"<h1>{title}</h1>")


def end_page(response: HttpResponse) -> None:
    response.write("</body></html>")


def write_table(
    response: HttpResponse,
    headers: Iterable[str],
    rows: Iterable[Iterable[object]],
) -> None:
    response.write("<table border=1><tr>")
    for header in headers:
        response.write(f"<th>{header}</th>")
    response.write("</tr>")
    for row in rows:
        response.write("<tr>")
        for cell in row:
            response.write(f"<td>{cell}</td>")
        response.write("</tr>")
    response.write("</table>")


def write_list(response: HttpResponse, items: Iterable[object]) -> None:
    response.write("<ul>")
    for item in items:
        response.write(f"<li>{item}</li>")
    response.write("</ul>")
