"""Tiny HTML rendering helpers shared by the benchmark applications.

The benchmarks' pages are plain HTML strings; what matters to the cache
is that page content is a pure function of the request parameters and
the database state (except where the paper deliberately introduces
hidden state, e.g. TPC-W ad banners).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.web.http import HttpResponse


class PageComposer:
    """Fragment/hole boundaries for ESI-style fragment caching.

    Servlets declare the *structure* of a page -- which spans are
    cacheable fragments and which are per-request holes -- by routing
    the rendering callables through this class.  Unwoven, both methods
    are pure pass-throughs: the page renders byte-identically to an
    inline implementation.  The fragment-caching aspect weaves
    ``fragment``/``hole`` to add per-fragment cache checks, inserts and
    hole bookkeeping with zero further application edits (the same
    obliviousness contract as the servlet-level aspects).

    Methods live on a class (not module functions) because the weaver
    wraps methods found in ``vars(cls)``; the module-level helpers below
    delegate to a singleton so application code keeps a functional feel.
    """

    def fragment(
        self,
        response: HttpResponse,
        name: str,
        params: dict[str, str],
        render: Callable[[], None],
    ) -> None:
        """Render one cacheable fragment identified by ``name``+``params``."""
        render()

    def hole(
        self,
        response: HttpResponse,
        name: str,
        render: Callable[[], None],
    ) -> None:
        """Render one uncacheable hole (per-request state, e.g. ad banners)."""
        render()


#: Singleton the module-level helpers (and the weaver) target.
composer = PageComposer()


def fragment(
    response: HttpResponse,
    name: str,
    params: dict[str, str],
    render: Callable[[], None],
) -> None:
    composer.fragment(response, name, params, render)


def hole(response: HttpResponse, name: str, render: Callable[[], None]) -> None:
    composer.hole(response, name, render)


def begin_page(response: HttpResponse, title: str) -> None:
    response.write(f"<html><head><title>{title}</title></head><body>")
    response.write(f"<h1>{title}</h1>")


def end_page(response: HttpResponse) -> None:
    response.write("</body></html>")


def write_table(
    response: HttpResponse,
    headers: Iterable[str],
    rows: Iterable[Iterable[object]],
) -> None:
    response.write("<table border=1><tr>")
    for header in headers:
        response.write(f"<th>{header}</th>")
    response.write("</tr>")
    for row in rows:
        response.write("<tr>")
        for cell in row:
            response.write(f"<td>{cell}</td>")
        response.write("</tr>")
    response.write("</table>")


def write_list(response: HttpResponse, items: Iterable[object]) -> None:
    response.write("<ul>")
    for item in items:
        response.write(f"<li>{item}</li>")
    response.write("</ul>")
