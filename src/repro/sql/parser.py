"""Recursive-descent parser for the SQL subset.

The grammar covers everything the RUBiS and TPC-W applications issue:
SELECT (projections with aliases and aggregates, multiple FROM tables,
INNER/LEFT joins, WHERE with AND/OR/NOT, comparisons, LIKE, IN, BETWEEN,
IS NULL, GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET), INSERT, UPDATE, DELETE
and CREATE TABLE.

Entry point: :func:`parse_statement`.
"""

from __future__ import annotations

from repro.errors import SqlParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISONS = {"=", "<", ">", "<=", ">=", "<>", "!="}
_TYPE_KEYWORDS = {"INT", "INTEGER", "FLOAT", "VARCHAR", "DATETIME", "TEXT"}


def parse_statement(sql: str) -> ast.Statement:
    """Parse ``sql`` into a single statement AST.

    A trailing semicolon is permitted; anything after it is rejected.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.parse()
    return statement


class _Parser:
    """Token-stream parser.  One instance parses one statement."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._placeholder_count = 0

    # -- token-stream helpers ------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self._current.matches(token_type, value)

    def _accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if self._check(token_type, value):
            return self._advance()
        want = value or token_type.value
        got = self._current.value or self._current.type.value
        raise SqlParseError(f"expected {want}, got {got!r}", self._current.position)

    def _expect_name(self) -> str:
        """Accept an identifier (or a non-reserved keyword used as a name)."""
        token = self._accept(TokenType.IDENTIFIER)
        if token is not None:
            return token.value
        raise SqlParseError(
            f"expected identifier, got {self._current.value!r}",
            self._current.position,
        )

    # -- statements ----------------------------------------------------------

    def parse(self) -> ast.Statement:
        if self._check(TokenType.KEYWORD, "SELECT"):
            statement: ast.Statement = self._parse_select()
        elif self._check(TokenType.KEYWORD, "INSERT"):
            statement = self._parse_insert()
        elif self._check(TokenType.KEYWORD, "UPDATE"):
            statement = self._parse_update()
        elif self._check(TokenType.KEYWORD, "DELETE"):
            statement = self._parse_delete()
        elif self._check(TokenType.KEYWORD, "CREATE"):
            statement = self._parse_create_table()
        else:
            raise SqlParseError(
                f"expected a statement, got {self._current.value!r}",
                self._current.position,
            )
        self._accept(TokenType.PUNCT, ";")
        self._expect(TokenType.EOF)
        return statement

    def _parse_select(self) -> ast.Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = self._accept(TokenType.KEYWORD, "DISTINCT") is not None
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._parse_select_item())

        tables: list[ast.TableRef] = []
        joins: list[ast.Join] = []
        if self._accept(TokenType.KEYWORD, "FROM"):
            tables.append(self._parse_table_ref())
            while True:
                if self._accept(TokenType.PUNCT, ","):
                    tables.append(self._parse_table_ref())
                    continue
                join = self._parse_join()
                if join is None:
                    break
                joins.append(join)

        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()

        group_by: list[ast.Expression] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._parse_expression())
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept(TokenType.KEYWORD, "HAVING"):
            having = self._parse_expression()

        order_by: list[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._parse_order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._parse_order_item())

        limit = None
        offset = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            limit = self._parse_primary()
            if self._accept(TokenType.KEYWORD, "OFFSET"):
                offset = self._parse_primary()

        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_expression()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect_name()
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_name()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect_name()
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    def _parse_join(self) -> ast.Join | None:
        kind: str | None = None
        if self._accept(TokenType.KEYWORD, "INNER"):
            kind = "INNER"
            self._expect(TokenType.KEYWORD, "JOIN")
        elif self._accept(TokenType.KEYWORD, "LEFT"):
            self._accept(TokenType.KEYWORD, "OUTER")
            kind = "LEFT"
            self._expect(TokenType.KEYWORD, "JOIN")
        elif self._accept(TokenType.KEYWORD, "JOIN"):
            kind = "INNER"
        if kind is None:
            return None
        table = self._parse_table_ref()
        self._expect(TokenType.KEYWORD, "ON")
        condition = self._parse_expression()
        return ast.Join(kind=kind, table=table, condition=condition)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        return ast.OrderItem(expression=expression, descending=descending)

    def _parse_insert(self) -> ast.Insert:
        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._expect_name()
        self._expect(TokenType.PUNCT, "(")
        columns = [self._expect_name()]
        while self._accept(TokenType.PUNCT, ","):
            columns.append(self._expect_name())
        self._expect(TokenType.PUNCT, ")")
        self._expect(TokenType.KEYWORD, "VALUES")
        self._expect(TokenType.PUNCT, "(")
        values = [self._parse_expression()]
        while self._accept(TokenType.PUNCT, ","):
            values.append(self._parse_expression())
        self._expect(TokenType.PUNCT, ")")
        if len(columns) != len(values):
            raise SqlParseError(
                f"INSERT has {len(columns)} columns but {len(values)} values"
            )
        return ast.Insert(table=table, columns=tuple(columns), values=tuple(values))

    def _parse_update(self) -> ast.Update:
        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._expect_name()
        self._expect(TokenType.KEYWORD, "SET")
        assignments = [self._parse_assignment()]
        while self._accept(TokenType.PUNCT, ","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def _parse_assignment(self) -> ast.Assignment:
        column = self._expect_name()
        self._expect(TokenType.OPERATOR, "=")
        value = self._parse_expression()
        return ast.Assignment(column=column, value=value)

    def _parse_delete(self) -> ast.Delete:
        self._expect(TokenType.KEYWORD, "DELETE")
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect_name()
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()
        return ast.Delete(table=table, where=where)

    def _parse_create_table(self) -> ast.CreateTable:
        self._expect(TokenType.KEYWORD, "CREATE")
        self._expect(TokenType.KEYWORD, "TABLE")
        table = self._expect_name()
        self._expect(TokenType.PUNCT, "(")
        columns = [self._parse_column_def()]
        while self._accept(TokenType.PUNCT, ","):
            columns.append(self._parse_column_def())
        self._expect(TokenType.PUNCT, ")")
        return ast.CreateTable(table=table, columns=tuple(columns))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_name()
        token = self._current
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            type_name = self._advance().value
        else:
            raise SqlParseError(
                f"expected a column type, got {token.value!r}", token.position
            )
        if type_name == "VARCHAR" and self._accept(TokenType.PUNCT, "("):
            self._expect(TokenType.NUMBER)
            self._expect(TokenType.PUNCT, ")")
        primary = False
        if self._accept(TokenType.KEYWORD, "PRIMARY"):
            self._expect(TokenType.KEYWORD, "KEY")
            primary = True
        return ast.ColumnDef(name=name, type_name=type_name, primary_key=primary)

    # -- expressions (precedence climbing) ------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept(TokenType.KEYWORD, "OR"):
            right = self._parse_and()
            left = ast.BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept(TokenType.KEYWORD, "AND"):
            right = self._parse_not()
            left = ast.BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in _COMPARISONS:
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            right = self._parse_additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        if self._accept(TokenType.KEYWORD, "IS"):
            negated = self._accept(TokenType.KEYWORD, "NOT") is not None
            self._expect(TokenType.KEYWORD, "NULL")
            return ast.IsNull(operand=left, negated=negated)
        negated = False
        if self._check(TokenType.KEYWORD, "NOT"):
            lookahead = self._tokens[self._pos + 1]
            if lookahead.matches(TokenType.KEYWORD, "IN") or lookahead.matches(
                TokenType.KEYWORD, "BETWEEN"
            ) or lookahead.matches(TokenType.KEYWORD, "LIKE"):
                self._advance()
                negated = True
        if self._accept(TokenType.KEYWORD, "IN"):
            self._expect(TokenType.PUNCT, "(")
            if self._check(TokenType.KEYWORD, "SELECT"):
                select = self._parse_select()
                self._expect(TokenType.PUNCT, ")")
                return ast.InSubquery(operand=left, select=select, negated=negated)
            items = [self._parse_expression()]
            while self._accept(TokenType.PUNCT, ","):
                items.append(self._parse_expression())
            self._expect(TokenType.PUNCT, ")")
            return ast.InList(operand=left, items=tuple(items), negated=negated)
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self._accept(TokenType.KEYWORD, "LIKE"):
            pattern = self._parse_additive()
            op = "NOT LIKE" if negated else "LIKE"
            return ast.BinaryOp(op=op, left=left, right=pattern)
        if negated:
            raise SqlParseError(
                "dangling NOT in predicate", self._current.position
            )
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._check(TokenType.OPERATOR, "+") or self._check(
            TokenType.OPERATOR, "-"
        ):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while (
            self._check(TokenType.OPERATOR, "*")
            or self._check(TokenType.OPERATOR, "/")
            or self._check(TokenType.OPERATOR, "%")
        ):
            op = self._advance().value
            right = self._parse_unary()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept(TokenType.OPERATOR, "-"):
            operand = self._parse_unary()
            # Fold "-<number>" into a negative literal so that
            # unparse/parse is a fixpoint.
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(value=-operand.value)
            return ast.UnaryOp(op="-", operand=operand)
        if self._accept(TokenType.OPERATOR, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            value: object = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value=value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            index = self._placeholder_count
            self._placeholder_count += 1
            return ast.Placeholder(index=index)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(value=None)
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            self._advance()
            return self._parse_function_call(token.value)
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.PUNCT, ")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            if self._check(TokenType.PUNCT, "("):
                return self._parse_function_call(token.value)
            if self._accept(TokenType.PUNCT, "."):
                if self._accept(TokenType.OPERATOR, "*"):
                    return ast.Star(table=token.value)
                column = self._expect_name()
                return ast.ColumnRef(column=column, table=token.value)
            return ast.ColumnRef(column=token.value)
        raise SqlParseError(
            f"unexpected token {token.value!r} in expression", token.position
        )

    def _parse_function_call(self, name: str) -> ast.FunctionCall:
        self._expect(TokenType.PUNCT, "(")
        distinct = self._accept(TokenType.KEYWORD, "DISTINCT") is not None
        if self._accept(TokenType.OPERATOR, "*"):
            args: list[ast.Expression] = [ast.Star()]
        else:
            args = [self._parse_expression()]
            while self._accept(TokenType.PUNCT, ","):
                args.append(self._parse_expression())
        self._expect(TokenType.PUNCT, ")")
        return ast.FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)
