"""Query templateization.

The paper's consistency analysis works on *query templates*: the static
skeleton of a SQL statement with its dynamic values abstracted into ``?``
placeholders, plus the *value vector* holding the concrete values of a
particular instance (Section 3.1, Figure 3).

:func:`templateize` converts any statement -- whether issued with inline
literals or already parameterised -- into a canonical
:class:`QueryTemplate` plus value vector.  Two textually different query
strings that differ only in their literal values map to the *same*
template, which is what lets the analysis-result cache (Figure 4)
stabilise to a small fixed set of entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql import ast_nodes as ast
from repro.sql.analysis_info import StatementInfo, extract_info
from repro.sql.parser import parse_statement

#: Shared static-analysis memo keyed by canonical template text.  Equal
#: templates are minted afresh on every request (templateize builds a
#: new object per statement), so per-object caching would re-extract the
#: same info over and over; keying by text makes ``QueryTemplate.info``
#: O(1) after the first instance of each template.  Benign data race
#: under threads: two extractions of the same text produce equal values.
_INFO_CACHE: dict[str, StatementInfo] = {}


@dataclass(frozen=True)
class QueryTemplate:
    """A canonical parameterised statement.

    ``text`` is the canonical SQL with ``?`` placeholders; ``statement``
    is the corresponding AST (containing :class:`~repro.sql.ast_nodes.
    Placeholder` nodes).  Templates hash and compare by ``text`` so they
    can key dictionaries such as the dependency table and the analysis
    cache.
    """

    text: str
    statement: ast.Statement = field(compare=False, hash=False)

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash(self.text)

    @property
    def is_read(self) -> bool:
        return self.statement.is_read

    @property
    def is_write(self) -> bool:
        return self.statement.is_write

    @property
    def info(self) -> StatementInfo:
        """Static read/write-set facts for this template (memoised by text)."""
        cached = _INFO_CACHE.get(self.text)
        if cached is None:
            cached = extract_info(self.statement)
            _INFO_CACHE[self.text] = cached
        return cached

    @property
    def tables(self) -> frozenset[str]:
        """Tables this template references (lower-cased).

        The write-side candidate pruning of the indexed invalidation
        engine keys its inverted table index on exactly this set: two
        templates with disjoint ``tables`` can never depend on one
        another (the pair analysis's ``shared_tables`` precondition).
        """
        return self.info.tables

    @property
    def equality_columns(self) -> frozenset[tuple[str, str]]:
        """(table, column) pairs this template pins with ``column = value``.

        These are the columns the dependency table's per-template value
        index can discriminate instances by.
        """
        return frozenset(
            (binding.table, binding.column)
            for binding in self.info.equality_bindings
        )

    @property
    def indexable_positions(self) -> tuple[int, ...]:
        """Value-vector positions carrying an equality binding, sorted.

        Each position is a slot of the instance value vector that an
        equality predicate compares against; the dependency table builds
        one value-index bucket per position.
        """
        return tuple(
            sorted(
                {
                    binding.value_index
                    for binding in self.info.equality_bindings
                    if binding.value_index is not None
                }
            )
        )

    def bind(self, values: tuple[object, ...]) -> ast.Statement:
        """Return a literal AST with ``values`` substituted for placeholders."""
        return _substitute(self.statement, values)


def templateize(
    sql: str, params: tuple[object, ...] | list[object] | None = None
) -> tuple[QueryTemplate, tuple[object, ...]]:
    """Normalise ``sql`` (+ optional ``params``) to (template, value vector).

    Literals embedded in the statement text are lifted into the value
    vector in left-to-right order, merged with any explicitly supplied
    parameters at their placeholder positions.
    """
    statement = parse_statement(sql)
    supplied = tuple(params or ())
    extractor = _LiteralLifter(supplied)
    lifted = extractor.transform_statement(statement)
    template = QueryTemplate(text=lifted.unparse(), statement=lifted)
    return template, tuple(extractor.values)


class _LiteralLifter:
    """AST transformer replacing literals with placeholders.

    Existing placeholders keep their position and pull their value from
    the supplied parameter vector; literals are appended in visit order.
    The resulting placeholder indices are renumbered left-to-right so the
    canonical template is independent of how the query was written.
    """

    def __init__(self, supplied: tuple[object, ...]) -> None:
        self._supplied = supplied
        self.values: list[object] = []

    def transform_statement(self, node: ast.Statement) -> ast.Statement:
        if isinstance(node, ast.Select):
            return ast.Select(
                items=tuple(
                    ast.SelectItem(self._expr(i.expression), i.alias)
                    for i in node.items
                ),
                tables=node.tables,
                joins=tuple(
                    ast.Join(j.kind, j.table, self._expr(j.condition))
                    for j in node.joins
                ),
                where=self._opt(node.where),
                group_by=tuple(self._expr(e) for e in node.group_by),
                having=self._opt(node.having),
                order_by=tuple(
                    ast.OrderItem(self._expr(o.expression), o.descending)
                    for o in node.order_by
                ),
                limit=self._opt(node.limit),
                offset=self._opt(node.offset),
                distinct=node.distinct,
            )
        if isinstance(node, ast.Insert):
            return ast.Insert(
                table=node.table,
                columns=node.columns,
                values=tuple(self._expr(v) for v in node.values),
            )
        if isinstance(node, ast.Update):
            return ast.Update(
                table=node.table,
                assignments=tuple(
                    ast.Assignment(a.column, self._expr(a.value))
                    for a in node.assignments
                ),
                where=self._opt(node.where),
            )
        if isinstance(node, ast.Delete):
            return ast.Delete(table=node.table, where=self._opt(node.where))
        return node

    def _opt(self, node: ast.Expression | None) -> ast.Expression | None:
        return None if node is None else self._expr(node)

    def _expr(self, node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.Literal):
            if node.value is None:
                return node  # NULL is structural, not a dynamic value
            return self._new_placeholder(node.value)
        if isinstance(node, ast.Placeholder):
            try:
                value = self._supplied[node.index]
            except IndexError:
                raise ValueError(
                    f"statement references parameter {node.index} but only "
                    f"{len(self._supplied)} parameters were supplied"
                ) from None
            return self._new_placeholder(value)
        if isinstance(node, ast.BinaryOp):
            return ast.BinaryOp(node.op, self._expr(node.left), self._expr(node.right))
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(node.op, self._expr(node.operand))
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self._expr(node.operand), node.negated)
        if isinstance(node, ast.InList):
            return ast.InList(
                self._expr(node.operand),
                tuple(self._expr(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.InSubquery):
            return ast.InSubquery(
                self._expr(node.operand),
                self.transform_statement(node.select),
                node.negated,
            )
        if isinstance(node, ast.Between):
            return ast.Between(
                self._expr(node.operand),
                self._expr(node.low),
                self._expr(node.high),
                node.negated,
            )
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name,
                tuple(self._expr(arg) for arg in node.args),
                node.distinct,
            )
        return node

    def _new_placeholder(self, value: object) -> ast.Placeholder:
        index = len(self.values)
        self.values.append(value)
        return ast.Placeholder(index=index)


def _substitute(node: ast.Statement, values: tuple[object, ...]) -> ast.Statement:
    """Replace placeholders in ``node`` with literal values."""
    binder = _Binder(values)
    return binder.transform(node)


class _Binder(_LiteralLifter):
    """Transformer substituting values back into a template.

    Reuses the traversal of :class:`_LiteralLifter` but turns placeholders
    into literals and leaves literals untouched.
    """

    def __init__(self, values: tuple[object, ...]) -> None:
        super().__init__(supplied=values)

    def transform(self, node: ast.Statement) -> ast.Statement:
        return self.transform_statement(node)

    def _expr(self, node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.Placeholder):
            try:
                return ast.Literal(value=self._supplied[node.index])
            except IndexError:
                raise ValueError(
                    f"template references value {node.index} but vector has "
                    f"{len(self._supplied)} values"
                ) from None
        if isinstance(node, ast.Literal):
            return node
        return super()._expr(node)
