"""SQL front end: lexer, AST, parser, templates, and analysis info.

This package implements the SQL subset the paper's benchmark applications
use (SELECT with joins/aggregates/ORDER BY/LIMIT, INSERT, UPDATE, DELETE,
CREATE TABLE) plus the two facilities the AutoWebCache consistency engine
is built on:

- :mod:`repro.sql.template` -- *templateization*: a literal SQL string is
  normalised into a parameterised template plus a vector of dynamic
  values.  Templates are the static unit of the paper's query analysis;
  value vectors feed the run-time intersection tests.
- :mod:`repro.sql.analysis_info` -- per-statement read/write sets (tables,
  columns read, columns updated, WHERE equality bindings) extracted from
  the AST, consumed by :mod:`repro.cache.analysis`.
"""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_statement
from repro.sql.template import QueryTemplate, templateize
from repro.sql.analysis_info import StatementInfo, extract_info
from repro.sql.lineage import Catalog, LineageInfo, OutputLineage, compute_lineage
from repro.sql import ast_nodes

__all__ = [
    "Catalog",
    "LineageInfo",
    "OutputLineage",
    "compute_lineage",
    "Token",
    "TokenType",
    "tokenize",
    "parse_statement",
    "QueryTemplate",
    "templateize",
    "StatementInfo",
    "extract_info",
    "ast_nodes",
]
