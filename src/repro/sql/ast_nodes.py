"""AST node definitions for the SQL subset.

Every node is an immutable dataclass.  ``unparse()`` renders a node back
to canonical SQL text; the parser/unparser pair is a fixpoint (parsing the
unparsed text yields an equal AST), which the property tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression:
    """Base class for expression nodes."""

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value: int, float, string, or None (NULL)."""

    value: object

    def unparse(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Placeholder(Expression):
    """A ``?`` positional parameter; ``index`` is its 0-based position."""

    index: int

    def unparse(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference such as ``items.name``."""

    column: str
    table: str | None = None

    def unparse(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column

    @property
    def key(self) -> str:
        """Lower-cased ``table.column`` or bare ``column`` key."""
        if self.table:
            return f"{self.table.lower()}.{self.column.lower()}"
        return self.column.lower()


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` projection (optionally qualified, e.g. ``t.*``)."""

    table: str | None = None

    def unparse(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: comparison, arithmetic, AND/OR, LIKE, IN."""

    op: str
    left: Expression
    right: Expression

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operation: NOT or arithmetic negation."""

    op: str
    operand: Expression

    def unparse(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.unparse()})"
        return f"({self.op}{self.operand.unparse()})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def unparse(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.unparse()} {keyword})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (item, item, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def unparse(self) -> str:
        inner = ", ".join(item.unparse() for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.unparse()} {keyword} ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``.

    The inner select is a full :class:`Select` statement; its placeholder
    indices share the outer statement's left-to-right numbering.
    """

    operand: Expression
    select: "Select"
    negated: bool = False

    def unparse(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.unparse()} {keyword} ({self.select.unparse()}))"


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def unparse(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.unparse()} {keyword} "
            f"{self.low.unparse()} AND {self.high.unparse()})"
        )


@dataclass(frozen=True)
class FunctionCall(Expression):
    """An aggregate or scalar function call, e.g. ``COUNT(*)``."""

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    def unparse(self) -> str:
        inner = ", ".join(arg.unparse() for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One projection item: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    def unparse(self) -> str:
        text = self.expression.unparse()
        if self.alias:
            text = f"{text} AS {self.alias}"
        return text


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with an optional alias."""

    name: str
    alias: str | None = None

    def unparse(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query."""
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class Join:
    """An explicit JOIN with an ON condition."""

    kind: str  # "INNER" or "LEFT"
    table: TableRef
    condition: Expression

    def unparse(self) -> str:
        return f"{self.kind} JOIN {self.table.unparse()} ON {self.condition.unparse()}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False

    def unparse(self) -> str:
        suffix = " DESC" if self.descending else " ASC"
        return self.expression.unparse() + suffix


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for statement nodes."""

    def unparse(self) -> str:
        raise NotImplementedError

    @property
    def is_read(self) -> bool:
        return isinstance(self, Select)

    @property
    def is_write(self) -> bool:
        return isinstance(self, (Insert, Update, Delete))


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Expression | None = None
    offset: Expression | None = None
    distinct: bool = False

    def unparse(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.unparse() for item in self.items))
        if self.tables:
            parts.append("FROM")
            parts.append(", ".join(table.unparse() for table in self.tables))
        for join in self.joins:
            parts.append(join.unparse())
        if self.where is not None:
            parts.append(f"WHERE {self.where.unparse()}")
        if self.group_by:
            keys = ", ".join(expr.unparse() for expr in self.group_by)
            parts.append(f"GROUP BY {keys}")
        if self.having is not None:
            parts.append(f"HAVING {self.having.unparse()}")
        if self.order_by:
            keys = ", ".join(item.unparse() for item in self.order_by)
            parts.append(f"ORDER BY {keys}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit.unparse()}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset.unparse()}")
        return " ".join(parts)


@dataclass(frozen=True)
class Insert(Statement):
    """An INSERT statement with explicit column list."""

    table: str
    columns: tuple[str, ...]
    values: tuple[Expression, ...]

    def unparse(self) -> str:
        cols = ", ".join(self.columns)
        vals = ", ".join(value.unparse() for value in self.values)
        return f"INSERT INTO {self.table} ({cols}) VALUES ({vals})"


@dataclass(frozen=True)
class Assignment:
    """One ``column = expression`` pair in an UPDATE SET clause."""

    column: str
    value: Expression

    def unparse(self) -> str:
        return f"{self.column} = {self.value.unparse()}"


@dataclass(frozen=True)
class Update(Statement):
    """An UPDATE statement."""

    table: str
    assignments: tuple[Assignment, ...]
    where: Expression | None = None

    def unparse(self) -> str:
        sets = ", ".join(assignment.unparse() for assignment in self.assignments)
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where.unparse()}"
        return text


@dataclass(frozen=True)
class Delete(Statement):
    """A DELETE statement."""

    table: str
    where: Expression | None = None

    def unparse(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where.unparse()}"
        return text


@dataclass(frozen=True)
class ColumnDef:
    """One column definition in CREATE TABLE."""

    name: str
    type_name: str
    primary_key: bool = False

    def unparse(self) -> str:
        text = f"{self.name} {self.type_name}"
        if self.primary_key:
            text += " PRIMARY KEY"
        return text


@dataclass(frozen=True)
class CreateTable(Statement):
    """A CREATE TABLE statement."""

    table: str
    columns: tuple[ColumnDef, ...] = field(default_factory=tuple)

    def unparse(self) -> str:
        cols = ", ".join(col.unparse() for col in self.columns)
        return f"CREATE TABLE {self.table} ({cols})"
