"""Column-level lineage for read templates.

The invalidation engine's column dimension asks one question per
(read template, write) pair: *can this write's columns affect anything
the read depends on?*  Answering it at column granularity requires a
conservative *read set* for each template -- every base-table column
the cached result can observe, through projections, join and selection
predicates, grouping, ordering, aggregates and ``IN (SELECT ...)``
subqueries.  This module computes that set deterministically from the
template AST, optionally sharpened by a :class:`Catalog` describing the
base-table schemas.

Soundness contract (see ``docs/lineage.md`` for the full argument):

- **Never narrow without proof.**  A ``SELECT *`` projection with no
  catalog stays the wildcard ``(table, "*")`` (matches every column);
  an unqualified column the catalog cannot attribute to a unique table
  stays the spill ``("?", column)`` (matches the column on any table).
- **Unknown construct => widen.**  Any extraction failure degrades to
  "reads every column of every referenced table", never to a smaller
  set.
- **Catalog-free == legacy.**  With ``catalog=None`` the read set is
  exactly ``extract_info(statement).columns_read`` -- the facts the
  engine has always used -- so enabling lineage without a catalog
  changes no invalidation decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql import ast_nodes as ast
from repro.sql.analysis_info import _alias_map, _columns_in, extract_info


class Catalog:
    """A schema oracle: which columns each base table has.

    Table and column names are stored lower-cased.  ``columns_of``
    returns ``None`` for a table the catalog does not know, which every
    consumer must treat as "could be anything".
    """

    def __init__(self, schemas: dict[str, tuple[str, ...]] | None = None) -> None:
        self._schemas: dict[str, frozenset[str]] = {}
        for table, columns in (schemas or {}).items():
            self._schemas[table.lower()] = frozenset(c.lower() for c in columns)

    @classmethod
    def from_database(cls, database) -> "Catalog":
        """Build a catalog from a live :class:`~repro.db.engine.Database`."""
        schemas = {
            name: tuple(database.table(name).schema.column_names)
            for name in database.table_names
        }
        return cls(schemas)

    @classmethod
    def from_schemas(cls, *schemas) -> "Catalog":
        """Build a catalog from :class:`~repro.db.schema.TableSchema` objects."""
        return cls({s.name: tuple(s.column_names) for s in schemas})

    @property
    def tables(self) -> frozenset[str]:
        return frozenset(self._schemas)

    def columns_of(self, table: str) -> frozenset[str] | None:
        return self._schemas.get(table.lower())

    def merge(self, other: "Catalog") -> "Catalog":
        """Union of two catalogs; ``other`` wins on a table name clash."""
        merged = Catalog()
        merged._schemas = {**self._schemas, **other._schemas}
        return merged

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self._schemas)


@dataclass(frozen=True)
class OutputLineage:
    """One output column of a read template and its base-column sources.

    ``sources`` uses the same conventions as ``StatementInfo`` column
    sets: ``(table, "*")`` is "every column of *table*" and
    ``("?", column)`` is "*column* on some referenced table".
    """

    output: str
    sources: frozenset[tuple[str, str]]


@dataclass(frozen=True)
class LineageInfo:
    """Column lineage of one read template.

    ``read_set`` is the union of every output's sources plus the
    selection-dependency columns -- the single set the runtime's
    column-disjointness prune consults.  ``exact`` is True only when
    the set contains no wildcard/spill entries, i.e. it enumerates
    real base columns; only exact lineage may justify static claims
    such as RC04 indexability.
    """

    outputs: tuple[OutputLineage, ...]
    selection: frozenset[tuple[str, str]]
    read_set: frozenset[tuple[str, str]]
    tables: frozenset[str]
    exact: bool = field(default=False)

    def reads_column(self, table: str, column: str) -> bool:
        """Conservatively: may this template observe ``table.column``?"""
        table = table.lower()
        column = column.lower()
        for read_table, read_column in self.read_set:
            if read_table != table and read_table != "?":
                continue
            if read_column == "*" or read_column == column:
                return True
        return False


def _expand(
    columns: frozenset[tuple[str, str]], catalog: Catalog | None
) -> frozenset[tuple[str, str]]:
    """Expand ``(table, "*")`` wildcards through the catalog.

    A wildcard on a table the catalog knows becomes that table's full
    column list (a *narrowing with proof*: the table has no other
    columns).  Unknown tables keep their wildcard, and ``("?", col)``
    spills pass through untouched -- resolution happened earlier, in
    ``_resolve``, where the statement's table list is in scope.
    """
    if catalog is None:
        return columns
    expanded: set[tuple[str, str]] = set()
    for table, column in columns:
        if column == "*" and table != "?":
            known = catalog.columns_of(table)
            if known is not None:
                expanded |= {(table, real) for real in sorted(known)}
                continue
        expanded.add((table, column))
    return frozenset(expanded)


def _is_exact(columns: frozenset[tuple[str, str]]) -> bool:
    return all(t != "?" and c != "*" for t, c in columns)


def _output_label(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias.lower()
    expr = item.expression
    if isinstance(expr, ast.ColumnRef):
        return expr.column.lower()
    return expr.unparse()


def compute_lineage(
    statement: ast.Statement, catalog: Catalog | None = None
) -> LineageInfo:
    """Compute :class:`LineageInfo` for a read statement.

    Writes have no output lineage; for uniformity they yield an empty
    ``LineageInfo`` (their invalidation footprint is ``columns_written``,
    not a read set).  Any unexpected construct widens to "all columns
    of all referenced tables" rather than failing.
    """
    try:
        return _compute(statement, catalog)
    except Exception:
        # Widen, never narrow: an extraction surprise must not let a
        # write slip past the prune.
        try:
            tables = extract_info(statement).tables
        except Exception:
            return LineageInfo(
                outputs=(),
                selection=frozenset(),
                read_set=frozenset({("?", "*")}),
                tables=frozenset(),
                exact=False,
            )
        widened = frozenset((table, "*") for table in tables)
        return LineageInfo(
            outputs=(),
            selection=widened,
            read_set=widened,
            tables=tables,
            exact=False,
        )


def _compute(statement: ast.Statement, catalog: Catalog | None) -> LineageInfo:
    info = extract_info(statement, catalog)
    if not isinstance(statement, ast.Select):
        # Writes have no output lineage; their "read set" is what the
        # WHERE clause observes (== columns_read), preserving the
        # catalog-free invariant for every statement kind.
        read_set = _expand(info.columns_read, catalog)
        return LineageInfo(
            outputs=(),
            selection=_expand(info.where_columns, catalog),
            read_set=read_set,
            tables=info.tables,
            exact=_is_exact(read_set),
        )

    bindings = _alias_map(statement)
    local_tables = frozenset(t.name.lower() for t in statement.tables) | frozenset(
        j.table.name.lower() for j in statement.joins
    )
    outputs = tuple(
        OutputLineage(
            output=_output_label(item),
            sources=_expand(
                frozenset(
                    _columns_in(item.expression, bindings, local_tables, catalog)
                ),
                catalog,
            ),
        )
        for item in statement.items
    )

    # Everything that determines *which* rows (and in what order) the
    # result contains: joins, WHERE (incl. folded subquery reads, which
    # extract_info places in where_columns), GROUP BY/HAVING, ORDER BY.
    selection: set[tuple[str, str]] = set(info.where_columns)
    for join in statement.joins:
        selection |= _columns_in(join.condition, bindings, local_tables, catalog)
    for expr in statement.group_by:
        selection |= _columns_in(expr, bindings, local_tables, catalog)
    if statement.having is not None:
        selection |= _columns_in(statement.having, bindings, local_tables, catalog)
    for order in statement.order_by:
        selection |= _columns_in(order.expression, bindings, local_tables, catalog)

    read_set = _expand(info.columns_read, catalog)
    return LineageInfo(
        outputs=outputs,
        selection=_expand(frozenset(selection), catalog),
        read_set=read_set,
        tables=info.tables,
        exact=_is_exact(read_set),
    )
