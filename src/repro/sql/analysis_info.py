"""Static read/write set extraction from statement ASTs.

The query analysis engine (Section 3.2) needs, for each statement
template, the set of tables and columns it touches:

- for a read: the tables read, the columns projected, and the columns
  referenced by the WHERE clause together with any equality bindings
  (``column = <placeholder i>`` or ``column = literal``);
- for a write: the table written, the columns updated (all columns for
  INSERT/DELETE), and the WHERE columns/bindings.

Equality bindings are the ingredient of invalidation policies 2 and 3:
knowing that a read selects rows with ``T.b = X`` and a write targets rows
with ``T.b = Y`` lets the engine prove non-intersection when ``X != Y``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql import ast_nodes as ast


@dataclass(frozen=True)
class EqualityBinding:
    """An equality constraint ``table.column = value-slot``.

    ``value_index`` points into the statement's value vector when the
    compared value is dynamic; ``literal`` carries a structural constant
    (rare after templateization, e.g. NULL comparisons are excluded).
    """

    table: str
    column: str
    value_index: int | None = None
    literal: object = None

    def resolve(self, values: tuple[object, ...]) -> object:
        """Return the concrete value of this binding for an instance."""
        if self.value_index is not None:
            return values[self.value_index]
        return self.literal


@dataclass(frozen=True)
class StatementInfo:
    """Static analysis facts about one statement template.

    All table and column names are lower-cased.  ``columns_read`` is the
    union of projected and WHERE-referenced columns per table;
    ``columns_written`` holds SET/INSERT columns per table.  A ``*``
    projection is recorded as the special column name ``"*"``.
    """

    kind: str  # "select" | "insert" | "update" | "delete"
    tables: frozenset[str]
    columns_read: frozenset[tuple[str, str]]
    columns_written: frozenset[tuple[str, str]]
    where_columns: frozenset[tuple[str, str]]
    equality_bindings: tuple[EqualityBinding, ...]
    write_table: str | None = None
    # True when the WHERE clause is a pure conjunction of equality
    # predicates; only then can policies 2/3 prove non-intersection.
    where_is_conjunctive_equality: bool = True

    @property
    def is_read(self) -> bool:
        return self.kind == "select"

    @property
    def is_write(self) -> bool:
        return not self.is_read

    def reads_table(self, table: str) -> bool:
        return table.lower() in self.tables

    def binding_for(self, table: str, column: str) -> EqualityBinding | None:
        """Return the equality binding on ``table.column``, if any."""
        table = table.lower()
        column = column.lower()
        for binding in self.equality_bindings:
            if binding.table == table and binding.column == column:
                return binding
        return None


def extract_info(
    statement: ast.Statement, catalog: object | None = None
) -> StatementInfo:
    """Extract a :class:`StatementInfo` from a parsed statement.

    ``catalog`` is an optional schema oracle (duck-typed: anything with a
    ``columns_of(table) -> collection | None`` method, canonically
    :class:`repro.sql.lineage.Catalog`).  When present it resolves
    unqualified columns in multi-table reads to their unique owning
    table; when absent (the default) extraction behaves exactly as the
    catalog-less analysis always has, spilling ambiguous references to
    the conservative pseudo-table ``"?"``.
    """
    if isinstance(statement, ast.Select):
        return _extract_select(statement, catalog)
    if isinstance(statement, ast.Insert):
        return _extract_insert(statement)
    if isinstance(statement, ast.Update):
        return _extract_update(statement, catalog)
    if isinstance(statement, ast.Delete):
        return _extract_delete(statement, catalog)
    raise TypeError(f"cannot analyse statement of type {type(statement).__name__}")


# ---------------------------------------------------------------------------
# Extraction per statement kind
# ---------------------------------------------------------------------------


def _extract_select(
    select: ast.Select, catalog: object | None = None
) -> StatementInfo:
    bindings = _alias_map(select)
    tables = frozenset(table.name.lower() for table in select.tables) | frozenset(
        join.table.name.lower() for join in select.joins
    )
    read: set[tuple[str, str]] = set()
    for item in select.items:
        read |= _columns_in(item.expression, bindings, tables, catalog)
    for join in select.joins:
        read |= _columns_in(join.condition, bindings, tables, catalog)
    for expr in select.group_by:
        read |= _columns_in(expr, bindings, tables, catalog)
    for order in select.order_by:
        read |= _columns_in(order.expression, bindings, tables, catalog)
    if select.having is not None:
        read |= _columns_in(select.having, bindings, tables, catalog)

    where_cols: set[tuple[str, str]] = set()
    eq_bindings: list[EqualityBinding] = []
    conjunctive = True
    if select.where is not None:
        where_cols = _columns_in(select.where, bindings, tables, catalog)
        conjunctive = _collect_equalities(
            select.where, bindings, tables, eq_bindings, catalog
        )
        read |= where_cols

    # Fold IN (SELECT ...) subqueries into the outer read footprint: the
    # outer result depends on every table and column the subquery reads,
    # so writes there must be able to find this template as a candidate.
    sub_tables: set[str] = set()
    for sub in _subquery_selects(select):
        sub_info = _extract_select(sub, catalog)
        sub_tables |= sub_info.tables
        read |= sub_info.columns_read
        where_cols |= sub_info.columns_read
    return StatementInfo(
        kind="select",
        tables=tables | frozenset(sub_tables),
        columns_read=frozenset(read),
        columns_written=frozenset(),
        where_columns=frozenset(where_cols),
        equality_bindings=tuple(eq_bindings),
        where_is_conjunctive_equality=conjunctive,
    )


def _extract_insert(insert: ast.Insert) -> StatementInfo:
    table = insert.table.lower()
    written = frozenset((table, column.lower()) for column in insert.columns)
    eq_bindings: list[EqualityBinding] = []
    # An INSERT "binds" the inserted values to their columns: a read whose
    # selection requires column=X only gains a row if the insert writes X.
    for column, value in zip(insert.columns, insert.values):
        if isinstance(value, ast.Placeholder):
            eq_bindings.append(
                EqualityBinding(table=table, column=column.lower(), value_index=value.index)
            )
        elif isinstance(value, ast.Literal):
            eq_bindings.append(
                EqualityBinding(table=table, column=column.lower(), literal=value.value)
            )
    return StatementInfo(
        kind="insert",
        tables=frozenset({table}),
        columns_read=frozenset(),
        columns_written=written,
        where_columns=frozenset(),
        equality_bindings=tuple(eq_bindings),
        write_table=table,
    )


def _extract_update(
    update: ast.Update, catalog: object | None = None
) -> StatementInfo:
    table = update.table.lower()
    tables = frozenset({table})
    bindings = {table: table}
    written = frozenset((table, a.column.lower()) for a in update.assignments)
    where_cols: set[tuple[str, str]] = set()
    eq_bindings: list[EqualityBinding] = []
    conjunctive = True
    if update.where is not None:
        where_cols = _columns_in(update.where, bindings, tables, catalog)
        conjunctive = _collect_equalities(
            update.where, bindings, tables, eq_bindings, catalog
        )
    # SET column = value also constrains the post-state of those columns.
    for assignment in update.assignments:
        if isinstance(assignment.value, ast.Placeholder):
            eq_bindings.append(
                EqualityBinding(
                    table=table,
                    column=assignment.column.lower(),
                    value_index=assignment.value.index,
                )
            )
    return StatementInfo(
        kind="update",
        tables=tables,
        columns_read=frozenset(where_cols),
        columns_written=written,
        where_columns=frozenset(where_cols),
        equality_bindings=tuple(eq_bindings),
        write_table=table,
        where_is_conjunctive_equality=conjunctive,
    )


def _extract_delete(
    delete: ast.Delete, catalog: object | None = None
) -> StatementInfo:
    table = delete.table.lower()
    tables = frozenset({table})
    bindings = {table: table}
    where_cols: set[tuple[str, str]] = set()
    eq_bindings: list[EqualityBinding] = []
    conjunctive = True
    if delete.where is not None:
        where_cols = _columns_in(delete.where, bindings, tables, catalog)
        conjunctive = _collect_equalities(
            delete.where, bindings, tables, eq_bindings, catalog
        )
    # A DELETE touches every column of the table: any read on the table
    # may lose rows.
    written = frozenset({(table, "*")})
    return StatementInfo(
        kind="delete",
        tables=tables,
        columns_read=frozenset(where_cols),
        columns_written=written,
        where_columns=frozenset(where_cols),
        equality_bindings=tuple(eq_bindings),
        write_table=table,
        where_is_conjunctive_equality=conjunctive,
    )


# ---------------------------------------------------------------------------
# Expression walking
# ---------------------------------------------------------------------------


def _alias_map(select: ast.Select) -> dict[str, str]:
    """Map binding names (aliases or table names) to real table names."""
    mapping: dict[str, str] = {}
    for table in select.tables:
        mapping[table.binding] = table.name.lower()
    for join in select.joins:
        mapping[join.table.binding] = join.table.name.lower()
    return mapping


def _resolve(
    ref: ast.ColumnRef,
    bindings: dict[str, str],
    tables: frozenset[str],
    catalog: object | None = None,
) -> tuple[str, str]:
    """Resolve a column reference to a (table, column) pair.

    Unqualified references in single-table statements resolve to that
    table.  In multi-table statements a ``catalog`` (schema oracle) can
    prove a unique owning table; when it cannot -- no catalog, a table
    of unknown schema, or the column lives in several read tables --
    the reference spills to the pseudo-table ``"?"``, which the
    analysis treats conservatively (matches any table).
    """
    column = ref.column.lower()
    if ref.table is not None:
        return bindings.get(ref.table.lower(), ref.table.lower()), column
    if len(tables) == 1:
        return next(iter(tables)), column
    if catalog is not None:
        owners = []
        unknown_schema = False
        for table in sorted(tables):
            columns = catalog.columns_of(table)
            if columns is None:
                unknown_schema = True
            elif column in columns:
                owners.append(table)
        if not unknown_schema and len(owners) == 1:
            return owners[0], column
    return "?", column


def _columns_in(
    expr: ast.Expression,
    bindings: dict[str, str],
    tables: frozenset[str],
    catalog: object | None = None,
) -> set[tuple[str, str]]:
    """Collect every (table, column) referenced by ``expr``.

    ``IN (SELECT ...)`` operands are walked but the subquery body is
    not: subquery footprints are folded in by :func:`_extract_select`,
    which resolves them against the *subquery's* own tables.
    """
    found: set[tuple[str, str]] = set()

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.ColumnRef):
            found.add(_resolve(node, bindings, tables, catalog))
        elif isinstance(node, ast.Star):
            if node.table is not None:
                found.add((bindings.get(node.table.lower(), node.table.lower()), "*"))
            else:
                for table in tables:
                    found.add((table, "*"))
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.InSubquery):
            walk(node.operand)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return found


def _subquery_selects(select: ast.Select) -> list[ast.Select]:
    """Collect the immediate ``IN (SELECT ...)`` subqueries of ``select``.

    Only the directly nested selects are returned; deeper nesting is
    handled by the recursive :func:`_extract_select` call on each.
    """
    found: list[ast.Select] = []

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.InSubquery):
            walk(node.operand)
            found.append(node.select)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)

    for item in select.items:
        walk(item.expression)
    for join in select.joins:
        walk(join.condition)
    if select.where is not None:
        walk(select.where)
    for expr in select.group_by:
        walk(expr)
    if select.having is not None:
        walk(select.having)
    for order in select.order_by:
        walk(order.expression)
    return found


def _collect_equalities(
    expr: ast.Expression,
    bindings: dict[str, str],
    tables: frozenset[str],
    out: list[EqualityBinding],
    catalog: object | None = None,
) -> bool:
    """Collect ``column = value`` bindings from a conjunctive WHERE clause.

    Returns True when ``expr`` is a pure conjunction whose leaves are
    either equality predicates against a value slot or column-to-column
    equalities (join conditions, which are ignored but do not break
    conjunctivity).  OR/NOT/inequality leaves return False, signalling
    the engine to fall back to conservative table/column intersection.
    """
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        left_ok = _collect_equalities(expr.left, bindings, tables, out, catalog)
        right_ok = _collect_equalities(expr.right, bindings, tables, out, catalog)
        return left_ok and right_ok
    if isinstance(expr, ast.BinaryOp) and expr.op == "=":
        column_side = None
        value_side = None
        if isinstance(expr.left, ast.ColumnRef):
            column_side, value_side = expr.left, expr.right
        elif isinstance(expr.right, ast.ColumnRef):
            column_side, value_side = expr.right, expr.left
        if column_side is None:
            return False
        if isinstance(value_side, ast.ColumnRef):
            return True  # join predicate: no binding, still conjunctive
        table, column = _resolve(column_side, bindings, tables, catalog)
        if isinstance(value_side, ast.Placeholder):
            out.append(
                EqualityBinding(table=table, column=column, value_index=value_side.index)
            )
            return True
        if isinstance(value_side, ast.Literal):
            out.append(
                EqualityBinding(table=table, column=column, literal=value_side.value)
            )
            return True
        return False
    return False
