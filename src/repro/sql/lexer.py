"""SQL tokenizer.

Splits a SQL string into a flat list of :class:`Token` objects.  The lexer
is deliberately permissive about keyword casing (SQL keywords are
case-insensitive) and recognises the ``?`` positional placeholder used by
parameterised queries, which is central to query templateization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlLexError

# Keywords recognised by the parser.  Anything else that looks like a word
# is an identifier.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO",
        "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "PRIMARY",
        "KEY", "ORDER", "BY", "GROUP", "HAVING", "ASC", "DESC", "LIMIT",
        "OFFSET", "JOIN", "INNER", "LEFT", "OUTER", "ON", "AS", "DISTINCT",
        "NULL", "IS", "IN", "BETWEEN", "LIKE", "COUNT", "SUM", "AVG", "MIN",
        "MAX", "INT", "INTEGER", "FLOAT", "VARCHAR", "DATETIME", "TEXT",
    }
)


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PLACEHOLDER = "placeholder"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the canonical text: upper-cased for keywords, verbatim
    for identifiers and operators, the decoded text for strings, and the
    literal digits for numbers.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """Return True when this token has the given type (and value)."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value


_OPERATOR_STARTS = "<>=!+-*/%"
_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=")
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of tokens terminated by an EOF token.

    Raises :class:`~repro.errors.SqlLexError` on unterminated strings or
    characters outside the supported alphabet.
    """
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PLACEHOLDER, "?", i))
            i += 1
            continue
        if ch == "'" or ch == '"':
            text, i = _read_string(sql, i, ch)
            tokens.append(Token(TokenType.STRING, text, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            text, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, text, i))
            continue
        if ch.isalpha() or ch == "_":
            text, i = _read_word(sql, i)
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, text, i))
            continue
        if ch in _OPERATOR_STARTS:
            pair = sql[i : i + 2]
            if pair in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, pair, i))
                i += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, ch, i))
                i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(sql: str, start: int, quote: str) -> tuple[str, int]:
    """Read a quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == quote:
            if i + 1 < len(sql) and sql[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlLexError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    """Read an integer or decimal literal starting at ``start``."""
    i = start
    seen_dot = False
    while i < len(sql):
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot:
            seen_dot = True
            i += 1
        else:
            break
    return sql[start:i], i


def _read_word(sql: str, start: int) -> tuple[str, int]:
    """Read an identifier/keyword starting at ``start``."""
    i = start
    while i < len(sql) and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    return sql[start:i], i
