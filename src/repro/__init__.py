"""AutoWebCache reproduction.

A from-scratch Python reproduction of *"Caching Dynamic Web Content:
Designing and Analysing an Aspect-Oriented Solution"* (Bouchenak et al.,
Middleware 2006), including every substrate the paper depends on:

- :mod:`repro.aop` -- aspect-oriented programming framework (join points,
  pointcuts, advice, weaver); the AspectJ analogue.
- :mod:`repro.sql` -- SQL lexer, parser, templates and query analysis info.
- :mod:`repro.db` -- in-memory relational database with a DB-API style
  driver; the MySQL + JDBC analogue.
- :mod:`repro.web` -- servlet engine (requests, responses, sessions,
  container); the Tomcat analogue.
- :mod:`repro.cache` -- **AutoWebCache itself**: page cache, query analysis
  engine with three invalidation policies, consistency collection, and the
  aspects that weave caching into an application transparently.
- :mod:`repro.apps` -- the RUBiS auction site and TPC-W bookstore
  benchmark applications.
- :mod:`repro.workload` -- client-browser emulator and workload mixes.
- :mod:`repro.sim` -- discrete-event load simulator standing in for the
  paper's hardware testbed.
- :mod:`repro.harness` -- experiment harness regenerating every figure in
  the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
