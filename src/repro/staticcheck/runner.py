"""Orchestrates the four passes into one :class:`Report`."""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck.cacheability import check_cacheability, lineage_summary
from repro.staticcheck.coverage import check_coverage
from repro.staticcheck.diagnostics import Report, load_baseline
from repro.staticcheck.lockorder import check_lock_order
from repro.staticcheck.methodcache import check_method_cache
from repro.staticcheck.target import CheckTarget, default_target


def run_check(
    target: CheckTarget | None = None,
    baseline_path: Path | None | str = "auto",
) -> Report:
    """Run every pass over ``target`` (the real repo by default).

    ``baseline_path="auto"`` uses the target's recorded baseline;
    ``None`` disables baselining (every finding is active).
    """
    target = target or default_target()
    diagnostics = (
        check_cacheability(target)
        + check_method_cache(target)
        + check_coverage(target)
        + check_lock_order(target)
    )
    if baseline_path == "auto":
        resolved = target.baseline_path
    else:
        resolved = Path(baseline_path) if baseline_path else None
    baseline = load_baseline(resolved) if resolved else ()
    report = Report.build(diagnostics, baseline)
    report.lineage = lineage_summary(target)
    return report
