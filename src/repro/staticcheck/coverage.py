"""Pointcut-coverage pass: PC01..PC03.

Evaluates every registered pointcut (the advice specs attached by the
``@around``/``@before`` decorators, read off the aspect *classes* --
no instantiation needed) against the statically discovered join-point
surface (:meth:`repro.aop.weaver.Weaver.join_point_surface`):

- **PC01** -- a dead pointcut: its advice matches no join point on the
  surface, so the concern it implements silently never runs;
- **PC02** -- a required join point (servlet handler, driver-level SQL
  or transaction call) matched by *no caching advice*: reads reaching
  the database outside the woven path break consistency invisibly (the
  paper's own limitations section);
- **PC03** -- two aspects of equal precedence advising the same join
  point: their around-nesting order degrades to declaration order,
  which is accidental and silently changes under refactoring.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.aop.advice import AdviceKind, AdviceSpec
from repro.aop.pointcut import MethodTarget
from repro.aop.weaver import Weaver
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.source import relative_to
from repro.staticcheck.target import CheckTarget


@dataclass(frozen=True)
class RegisteredAdvice:
    """One advice declaration, read off its aspect class."""

    aspect_cls: type
    advice_name: str
    spec: AdviceSpec

    @property
    def precedence(self) -> int:
        return getattr(self.aspect_cls, "precedence", 0)

    @property
    def label(self) -> str:
        return f"{self.aspect_cls.__name__}.{self.advice_name}"


def registered_advice(aspect_classes: tuple[type, ...]) -> list[RegisteredAdvice]:
    registered: list[RegisteredAdvice] = []
    for aspect_cls in aspect_classes:
        seen: set[str] = set()
        for klass in aspect_cls.__mro__:
            for name, attr in vars(klass).items():
                if name in seen:
                    continue
                specs = getattr(attr, "__advice_specs__", None)
                if specs is None:
                    continue
                seen.add(name)
                for spec in specs:
                    registered.append(
                        RegisteredAdvice(
                            aspect_cls=aspect_cls, advice_name=name, spec=spec
                        )
                    )
    return registered


def _advice_location(advice: RegisteredAdvice, target: CheckTarget):
    """(repo-relative file, line) of the advice function's definition."""
    function = None
    for klass in advice.aspect_cls.__mro__:
        function = vars(klass).get(advice.advice_name)
        if function is not None:
            break
    try:
        file = inspect.getsourcefile(function)
        _lines, line = inspect.getsourcelines(function)
    except (OSError, TypeError):
        return "?", 0
    return relative_to(file or "?", target.repo_root), line


def _target_location(mt: MethodTarget, target: CheckTarget):
    try:
        file = inspect.getsourcefile(mt.function)
        _lines, line = inspect.getsourcelines(mt.function)
    except (OSError, TypeError):
        return "?", 0
    return relative_to(file or "?", target.repo_root), line


def check_coverage(target: CheckTarget) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    surface_classes = tuple(
        dict.fromkeys(tuple(target.servlet_classes()) + target.surface_classes)
    )
    surface = Weaver.join_point_surface(surface_classes)
    all_advice = registered_advice(target.aspect_classes)
    caching_classes = set(target.caching_aspect_classes)

    # --- PC01: dead pointcuts.
    for advice in all_advice:
        if any(advice.spec.pointcut.matches(mt) for mt in surface):
            continue
        file, line = _advice_location(advice, target)
        diagnostics.append(
            Diagnostic(
                rule="PC01",
                file=file,
                line=line,
                symbol=advice.label,
                message=(
                    f"pointcut {advice.spec.pointcut} matches no join "
                    f"point on the {len(surface)}-method surface; the "
                    f"advice never runs"
                ),
            )
        )

    # --- PC02: required join points with no caching advice.
    caching_advice = [
        a for a in all_advice if a.aspect_cls in caching_classes
    ]
    required: list[MethodTarget] = []
    for servlet_cls in target.servlet_classes():
        for mt in Weaver.join_point_surface([servlet_cls]):
            if mt.method_name in ("do_get", "do_post"):
                required.append(mt)
    for req_cls, method_name in target.required_sql_sites:
        for mt in Weaver.join_point_surface([req_cls]):
            if mt.method_name == method_name:
                required.append(mt)
    for mt in required:
        if any(a.spec.pointcut.matches(mt) for a in caching_advice):
            continue
        file, line = _target_location(mt, target)
        diagnostics.append(
            Diagnostic(
                rule="PC02",
                file=file,
                line=line,
                symbol=f"{mt.cls.__name__}.{mt.method_name}",
                message=(
                    f"{mt.cls.__name__}.{mt.method_name} is a required "
                    f"join point but no caching advice matches it; "
                    f"requests served here bypass the cache protocol"
                ),
            )
        )

    # --- PC03: precedence ambiguity among around advice.
    arounds = [a for a in all_advice if a.spec.kind is AdviceKind.AROUND]
    reported: set[tuple[str, str, str]] = set()
    for mt in surface:
        matched = [a for a in arounds if a.spec.pointcut.matches(mt)]
        for i, first in enumerate(matched):
            for second in matched[i + 1 :]:
                if first.aspect_cls is second.aspect_cls:
                    continue  # same aspect: declaration order is the contract
                if first.precedence != second.precedence:
                    continue
                key = tuple(
                    sorted((first.label, second.label))
                ) + (f"{mt.cls.__name__}.{mt.method_name}",)
                if key in reported:
                    continue
                reported.add(key)
                file, line = _advice_location(second, target)
                diagnostics.append(
                    Diagnostic(
                        rule="PC03",
                        file=file,
                        line=line,
                        symbol=f"{first.label}|{second.label}",
                        message=(
                            f"{first.label} and {second.label} both advise "
                            f"{mt.cls.__name__}.{mt.method_name} at "
                            f"precedence {first.precedence}; their nesting "
                            f"order is accidental declaration order"
                        ),
                    )
                )
    return diagnostics
