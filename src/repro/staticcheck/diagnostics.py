"""The unified diagnostic model: rules, findings, baselines, reports.

Every pass emits :class:`Diagnostic` records against the catalogue in
:data:`RULES`.  A :class:`Report` applies an optional baseline --
intentional, justified findings recorded in ``staticcheck-baseline.json``
-- and is what the CLI renders (text or JSON) and CI gates on: any
*active* (non-baselined) diagnostic makes the check fail.

Baseline entries match on ``(rule, file, symbol)``, deliberately
ignoring line numbers so unrelated edits to a file do not invalidate
the baseline.  Entries that no longer match anything are reported as
*stale* so the baseline cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Rule:
    """One rule of the catalogue (see ``docs/staticcheck.md``)."""

    id: str
    severity: str  # "error" | "warning"
    title: str
    hint: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "RC01",
            "error",
            "write reachable from a cacheable do_get",
            "move the write into a do_post handler (the write aspect "
            "invalidates after do_post), or mark the URI uncacheable",
        ),
        Rule(
            "RC02",
            "error",
            "non-deterministic source flows into a cached response body",
            "mark the URI uncacheable in the SemanticsRegistry (the "
            "paper's hidden-state rule), or derive the value from the "
            "request so it is part of the cache key",
        ),
        Rule(
            "RC03",
            "error",
            "database access bypasses the woven DB-API driver",
            "route the query through Statement.execute_query / "
            "execute_update so the consistency aspect records it",
        ),
        Rule(
            "RC04",
            "warning",
            "read template has neither an equality-bound position nor "
            "a column-disjointness plan",
            "the dependency table's value index cannot discriminate "
            "this template's instances, and its column lineage is not "
            "exact (or reads its tables' full width), so *every* "
            "overlapping write scans them.  Add an equality predicate, "
            "project specific columns of schema-known tables so the "
            "lineage prune can skip column-disjoint writes, or "
            "baseline the finding if the full scan is intended",
        ),
        Rule(
            "RC06",
            "warning",
            "dead write: updated columns are read by no registered "
            "template",
            "no read template reachable from any handler (or "
            "method-cache target) has these columns in its lineage "
            "read set, so the write can never invalidate a cached "
            "entry.  Either the column is dead weight in the write, or "
            "a read that should register a dependency on it is missing "
            "(e.g. bypassing the woven driver) -- fix the read, drop "
            "the column, or baseline with a justification",
        ),
        Rule(
            "RC05",
            "error",
            "method-cache candidate is not a function of its arguments",
            "a method woven with MethodCacheAspect is keyed on "
            "method://Class.method?args alone; reading request/session "
            "state or entropy outside a hole makes the cached result "
            "wrong for other requests.  Pass the varying value as an "
            "argument, confine it to a hole, or drop the method from "
            "the method-cache pointcut",
        ),
        Rule(
            "PC01",
            "warning",
            "dead pointcut: advice matches no join point",
            "fix the type/method pattern (Pointcut.explain(target) "
            "shows why each candidate is rejected) or delete the advice",
        ),
        Rule(
            "PC02",
            "error",
            "required join point matched by no caching advice",
            "every servlet handler and driver-level SQL/transaction "
            "call site must be covered; widen the aspect's pointcut or "
            "register the class with the weaver",
        ),
        Rule(
            "PC03",
            "error",
            "advice-precedence ambiguity at a shared join point",
            "two aspects with equal precedence advise the same join "
            "point; their nesting order is declaration order, which is "
            "accidental -- give the aspects distinct precedences",
        ),
        Rule(
            "LK01",
            "error",
            "lock acquisition violates the documented order",
            "acquire locks in LOCK_ORDER (repro.locks) position order; "
            "restructure so the inner call does not need the "
            "earlier-ranked lock while a later-ranked one is held",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a source location."""

    rule: str
    file: str  # repo-relative, '/'-separated
    line: int
    symbol: str  # e.g. "BrowseCategories.do_get"
    message: str

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    @property
    def hint(self) -> str:
        return RULES[self.rule].hint

    @property
    def key(self) -> tuple[str, str, str]:
        """Baseline matching key (line numbers excluded on purpose)."""
        return (self.rule, self.file, self.symbol)

    def format(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.rule} [{self.severity}] "
            f"{self.symbol}: {self.message}\n    hint: {self.hint}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class BaselineEntry:
    """One intentional finding, with its recorded justification."""

    rule: str
    file: str
    symbol: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.file, self.symbol)


def load_baseline(path: Path) -> tuple[BaselineEntry, ...]:
    """Read ``staticcheck-baseline.json`` (see docs for the format).

    A missing file is an empty baseline: every finding stays active,
    so a mistyped path fails loudly through the findings themselves.
    """
    path = Path(path)
    if not path.exists():
        return ()
    data = json.loads(path.read_text())
    entries = []
    for raw in data.get("entries", ()):
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                file=raw["file"],
                symbol=raw["symbol"],
                justification=raw.get("justification", ""),
            )
        )
    return tuple(entries)


@dataclass
class Report:
    """The outcome of one check run, after baseline application."""

    active: list[Diagnostic] = field(default_factory=list)
    suppressed: list[tuple[Diagnostic, BaselineEntry]] = field(
        default_factory=list
    )
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: Fuzzy matches for stale entries: ``entry.key -> file`` where a
    #: live diagnostic has the same (rule, symbol) but a different
    #: file -- almost always a file move that orphaned the entry.
    stale_hints: dict[tuple[str, str, str], str] = field(default_factory=dict)
    #: Column-lineage summary over the target's read templates (see
    #: :func:`repro.staticcheck.cacheability.lineage_summary`); None
    #: when the runner did not compute one.
    lineage: dict[str, int] | None = None

    @classmethod
    def build(
        cls,
        diagnostics: list[Diagnostic],
        baseline: tuple[BaselineEntry, ...] = (),
    ) -> "Report":
        by_key: dict[tuple[str, str, str], BaselineEntry] = {
            entry.key: entry for entry in baseline
        }
        report = cls()
        matched: set[tuple[str, str, str]] = set()
        for diagnostic in sorted(
            diagnostics, key=lambda d: (d.file, d.line, d.rule, d.symbol)
        ):
            entry = by_key.get(diagnostic.key)
            if entry is not None:
                report.suppressed.append((diagnostic, entry))
                matched.add(entry.key)
            else:
                report.active.append(diagnostic)
        report.stale_baseline = [
            entry for entry in baseline if entry.key not in matched
        ]
        # Baseline keys include the file, so moving a file orphans its
        # entries even though the finding still exists.  Point each
        # stale entry at a same-(rule, symbol) diagnostic in another
        # file so the report says "moved" instead of just "stale".
        by_rule_symbol: dict[tuple[str, str], set[str]] = {}
        for diagnostic in diagnostics:
            by_rule_symbol.setdefault(
                (diagnostic.rule, diagnostic.symbol), set()
            ).add(diagnostic.file)
        for entry in report.stale_baseline:
            moved = by_rule_symbol.get((entry.rule, entry.symbol), set())
            moved = moved - {entry.file}
            if moved:
                report.stale_hints[entry.key] = sorted(moved)[0]
        return report

    @property
    def ok(self) -> bool:
        return not self.active

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def rule_ids(self) -> set[str]:
        return {d.rule for d in self.active}

    def render_text(self) -> str:
        lines: list[str] = []
        for diagnostic in self.active:
            lines.append(diagnostic.format())
        if self.suppressed:
            lines.append(
                f"{len(self.suppressed)} finding(s) suppressed by baseline:"
            )
            for diagnostic, entry in self.suppressed:
                lines.append(
                    f"    {diagnostic.rule} {diagnostic.symbol} "
                    f"({diagnostic.file}) -- {entry.justification}"
                )
        for entry in self.stale_baseline:
            hint = self.stale_hints.get(entry.key)
            suffix = (
                f" -- moved? the finding now reports at {hint}; "
                f"update the entry's file" if hint else ""
            )
            lines.append(
                f"stale baseline entry (no longer reported): "
                f"{entry.rule} {entry.symbol} ({entry.file}){suffix}"
            )
        lines.append(
            f"staticcheck: {len(self.active)} active, "
            f"{len(self.suppressed)} baselined, "
            f"{len(self.stale_baseline)} stale baseline entr"
            f"{'y' if len(self.stale_baseline) == 1 else 'ies'}"
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            **({"lineage": self.lineage} if self.lineage is not None else {}),
            "active": [d.to_json() for d in self.active],
            "suppressed": [
                {**d.to_json(), "justification": e.justification}
                for d, e in self.suppressed
            ],
            "stale_baseline": [
                {
                    "rule": e.rule,
                    "file": e.file,
                    "symbol": e.symbol,
                    **(
                        {"moved_to": self.stale_hints[e.key]}
                        if e.key in self.stale_hints
                        else {}
                    ),
                }
                for e in self.stale_baseline
            ],
        }
