"""Cacheability pass: RC01..RC04 and RC06 over the servlet classes.

Walks the call graph reachable from each registered handler
(``do_get``/``do_post``) through ``self.*`` helper methods, extracts the
SQL string templates flowing into the woven driver, and checks the
preconditions of the paper's consistency protocol:

- **RC01** -- a *write* reachable from a cacheable ``do_get``: the read
  aspect would cache a page whose computation mutated the database (the
  write aspect only invalidates after ``do_post``).
- **RC02** -- a non-deterministic source (``random``/``time``-style
  modules, an entropy-holding collaborator such as the TPC-W
  ``AdRotator``, or session-derived content) feeding a cached body: the
  paper's hidden-state problem; the page is not a function of its URI.
- **RC03** -- database access whose receiver is not the woven
  ``Statement``: the consistency aspect never sees the query, so its
  dependencies/invalidations are silently lost.
- **RC04** -- a read template with no equality-bound placeholder
  position *and* no column-disjointness plan: ``repro.cache.analysis``
  can neither index it nor (because its lineage is inexact or covers
  its tables' full width) prune any overlapping write by column
  disjointness, so every overlapping write degenerates to a
  per-template scan of all cached instances.
- **RC06** -- a dead write: a ``do_post`` UPDATE whose SET columns
  appear in no reachable read template's lineage read set (unioned per
  app, plus the method-cache targets).  Such a write can never doom a
  cached entry -- either the column is dead weight or a read that
  should depend on it bypasses registration.  The union is widened to
  "everything" by any read the checker cannot resolve (non-constant
  SQL, parse failure), silencing the rule rather than guessing.

Fragmented pages (``AppSpec.fragmented_uris``) are uncacheable whole
but cached per-fragment, so the read rules apply to them again -- with
the *hole exemption* for RC02: a site lexically inside a ``hole(...)``
render thunk (or in a helper reachable only through hole thunks) is
recomputed on every request and never enters a cached body, so entropy
there is exactly how hidden state is supposed to be expressed.  A
``fragment(...)`` thunk re-enters the cacheable surface, including one
nested inside a hole.
"""

from __future__ import annotations

import ast

from repro.sql.lineage import compute_lineage
from repro.sql.template import templateize
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.source import (
    ENTROPY_MODULES,
    SESSION_SOURCES,
    ClassInfo,
    FunctionSource,
    relative_to,
    scan_calls,
    string_constant,
)
from repro.staticcheck.target import CheckTarget

#: Call names that execute SQL when sent to a non-woven receiver.
_SQL_EXECUTORS = frozenset(
    {"execute_query", "execute_update", "execute", "query", "execute_statement"}
)
_WRITE_EXECUTORS = frozenset({"execute_update"})
_HANDLERS = ("do_get", "do_post")

#: The composer boundary functions (repro.apps.html): called either as
#: module-level helpers or as PageComposer methods.
_COMPOSER_CALLS = frozenset({"fragment", "hole"})


def check_cacheability(target: CheckTarget) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for app in target.apps:
        for uri, servlet_cls, is_write in app.interactions:
            info = target.registry.info_for(servlet_cls)
            # Fragmented pages are never cached whole but their
            # fragments are, so the read rules re-apply to them.
            cacheable = not is_write and (
                uri in app.fragmented_uris or uri not in app.uncacheable_uris
            )
            diagnostics.extend(
                _check_servlet(target, info, cacheable=cacheable)
            )
        diagnostics.extend(_check_dead_writes(target, app))
    return _dedupe(diagnostics)


def _check_servlet(
    target: CheckTarget, info: ClassInfo, cacheable: bool
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for handler in _HANDLERS:
        entry = info.functions.get(handler)
        if entry is None or entry.owner.__module__.startswith("repro.web"):
            continue  # not defined by the app (default 405 handler)
        for fn, confined in _reachable(info, entry):
            diagnostics.extend(
                _check_function(target, info, handler, fn, cacheable, confined)
            )
    return diagnostics


def _composer_call_name(node: ast.Call) -> str | None:
    """``'fragment'``/``'hole'`` if the call is a composer boundary."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _COMPOSER_CALLS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _COMPOSER_CALLS:
        return func.attr
    return None


def _boundary_states(fn: FunctionSource) -> dict[int, str]:
    """``id(node) -> innermost composer boundary`` for every node that
    sits inside the arguments of a ``hole(...)``/``fragment(...)`` call.

    The innermost boundary wins: a ``fragment(...)`` thunk nested in a
    hole re-enters the cacheable surface, and vice versa.
    """
    states: dict[int, str] = {}

    def visit(node: ast.AST, state: str | None) -> None:
        if state is not None:
            states[id(node)] = state
        if isinstance(node, ast.Call):
            boundary = _composer_call_name(node)
            if boundary is not None:
                visit(node.func, state)
                for arg in node.args:
                    visit(arg, boundary)
                for keyword in node.keywords:
                    visit(keyword, boundary)
                return
        for child in ast.iter_child_nodes(node):
            visit(child, state)

    visit(fn.node, None)
    return states


def _reachable(
    info: ClassInfo, entry: FunctionSource
) -> list[tuple[FunctionSource, bool]]:
    """``entry`` plus every ``self.*`` method transitively called, each
    with a *confined* flag: True iff every call path from the handler
    into it passes through a ``hole(...)`` thunk without re-entering
    through a ``fragment(...)`` one.  A confined helper renders per
    request and never feeds a cached body.
    """
    seen: dict[str, FunctionSource] = {entry.name: entry}
    edges: list[tuple[str, str, str | None]] = []
    queue = [entry]
    while queue:
        fn = queue.pop()
        states = _boundary_states(fn)
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                callee = info.functions.get(node.func.attr)
                if callee is None:
                    continue
                edges.append((fn.name, callee.name, states.get(id(node))))
                if callee.name not in seen:
                    seen[callee.name] = callee
                    queue.append(callee)
    # Fixpoint over the call edges, monotonically True -> False: the
    # entry is unconfined; an edge confines its callee only if the call
    # site is in a hole ("fragment" re-enters cacheable; a plain call
    # inherits the caller's confinement).
    confined = {name: name != entry.name for name in seen}
    changed = True
    while changed:
        changed = False
        for caller, callee, state in edges:
            if state == "hole":
                edge_confined = True
            elif state == "fragment":
                edge_confined = False
            else:
                edge_confined = confined[caller]
            if not edge_confined and confined[callee]:
                confined[callee] = False
                changed = True
    return [(fn, confined[name]) for name, fn in seen.items()]


def _check_function(
    target: CheckTarget,
    info: ClassInfo,
    handler: str,
    fn: FunctionSource,
    cacheable: bool,
    confined: bool = False,
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    file = relative_to(fn.file, target.repo_root)
    symbol = f"{info.name}.{handler}"
    scan = scan_calls(info, fn, target.registry)
    check_reads = cacheable and handler == "do_get"
    states = _boundary_states(fn)

    for site in scan.sites:
        # --- RC03: SQL through a non-woven receiver (always checked;
        # a bypassed *write* breaks every cached page's invalidation,
        # a bypassed read breaks this page's dependencies).
        if (
            site.method in _SQL_EXECUTORS
            and site.receiver_type is not None
            and site.receiver_type not in target.woven_sql_types
        ):
            diagnostics.append(
                Diagnostic(
                    rule="RC03",
                    file=file,
                    line=site.line,
                    symbol=symbol,
                    message=(
                        f"{site.receiver_type}.{site.method}(...) reaches "
                        f"the database without passing through the woven "
                        f"Statement; the consistency aspect cannot see it"
                    ),
                )
            )
            continue
        if site.method in _SQL_EXECUTORS and site.receiver_type is None:
            # Unresolvable receiver executing SQL-looking calls: only
            # flag when it carries a SQL string (avoids false positives
            # on unrelated .execute() APIs).
            sql = _sql_of(site.node, scan.constants)
            if sql is not None and site.bare_receiver is not None:
                diagnostics.append(
                    Diagnostic(
                        rule="RC03",
                        file=file,
                        line=site.line,
                        symbol=symbol,
                        message=(
                            f"{site.bare_receiver}.{site.method}(...) "
                            f"executes SQL through an unrecognised "
                            f"receiver (not the woven Statement)"
                        ),
                    )
                )
                continue

        woven_sql = (
            site.method in _SQL_EXECUTORS
            and site.receiver_type in target.woven_sql_types
        )

        # --- RC01: writes reachable from a cacheable do_get.
        if check_reads and woven_sql:
            sql = _sql_of(site.node, scan.constants)
            is_write_stmt = site.method in _WRITE_EXECUTORS
            if not is_write_stmt and sql is not None:
                template = _try_template(sql)
                is_write_stmt = template is not None and template.is_write
            if is_write_stmt:
                diagnostics.append(
                    Diagnostic(
                        rule="RC01",
                        file=file,
                        line=site.line,
                        symbol=symbol,
                        message=(
                            "database write reachable from a cacheable "
                            "do_get; the read aspect would cache a page "
                            "whose computation mutated the database"
                        ),
                    )
                )
                continue

        # --- RC04: unindexable read templates.
        if (
            check_reads
            and woven_sql
            and site.method not in _WRITE_EXECUTORS
        ):
            sql = _sql_of(site.node, scan.constants)
            if sql is not None:
                template = _try_template(sql)
                if template is None:
                    diagnostics.append(
                        Diagnostic(
                            rule="RC04",
                            file=file,
                            line=site.line,
                            symbol=symbol,
                            message=(
                                "read query cannot be parsed into a "
                                "template; invalidation falls back to "
                                "full scans"
                            ),
                        )
                    )
                elif (
                    template.is_read
                    and not template.indexable_positions
                    and not _column_plan_exists(template, target.catalog)
                ):
                    tables = ", ".join(sorted(template.tables)) or "?"
                    diagnostics.append(
                        Diagnostic(
                            rule="RC04",
                            file=file,
                            line=site.line,
                            symbol=symbol,
                            message=(
                                f"read template over [{tables}] has no "
                                f"equality-bound position and no "
                                f"column-disjointness plan; the "
                                f"dependency table cannot index its "
                                f"instances and the lineage prune "
                                f"cannot skip any overlapping write "
                                f"(per-template scan on every one)"
                            ),
                        )
                    )

        # --- RC02: entropy flowing into a cacheable body.  The hole
        # exemption: a site inside a hole(...) thunk (or in a helper
        # reachable only through holes) renders per request and never
        # enters a cached body -- that is the sanctioned place for
        # hidden state on a fragmented page.
        state = states.get(id(site.node))
        in_hole = state == "hole" or (state is None and confined)
        if check_reads and not in_hole:
            entropy = _entropy_source(site, target)
            if entropy is not None:
                diagnostics.append(
                    Diagnostic(
                        rule="RC02",
                        file=file,
                        line=site.line,
                        symbol=symbol,
                        message=(
                            f"non-deterministic source ({entropy}) in a "
                            f"cacheable do_get: the response is not a "
                            f"function of the request (hidden state)"
                        ),
                    )
                )
    return diagnostics


def _entropy_source(site, target: CheckTarget) -> str | None:
    if site.receiver_type in target.entropy_classes:
        return f"{site.receiver_type}.{site.method}"
    if site.bare_receiver in ENTROPY_MODULES:
        return f"{site.bare_receiver}.{site.method}"
    if site.method in SESSION_SOURCES:
        return f"session state via .{site.method}"
    return None


def _sql_of(call: ast.Call, constants: dict[str, str]) -> str | None:
    if not call.args:
        return None
    text = string_constant(call.args[0], constants)
    if text is None:
        return None
    head = text.lstrip().split(None, 1)
    if not head:
        return None
    if head[0].upper() in {"SELECT", "INSERT", "UPDATE", "DELETE"}:
        return text
    return None


def _try_template(sql: str):
    params = tuple(None for _ in range(sql.count("?")))
    try:
        template, _values = templateize(sql, params)
    except Exception:
        return None
    return template


def _column_plan_exists(template, catalog) -> bool:
    """True when exact lineage proves a column-disjointness plan exists.

    Requires the catalog to know every referenced table, the lineage
    read set to be exact (no wildcard/spill entries), and at least one
    table to have a writable column outside the read set -- the
    condition under which :class:`repro.cache.analysis.ColumnPruneRule`
    skips some overlapping write without a scan.
    """
    if catalog is None:
        return False
    lineage = compute_lineage(template.statement, catalog)
    if not lineage.exact or not lineage.tables:
        return False
    narrower = False
    for table in lineage.tables:
        width = catalog.columns_of(table)
        if width is None:
            return False
        read = {c for t, c in lineage.read_set if t == table}
        if read - width:
            # Reads a column the schema does not declare: the catalog
            # and the template disagree; make no static claim.
            return False
        if width - read:
            narrower = True
    return narrower


#: The "reads everything" element: unioned in whenever a read cannot be
#: resolved, so the dead-write rule goes silent instead of guessing.
_READS_EVERYTHING = ("?", "*")


def _handler_sql_sites(target: CheckTarget, info: ClassInfo, handler: str):
    """Yield ``(fn, site, sql)`` for every SQL-executor call site
    reachable from ``info.<handler>`` -- ``sql`` is None when the first
    argument is not a resolvable string constant."""
    entry = info.functions.get(handler)
    if entry is None or entry.owner.__module__.startswith("repro.web"):
        return
    for fn, _confined in _reachable(info, entry):
        scan = scan_calls(info, fn, target.registry)
        for site in scan.sites:
            if site.method not in _SQL_EXECUTORS:
                continue
            yield fn, site, _sql_of(site.node, scan.constants)


def _app_read_union(
    target: CheckTarget, app
) -> frozenset[tuple[str, str]]:
    """The lineage read sets of every read template reachable from any
    of ``app``'s handlers, plus the method-cache targets, unioned.

    Holes and uncacheable pages are included on purpose: the union errs
    toward "is read somewhere", never toward a false dead-write.  A
    non-constant or unparseable SQL argument at an executor site widens
    the union to :data:`_READS_EVERYTHING`.
    """
    union: set[tuple[str, str]] = set()
    sources = [
        (target.registry.info_for(servlet_cls), handler)
        for servlet_cls in _app_servlets(app)
        for handler in _HANDLERS
    ]
    sources.extend(
        (target.registry.info_for(owner), method)
        for owner, method in target.method_cache_targets
    )
    for info, handler in sources:
        for _fn, site, sql in _handler_sql_sites(target, info, handler):
            if sql is None:
                if site.node.args:
                    # An executor call whose SQL the checker cannot
                    # read: it may read anything.
                    union.add(_READS_EVERYTHING)
                continue
            template = _try_template(sql)
            if template is None:
                union.add(_READS_EVERYTHING)
                continue
            if template.is_read:
                union |= compute_lineage(
                    template.statement, target.catalog
                ).read_set
    return frozenset(union)


def _app_servlets(app) -> list[type]:
    seen: set[type] = set()
    ordered: list[type] = []
    for _uri, servlet_cls, _is_write in app.interactions:
        if servlet_cls not in seen:
            seen.add(servlet_cls)
            ordered.append(servlet_cls)
    return ordered


def _covers(
    union: frozenset[tuple[str, str]], table: str, column: str
) -> bool:
    """May any read in ``union`` observe ``table.column``?"""
    return any(
        (t == table or t == "?") and (c == "*" or c == column)
        for t, c in union
    )


def _check_dead_writes(target: CheckTarget, app) -> list[Diagnostic]:
    """RC06: do_post UPDATEs whose SET columns no registered read uses.

    Restricted to UPDATE statements with fully-resolved SET columns:
    INSERT/DELETE change row *existence*, which every predicate over
    the table can observe regardless of columns.  Writes through
    non-woven receivers are RC03's finding, not a dead write.
    """
    union = _app_read_union(target, app)
    if _READS_EVERYTHING in union:
        return []
    diagnostics: list[Diagnostic] = []
    for servlet_cls in _app_servlets(app):
        info = target.registry.info_for(servlet_cls)
        for fn, site, sql in _handler_sql_sites(target, info, "do_post"):
            if (
                site.receiver_type is not None
                and site.receiver_type not in target.woven_sql_types
            ):
                continue
            if sql is None:
                continue
            template = _try_template(sql)
            if template is None or not template.is_write:
                continue
            write_info = template.info
            if write_info.kind != "update":
                continue
            written = write_info.columns_written
            if not written or any(c == "*" for _t, c in written):
                continue
            if any(_covers(union, t, c) for t, c in written):
                continue
            columns = ", ".join(sorted(c for _t, c in written))
            tables = ", ".join(sorted(t for t, _c in written))
            diagnostics.append(
                Diagnostic(
                    rule="RC06",
                    file=relative_to(fn.file, target.repo_root),
                    line=site.line,
                    symbol=f"{info.name}.do_post",
                    message=(
                        f"UPDATE {tables} sets only [{columns}], which "
                        f"no reachable read template's lineage read set "
                        f"contains; this write can never invalidate a "
                        f"cached entry"
                    ),
                )
            )
    return diagnostics


def lineage_summary(target: CheckTarget) -> dict[str, int]:
    """Counters for the check report's ``lineage`` section: how many
    read templates the pass saw, how many have exact lineage, how many
    earn the RC04 column-disjointness exemption, and the catalog size.
    """
    templates = 0
    exact = 0
    column_plans = 0
    seen: set[str] = set()
    for app in target.apps:
        for servlet_cls in _app_servlets(app):
            info = target.registry.info_for(servlet_cls)
            for handler in _HANDLERS:
                for _fn, _site, sql in _handler_sql_sites(
                    target, info, handler
                ):
                    if sql is None:
                        continue
                    template = _try_template(sql)
                    if (
                        template is None
                        or not template.is_read
                        or template.text in seen
                    ):
                        continue
                    seen.add(template.text)
                    templates += 1
                    lineage = compute_lineage(
                        template.statement, target.catalog
                    )
                    if lineage.exact:
                        exact += 1
                    if _column_plan_exists(template, target.catalog):
                        column_plans += 1
    return {
        "read_templates": templates,
        "exact_lineage": exact,
        "column_disjointness_plans": column_plans,
        "catalog_tables": (
            len(target.catalog) if target.catalog is not None else 0
        ),
    }


def _dedupe(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    seen: set[tuple[str, str, int, str]] = set()
    unique: list[Diagnostic] = []
    for diagnostic in diagnostics:
        key = (
            diagnostic.rule,
            diagnostic.file,
            diagnostic.line,
            diagnostic.symbol,
        )
        if key not in seen:
            seen.add(key)
            unique.append(diagnostic)
    return unique
