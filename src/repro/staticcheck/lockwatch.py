"""Dynamic lockset mode: the woven complement to the static lock pass.

The static acquisition graph cannot see edges created through
late-bound callables -- the invalidation bus delivering to subscriber
closures is the canonical blind spot.  This module dogfoods the repo's
own AOP layer to close it: a :class:`LockWatchAspect` woven over
:class:`repro.locks.NamedRLock` records the *real* acquisition edges a
workload takes (``REPRO_LOCKWATCH=1 make stress-lockwatch`` runs the
whole stress suite under it) and checks them against the documented
rank order, then diffs them against the statically derived graph.

``NamedRLock.acquire``/``release`` are ordinary Python methods exactly
so this weave is possible; ``with lock:`` goes through them too because
``__enter__`` calls ``self.acquire()`` via the (woven) class attribute.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.aop import Aspect, around
from repro.aop.joinpoint import JoinPoint
from repro.aop.weaver import Weaver
from repro.locks import NamedRLock, lock_rank


@dataclass(frozen=True)
class DynamicViolation:
    """One rank-inverting (or self-deadlocking) acquisition observed."""

    held: str
    acquired: str
    kind: str  # "rank" | "same-name"
    thread: str

    def describe(self) -> str:
        if self.kind == "same-name":
            return (
                f"[{self.thread}] acquired a second {self.acquired!r} "
                f"instance while holding one (same-name locks do not "
                f"share reentrancy: self-deadlock under contention)"
            )
        return (
            f"[{self.thread}] acquired {self.acquired!r} "
            f"(rank {lock_rank(self.acquired)}) while holding "
            f"{self.held!r} (rank {lock_rank(self.held)})"
        )


class LockWatchRecorder:
    """Thread-safe ledger of acquisition edges and violations.

    Per-thread held stacks live in a ``threading.local``; the shared
    edge/violation sets are guarded by a plain ``threading.Lock`` (NOT a
    NamedRLock -- the recorder must never recurse into the woven class
    it is observing).
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._held = threading.local()
        self.edges: dict[tuple[str, str], int] = {}
        self.violations: list[DynamicViolation] = []
        self.acquisitions = 0

    def _stack(self) -> list[list[object]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire(self, lock: NamedRLock) -> None:
        stack = self._stack()
        for entry in stack:
            if entry[0] is lock:
                entry[2] += 1  # reentrant re-acquire: no new edge
                return
        new_edges: list[tuple[str, str]] = []
        new_violations: list[DynamicViolation] = []
        thread = threading.current_thread().name
        for entry in stack:
            held_name = entry[1]
            new_edges.append((held_name, lock.name))
            if held_name == lock.name:
                new_violations.append(
                    DynamicViolation(
                        held=held_name,
                        acquired=lock.name,
                        kind="same-name",
                        thread=thread,
                    )
                )
            else:
                held_rank = lock_rank(held_name)
                if (
                    held_rank is not None
                    and lock.rank is not None
                    and lock.rank < held_rank
                ):
                    new_violations.append(
                        DynamicViolation(
                            held=held_name,
                            acquired=lock.name,
                            kind="rank",
                            thread=thread,
                        )
                    )
        stack.append([lock, lock.name, 1])
        with self._guard:
            self.acquisitions += 1
            for edge in new_edges:
                self.edges[edge] = self.edges.get(edge, 0) + 1
            self.violations.extend(new_violations)

    def on_release(self, lock: NamedRLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] is lock:
                stack[i][2] -= 1
                if stack[i][2] == 0:
                    del stack[i]
                return

    def edge_set(self) -> set[tuple[str, str]]:
        with self._guard:
            return set(self.edges)

    def snapshot_violations(self) -> list[DynamicViolation]:
        with self._guard:
            return list(self.violations)

    def diff_against_static(
        self, static_edges: set[tuple[str, str]]
    ) -> set[tuple[str, str]]:
        """Edges real traffic took that the static graph never saw --
        the late-binding blind spot, made visible."""
        return {
            edge
            for edge in self.edge_set()
            if edge[0] != edge[1] and edge not in static_edges
        }


class LockWatchAspect(Aspect):
    """Records every NamedRLock acquisition edge the workload takes.

    Runs at very low precedence so, were any other aspect ever woven
    over the lock class, the recorder would sit outermost and observe
    the true acquisition, not an advised wrapper.
    """

    precedence = -100

    def __init__(self, recorder: LockWatchRecorder) -> None:
        self.recorder = recorder

    @around("execution(NamedRLock.acquire(..))")
    def record_acquire(self, joinpoint: JoinPoint) -> object:
        result = joinpoint.proceed()
        if result:
            # Only successful acquisitions create edges; a failed
            # non-blocking try-acquire holds nothing.
            self.recorder.on_acquire(joinpoint.target)
        return result

    @around("execution(NamedRLock.release(..))")
    def record_release(self, joinpoint: JoinPoint) -> object:
        self.recorder.on_release(joinpoint.target)
        return joinpoint.proceed()


def watch_locks(recorder: LockWatchRecorder) -> Weaver:
    """Weave the recorder over NamedRLock; ``unweave()`` (or use as a
    context manager) restores the unobserved class."""
    weaver = Weaver().add_aspect(LockWatchAspect(recorder))
    weaver.weave([NamedRLock])
    return weaver
