"""Source indexing for the static passes.

Works from *runtime class objects* (the same things the weaver sees)
back to their AST: for each class the defining source is parsed once,
methods are collected across the MRO (most-derived definition wins),
and a light attribute/return type inference is built from constructor
parameter annotations, ``self.x = ClassName(...)`` assignments, and
method return annotations.  That is deliberately shallow -- the servlet
code under analysis is straight-line JDBC-style code, and the paper's
point is exactly that such code is amenable to static treatment.

Woven classes index identically to unwoven ones: the AST comes from the
file, which always holds the original method bodies.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from pathlib import Path

#: Modules whose call results are non-deterministic per request: the
#: cacheability pass treats any ``<module>.f(...)`` call through these
#: names as an entropy source (RC02).
ENTROPY_MODULES = frozenset({"random", "time", "datetime", "uuid", "secrets"})

#: Attribute/method names whose access derives content from the user
#: session rather than the request parameters (session state is not part
#: of the cache key, so it is hidden state).
SESSION_SOURCES = frozenset({"session", "get_session"})


@dataclass(frozen=True)
class FunctionSource:
    """One method's AST, anchored to its defining file."""

    owner: type
    name: str
    file: str
    node: ast.FunctionDef

    @property
    def line(self) -> int:
        return self.node.lineno


def _type_name(node: ast.AST | None) -> str | None:
    """Best-effort simple type name from an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the trailing identifier.
        return node.value.strip("'\"").split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # X | None -> X
        left = _type_name(node.left)
        if left not in (None, "None"):
            return left
        return _type_name(node.right)
    if isinstance(node, ast.Subscript):
        base = _type_name(node.value)
        if base == "Optional":
            return _type_name(node.slice)
        return base
    return None


_CLASS_NODE_CACHE: dict[type, tuple[str, ast.ClassDef] | None] = {}


def class_node(cls: type) -> tuple[str, ast.ClassDef] | None:
    """(file, ClassDef with absolute line numbers) for ``cls``, or None
    when the class has no reachable Python source."""
    if cls in _CLASS_NODE_CACHE:
        return _CLASS_NODE_CACHE[cls]
    result: tuple[str, ast.ClassDef] | None = None
    try:
        file = inspect.getsourcefile(cls)
        lines, start = inspect.getsourcelines(cls)
        tree = ast.parse(textwrap.dedent("".join(lines)))
        node = tree.body[0]
        if file is not None and isinstance(node, ast.ClassDef):
            ast.increment_lineno(node, start - 1)
            result = (file, node)
    except (OSError, TypeError, SyntaxError):
        result = None
    _CLASS_NODE_CACHE[cls] = result
    return result


@dataclass
class ClassInfo:
    """Everything the passes need to know about one class."""

    cls: type
    functions: dict[str, FunctionSource] = field(default_factory=dict)
    #: self.<attr> -> inferred type name
    attr_types: dict[str, str] = field(default_factory=dict)
    #: self.<attr> -> NamedRLock name
    attr_locks: dict[str, str] = field(default_factory=dict)
    #: method -> return annotation type name
    returns: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.cls.__name__

    @classmethod
    def from_class(cls, klass: type) -> "ClassInfo":
        info = cls(cls=klass)
        for base in reversed(klass.__mro__):
            if base is object:
                continue
            located = class_node(base)
            if located is None:
                continue
            file, node = located
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.functions[item.name] = FunctionSource(
                        owner=base, name=item.name, file=file, node=item
                    )
                    returned = _type_name(item.returns)
                    if returned:
                        info.returns[item.name] = returned
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    # Class-level annotated attribute (dataclass field);
                    # a NamedRLock can hide inside a default_factory
                    # lambda, so search the value expression for it.
                    annotated = _type_name(item.annotation)
                    if annotated:
                        info.attr_types[item.target.id] = annotated
                    lock = _named_lock_in(item.value)
                    if lock is not None:
                        info.attr_locks[item.target.id] = lock
            init = info.functions.get("__init__")
            if init is not None and init.owner is base:
                info._scan_init(init)
        return info

    def _scan_init(self, init: FunctionSource) -> None:
        params: dict[str, str] = {}
        for arg in init.node.args.args + init.node.args.kwonlyargs:
            annotated = _type_name(arg.annotation)
            if annotated:
                params[arg.arg] = annotated
        for stmt in ast.walk(init.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    annotated = _type_name(stmt.annotation)
                    if annotated:
                        self.attr_types[target.attr] = annotated
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            lock = _named_lock_in(value)
            if lock is not None:
                self.attr_locks[attr] = lock
                self.attr_types.setdefault(attr, "NamedRLock")
                continue
            if isinstance(value, ast.Name) and value.id in params:
                self.attr_types.setdefault(attr, params[value.id])
            elif isinstance(value, ast.Call) and isinstance(
                value.func, ast.Name
            ):
                self.attr_types.setdefault(attr, value.func.id)


def _named_lock_in(node: ast.AST | None) -> str | None:
    """The lock name if ``node`` contains a ``NamedRLock("...")`` call."""
    if node is None:
        return None
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "NamedRLock"
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            return sub.args[0].value
    return None


class TypeRegistry:
    """Name -> :class:`ClassInfo` lookup over the classes under check."""

    def __init__(self, classes: tuple[type, ...] = ()) -> None:
        self._classes: dict[str, type] = {}
        self._infos: dict[str, ClassInfo] = {}
        self._by_class: dict[type, ClassInfo] = {}
        for klass in classes:
            self.add(klass)

    def add(self, klass: type) -> None:
        self._classes.setdefault(klass.__name__, klass)

    def info(self, name: str | None) -> ClassInfo | None:
        if name is None:
            return None
        cached = self._infos.get(name)
        if cached is not None:
            return cached
        klass = self._classes.get(name)
        if klass is None:
            return None
        info = ClassInfo.from_class(klass)
        self._infos[name] = info
        return info

    def info_for(self, klass: type) -> ClassInfo:
        """Lookup by class *identity*: names collide across apps (both
        benchmarks define a ``Home`` servlet), and under name lookup
        the first registration silently shadowed the second, so one
        app's servlet was never scanned."""
        if self._classes.get(klass.__name__) is klass:
            info = self.info(klass.__name__)
            assert info is not None
            return info
        cached = self._by_class.get(klass)
        if cached is None:
            cached = ClassInfo.from_class(klass)
            self._by_class[klass] = cached
        return cached


class ExprTyper:
    """Infers simple type names for expressions inside one method."""

    def __init__(
        self,
        cls_info: ClassInfo,
        fn: FunctionSource,
        registry: TypeRegistry,
    ) -> None:
        self.cls_info = cls_info
        self.registry = registry
        self.locals: dict[str, str] = {}
        for arg in fn.node.args.args + fn.node.args.kwonlyargs:
            annotated = _type_name(arg.annotation)
            if annotated:
                self.locals[arg.arg] = annotated

    def infer(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.cls_info.name
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                # Resolve self.<attr> against the class actually being
                # scanned, not a name lookup (which a same-named class
                # in the other app could shadow).
                owner: ClassInfo | None = self.cls_info
            else:
                owner = self.registry.info(self.infer(expr.value))
            if owner is None:
                return None
            return owner.attr_types.get(expr.attr) or owner.returns.get(
                expr.attr
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if self.registry.info(func.id) is not None:
                    return func.id  # constructor call
                return None
            if isinstance(func, ast.Attribute):
                owner = self.registry.info(self.infer(func.value))
                if owner is None:
                    return None
                return owner.returns.get(func.attr)
        return None

    def assign(self, stmt: ast.Assign) -> None:
        inferred = self.infer(stmt.value)
        if inferred is None:
            return
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.locals[target.id] = inferred


@dataclass(frozen=True)
class CallSite:
    """One call expression, with its receiver resolved where possible."""

    line: int
    method: str | None  # attribute name for <recv>.m(...) calls
    receiver_type: str | None  # resolved type of the receiver
    bare_receiver: str | None  # unresolved Name receiver (e.g. 'random')
    func_name: str | None  # f(...) bare-name calls
    node: ast.Call


@dataclass
class FunctionScan:
    """The call sites of one method plus the environments built scanning it."""

    sites: list[CallSite]
    typer: ExprTyper
    #: local name -> string constant assigned to it (for SQL passed via
    #: a variable instead of inline)
    constants: dict[str, str]


def scan_calls(
    cls_info: ClassInfo, fn: FunctionSource, registry: TypeRegistry
) -> FunctionScan:
    """Every call in ``fn`` in source order, with receiver types resolved
    against the locals environment built up to that point."""
    typer = ExprTyper(cls_info, fn, registry)
    sites: list[CallSite] = []
    constants: dict[str, str] = {}

    class Scanner(ast.NodeVisitor):
        def visit_Assign(self, node: ast.Assign) -> None:
            self.generic_visit(node)
            typer.assign(node)
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = node.value.value

        def visit_Call(self, node: ast.Call) -> None:
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = typer.infer(func.value)
                bare = (
                    func.value.id
                    if isinstance(func.value, ast.Name) and receiver is None
                    else None
                )
                sites.append(
                    CallSite(
                        line=node.lineno,
                        method=func.attr,
                        receiver_type=receiver,
                        bare_receiver=bare,
                        func_name=None,
                        node=node,
                    )
                )
            elif isinstance(func, ast.Name):
                sites.append(
                    CallSite(
                        line=node.lineno,
                        method=None,
                        receiver_type=None,
                        bare_receiver=None,
                        func_name=func.id,
                        node=node,
                    )
                )
            self.generic_visit(node)

    scanner = Scanner()
    for stmt in fn.node.body:
        scanner.visit(stmt)
    return FunctionScan(sites=sites, typer=typer, constants=constants)


def string_constant(
    node: ast.expr | None, constants: dict[str, str]
) -> str | None:
    """Resolve an argument to a string constant: literal or a local
    assigned one earlier in the function."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def relative_to(file: str, root: Path) -> str:
    """Repo-relative, '/'-separated path (falls back to the input)."""
    try:
        return Path(file).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return Path(file).as_posix()
