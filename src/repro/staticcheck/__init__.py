"""Whole-program consistency linter for the AutoWebCache reproduction.

AutoWebCache's strong-consistency guarantee rests on preconditions the
runtime never checks: cacheable servlets must be side-effect-free and
deterministic, every SQL call site must flow through the woven DB-API
driver, and the fine-grained locks of the caching tier must respect the
documented acquisition order.  This package checks those preconditions
*statically* -- the complement to the dynamic SQL analysis the paper
describes (and the gap its "limitations" section concedes).

Four passes share one diagnostic model (:mod:`~repro.staticcheck.diagnostics`):

- :mod:`~repro.staticcheck.cacheability` -- RC01..RC04 over the servlet
  classes of ``repro.apps``;
- :mod:`~repro.staticcheck.methodcache` -- RC05 over the designated
  method-cache candidates (bodies must be functions of their arguments);
- :mod:`~repro.staticcheck.coverage` -- PC01..PC03 over the registered
  pointcuts and the statically discovered join-point surface;
- :mod:`~repro.staticcheck.lockorder` -- LK01 over nested lock scopes in
  ``repro.cache`` and ``repro.cluster``; the woven *dynamic* counterpart
  lives in :mod:`~repro.staticcheck.lockwatch`.

Entry points: ``python -m repro check`` (CLI), :func:`run_check`
(programmatic), ``make check`` (CI gate).
"""

from repro.staticcheck.diagnostics import (
    RULES,
    BaselineEntry,
    Diagnostic,
    Report,
    load_baseline,
)
from repro.staticcheck.runner import run_check
from repro.staticcheck.target import CheckTarget, default_target

__all__ = [
    "RULES",
    "BaselineEntry",
    "CheckTarget",
    "Diagnostic",
    "Report",
    "default_target",
    "load_baseline",
    "run_check",
]
