"""Lock-order pass: LK01 over the caching tier's nested lock scopes.

Extracts every ``with self._lock:`` / ``self._lock.acquire()`` scope
from the analysed classes, resolves the calls made *while the lock is
held* (including transitively: a method's acquired-lock closure is
computed to a fixpoint), and builds the static acquisition graph over
:data:`repro.locks.LOCK_ORDER` names.  Violations:

- an edge from a ranked lock to a strictly earlier-ranked lock
  (acquiring "page-store" while holding "dependency-table" inverts the
  documented order);
- any cycle in the graph, ranked or not (two unranked locks acquired in
  both orders deadlock just as surely).

The pass is sound only for acquisitions it can see; edges created
through late-bound callables (the invalidation bus invoking subscriber
closures) are invisible statically, which is exactly what the woven
dynamic mode (:mod:`repro.staticcheck.lockwatch`) exists to cover.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.locks import lock_rank
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.source import (
    ClassInfo,
    FunctionSource,
    relative_to,
    scan_calls,
)
from repro.staticcheck.target import CheckTarget


@dataclass(frozen=True)
class Edge:
    """Lock ``held`` was held while ``acquired`` was acquired."""

    held: str
    acquired: str


def check_lock_order(target: CheckTarget) -> list[Diagnostic]:
    infos: dict[str, ClassInfo] = {}
    for klass in target.lock_classes:
        info = target.registry.info(klass.__name__)
        if info is not None:
            infos[info.name] = info

    closures = _acquisition_closures(target, infos)
    edges: dict[Edge, tuple[str, int, str]] = {}

    for info in infos.values():
        for fn in info.functions.values():
            _collect_edges(target, infos, closures, info, fn, edges)

    diagnostics: list[Diagnostic] = []
    for edge, (file, line, symbol) in sorted(
        edges.items(), key=lambda kv: (kv[1][0], kv[1][1])
    ):
        held_rank = lock_rank(edge.held)
        acquired_rank = lock_rank(edge.acquired)
        if (
            held_rank is not None
            and acquired_rank is not None
            and acquired_rank < held_rank
        ):
            diagnostics.append(
                Diagnostic(
                    rule="LK01",
                    file=file,
                    line=line,
                    symbol=symbol,
                    message=(
                        f"acquires {edge.acquired!r} (rank {acquired_rank}) "
                        f"while holding {edge.held!r} (rank {held_rank}); "
                        f"the documented order is the reverse"
                    ),
                )
            )

    diagnostics.extend(_cycle_diagnostics(edges))
    return diagnostics


def _acquisition_closures(
    target: CheckTarget, infos: dict[str, ClassInfo]
) -> dict[tuple[str, str], set[str]]:
    """(class, method) -> every lock name it may acquire, transitively."""
    direct: dict[tuple[str, str], set[str]] = {}
    calls: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for info in infos.values():
        for fn in info.functions.values():
            key = (info.name, fn.name)
            direct[key] = _direct_acquires(info, fn)
            callees: set[tuple[str, str]] = set()
            for site in scan_calls(info, fn, target.registry).sites:
                if site.method and site.receiver_type in infos:
                    callees.add((site.receiver_type, site.method))
            calls[key] = callees

    closures = {key: set(acquired) for key, acquired in direct.items()}
    changed = True
    while changed:
        changed = False
        for key, callees in calls.items():
            for callee in callees:
                extra = closures.get(callee, set()) - closures[key]
                if extra:
                    closures[key] |= extra
                    changed = True
    return closures


def _direct_acquires(info: ClassInfo, fn: FunctionSource) -> set[str]:
    acquired: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.With):
            for item in node.items:
                name = _lock_name(info, item.context_expr)
                if name is not None:
                    acquired.add(name)
        elif isinstance(node, ast.Call):
            name = _acquire_call(info, node)
            if name is not None:
                acquired.add(name)
    return acquired


def _lock_name(info: ClassInfo, expr: ast.expr) -> str | None:
    """``self.<attr>`` where the attribute holds a NamedRLock."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return info.attr_locks.get(expr.attr)
    return None


def _acquire_call(info: ClassInfo, call: ast.Call) -> str | None:
    """``self.<lock>.acquire(...)`` outside a ``with``."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "acquire":
        return _lock_name(info, func.value)
    return None


def _collect_edges(
    target: CheckTarget,
    infos: dict[str, ClassInfo],
    closures: dict[tuple[str, str], set[str]],
    info: ClassInfo,
    fn: FunctionSource,
    edges: dict[Edge, tuple[str, int, str]],
) -> None:
    file = relative_to(fn.file, target.repo_root)
    symbol = f"{info.name}.{fn.name}"
    scan = scan_calls(info, fn, target.registry)
    resolved = {
        id(site.node): site
        for site in scan.sites
        if site.method is not None
    }

    def record(held: list[str], acquired: str, line: int) -> None:
        if acquired in held:
            # Re-acquiring a lock this scope already holds is reentrant
            # (NamedRLock wraps an RLock): it blocks nothing and orders
            # nothing, so it creates no edge.
            return
        for holder in held:
            edges.setdefault(
                Edge(held=holder, acquired=acquired), (file, line, symbol)
            )

    def callee_locks(call: ast.Call) -> set[str]:
        site = resolved.get(id(call))
        if site is None or site.receiver_type not in infos:
            return set()
        return closures.get((site.receiver_type, site.method), set())

    def visit(node: ast.AST, held: list[str]) -> None:
        if isinstance(node, ast.With):
            entered: list[str] = []
            for item in node.items:
                name = _lock_name(info, item.context_expr)
                if name is not None:
                    record(held + entered, name, item.context_expr.lineno)
                    entered.append(name)
                elif isinstance(item.context_expr, ast.Call):
                    # A call used as a context manager (e.g.
                    # ``bus.quiesced()``): its acquired locks are taken
                    # now and held for the body.
                    taken = callee_locks(item.context_expr)
                    for name in sorted(taken):
                        record(held + entered, name, item.context_expr.lineno)
                        entered.append(name)
            for stmt in node.body:
                visit(stmt, held + entered)
            return
        if isinstance(node, ast.Call):
            name = _acquire_call(info, node)
            if name is not None:
                record(held, name, node.lineno)
            else:
                for acquired in sorted(callee_locks(node)):
                    record(held, acquired, node.lineno)
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.node.body:
        visit(stmt, [])


def _cycle_diagnostics(
    edges: dict[Edge, tuple[str, int, str]]
) -> list[Diagnostic]:
    graph: dict[str, set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
        graph.setdefault(edge.acquired, set())

    diagnostics: list[Diagnostic] = []
    reported: set[frozenset[str]] = set()
    path: list[str] = []
    on_path: set[str] = set()
    visited: set[str] = set()

    def dfs(node: str) -> None:
        visited.add(node)
        path.append(node)
        on_path.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ in on_path:
                cycle = path[path.index(succ) :] + [succ]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    anchor = edges.get(Edge(held=node, acquired=succ))
                    file, line, symbol = anchor or ("?", 0, "?")
                    diagnostics.append(
                        Diagnostic(
                            rule="LK01",
                            file=file,
                            line=line,
                            symbol=symbol,
                            message=(
                                "lock acquisition cycle: "
                                + " -> ".join(cycle)
                                + " (deadlock under concurrent entry)"
                            ),
                        )
                    )
            elif succ not in visited:
                dfs(succ)
        path.pop()
        on_path.discard(node)

    for node in sorted(graph):
        if node not in visited:
            dfs(node)
    return diagnostics
