"""What the checker runs against.

A :class:`CheckTarget` bundles the applications (servlet classes and
their cacheability routing), the aspect classes whose pointcuts are
verified, the join-point surface they are evaluated over, and the
classes whose lock scopes the lock-order pass walks.  The real repo's
target comes from :func:`default_target`; the seeded-violation fixture
under ``tests/fixtures/badapp`` builds its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.source import TypeRegistry


@dataclass(frozen=True)
class AppSpec:
    """One servlet application: URI routing plus cacheability marks."""

    name: str
    #: (uri, servlet class, is_write) triples.
    interactions: tuple[tuple[str, type, bool], ...]
    #: URIs marked uncacheable (hidden state): never cached, so the
    #: cacheability rules RC01/RC02/RC04 do not apply to them.
    uncacheable_uris: frozenset[str] = frozenset()
    #: URIs whose servlets declare fragment/hole boundaries.  The page
    #: stays uncacheable whole, but its fragments are cached, so the
    #: read rules run again -- with the hole exemption: sites confined
    #: to ``hole(...)`` render thunks are recomputed per request and
    #: never enter a cached body.
    fragmented_uris: frozenset[str] = frozenset()


@dataclass
class CheckTarget:
    """Everything one ``run_check`` invocation analyses."""

    repo_root: Path
    apps: tuple[AppSpec, ...] = ()
    #: Aspect classes whose pointcuts are checked for liveness (PC01)
    #: and precedence ambiguity (PC03).
    aspect_classes: tuple[type, ...] = ()
    #: The subset whose advice counts as *caching* coverage (PC02).
    caching_aspect_classes: tuple[type, ...] = ()
    #: Classes contributing the join-point surface pointcuts are
    #: evaluated against (servlets are added automatically from apps).
    surface_classes: tuple[type, ...] = ()
    #: Driver-level call sites that must be covered by caching advice.
    required_sql_sites: tuple[tuple[type, str], ...] = ()
    #: (owner class, method name) pairs designated for the woven
    #: method-level result cache; the RC05 pass vets each body for
    #: request/session/entropy reads that the ``method://`` key cannot
    #: distinguish.
    method_cache_targets: tuple[tuple[type, str], ...] = ()
    #: Classes whose nested lock scopes the lock-order pass analyses.
    lock_classes: tuple[type, ...] = ()
    #: Class names whose instances are per-request entropy (RC02), e.g.
    #: the TPC-W ad rotator.
    entropy_classes: frozenset[str] = frozenset()
    #: Receiver type names through which SQL legitimately flows (the
    #: woven driver); anything else executing SQL is RC03.
    woven_sql_types: frozenset[str] = frozenset({"Statement"})
    #: Schema catalog (:class:`repro.sql.lineage.Catalog`) the
    #: cacheability pass uses to compute exact column lineage: the RC04
    #: column-disjointness exemption and the RC06 dead-write pass both
    #: need it; None disables the exemption and weakens RC06 to the
    #: catalog-free (still conservative) read sets.
    catalog: object | None = None
    #: Extra classes the type-inference registry should know about.
    helper_classes: tuple[type, ...] = ()
    baseline_path: Path | None = None

    _registry: TypeRegistry | None = field(default=None, repr=False)

    @property
    def registry(self) -> TypeRegistry:
        if self._registry is None:
            classes: list[type] = list(self.helper_classes)
            classes.extend(self.surface_classes)
            classes.extend(self.lock_classes)
            classes.extend(owner for owner, _m in self.method_cache_targets)
            for app in self.apps:
                for _uri, servlet_cls, _w in app.interactions:
                    classes.append(servlet_cls)
                    classes.extend(
                        base
                        for base in servlet_cls.__mro__[1:]
                        if base is not object
                    )
            self._registry = TypeRegistry(tuple(classes))
        return self._registry

    def servlet_classes(self) -> list[type]:
        seen: set[type] = set()
        ordered: list[type] = []
        for app in self.apps:
            for _uri, servlet_cls, _w in app.interactions:
                if servlet_cls not in seen:
                    seen.add(servlet_cls)
                    ordered.append(servlet_cls)
        return ordered


def repo_root() -> Path:
    """The checkout root, derived from the installed package location."""
    import repro

    return Path(repro.__file__).resolve().parents[2]


def default_target() -> CheckTarget:
    """The real repository: both benchmark apps, all woven aspects, the
    full caching/cluster lock surface."""
    from repro.admission.aspects import MethodCacheAspect
    from repro.apps.html import PageComposer
    from repro.apps.rubis import app as rubis_app
    from repro.apps.rubis.base import CategoryCatalogue, RubisServlet
    from repro.apps.tpcw import app as tpcw_app
    from repro.apps.tpcw.base import AdRotator, TpcwServlet
    from repro.cache.analysis_cache import AnalysisCache
    from repro.cache.api import Cache
    from repro.cache.aspects import (
        JdbcConsistencyAspect,
        ReadServletAspect,
        WriteServletAspect,
    )
    from repro.cache.aspects_fragment import FragmentCacheAspect
    from repro.cache.aspects_result import ResultCacheAspect
    from repro.cache.dependency import DependencyTable
    from repro.cache.page_cache import PageCache
    from repro.cache.result_cache import ResultCache
    from repro.cache.stats import CacheStats
    from repro.cluster.bus import InvalidationBus
    from repro.cluster.node import CacheNode
    from repro.cluster.router import ClusterRouter
    from repro.db.dbapi import Connection, ResultSet, Statement
    from repro.db.engine import Database
    from repro.locks import NamedRLock
    from repro.apps.rubis.schema import create_rubis_schema
    from repro.apps.tpcw.schema import create_tpcw_schema
    from repro.obs.aspects import MetricsAspect, TracingAspect
    from repro.obs.servlets import MetricsServlet, TracesServlet
    from repro.sql.lineage import Catalog
    from repro.web.servlet import HttpServlet

    root = repo_root()
    # Throwaway databases exist only to read the declared schemas back
    # out as a lineage catalog (both apps' tables are disjointly named).
    rubis_db = Database("catalog-rubis")
    create_rubis_schema(rubis_db)
    tpcw_db = Database("catalog-tpcw")
    create_tpcw_schema(tpcw_db)
    catalog = Catalog.from_database(rubis_db).merge(
        Catalog.from_database(tpcw_db)
    )
    rubis = AppSpec(
        name="rubis",
        interactions=tuple(
            (uri, cls, write)
            for uri, (cls, write) in rubis_app.INTERACTIONS.items()
        ),
    )
    tpcw = AppSpec(
        name="tpcw",
        interactions=tuple(
            (uri, cls, write)
            for uri, (cls, write) in tpcw_app.INTERACTIONS.items()
        ),
        uncacheable_uris=frozenset(tpcw_app.HIDDEN_STATE_URIS),
        fragmented_uris=frozenset(tpcw_app.HIDDEN_STATE_URIS),
    )
    baseline = root / "staticcheck-baseline.json"
    return CheckTarget(
        repo_root=root,
        apps=(rubis, tpcw),
        aspect_classes=(
            ReadServletAspect,
            WriteServletAspect,
            JdbcConsistencyAspect,
            FragmentCacheAspect,
            MethodCacheAspect,
            ResultCacheAspect,
            TracingAspect,
            MetricsAspect,
        ),
        caching_aspect_classes=(
            ReadServletAspect,
            WriteServletAspect,
            JdbcConsistencyAspect,
            FragmentCacheAspect,
        ),
        surface_classes=(
            PageComposer,
            CategoryCatalogue,
            Statement,
            Connection,
            Cache,
            ClusterRouter,
            InvalidationBus,
            CacheNode,
            MetricsServlet,
            TracesServlet,
            NamedRLock,
        ),
        required_sql_sites=(
            (Statement, "execute_query"),
            (Statement, "execute_update"),
            (Connection, "commit"),
            (Connection, "rollback"),
        ),
        method_cache_targets=(
            (CategoryCatalogue, "categories"),
            (CategoryCatalogue, "regions"),
        ),
        lock_classes=(
            Cache,
            PageCache,
            DependencyTable,
            AnalysisCache,
            ResultCache,
            CacheStats,
            ClusterRouter,
            InvalidationBus,
            CacheNode,
        ),
        entropy_classes=frozenset({"AdRotator"}),
        catalog=catalog,
        helper_classes=(
            Statement,
            Connection,
            ResultSet,
            Database,
            RubisServlet,
            CategoryCatalogue,
            TpcwServlet,
            AdRotator,
            HttpServlet,
            PageComposer,
        ),
        baseline_path=baseline if baseline.exists() else None,
    )
