"""Method-cache candidacy pass: RC05 over the designated helper methods.

A method woven with :class:`~repro.admission.aspects.MethodCacheAspect`
is cached under ``method://Class.method?args`` -- the *arguments* are
the whole cache key.  That is only sound when the method is a function
of its arguments and the database: a body that reads request or session
state, or draws entropy, produces a result the key cannot distinguish,
so the first caller's answer is replayed for every other request.

This pass walks each designated ``(owner class, method)`` pair exactly
as the cacheability pass walks a handler -- through ``self.*`` helpers,
with the hole exemption (a site confined to ``hole(...)`` render thunks
is recomputed per request and never enters the cached value) -- and
flags:

- entropy sources (``random``/``time``-style modules, entropy-holding
  collaborators such as the TPC-W ``AdRotator``);
- session state (``session``/``get_session`` access);
- request state (any call on an ``HttpRequest`` receiver -- request
  parameters are not part of a ``method://`` key unless the caller
  passes them in as arguments).
"""

from __future__ import annotations

from repro.staticcheck.cacheability import (
    _boundary_states,
    _entropy_source,
    _reachable,
)
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.source import relative_to, scan_calls
from repro.staticcheck.target import CheckTarget

#: Receiver type names whose reads are per-request state: a candidate
#: keyed on its arguments must not consult them directly.
_REQUEST_TYPES = frozenset({"HttpRequest"})


def check_method_cache(target: CheckTarget) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for owner_cls, method_name in target.method_cache_targets:
        info = target.registry.info_for(owner_cls)
        entry = info.functions.get(method_name)
        if entry is None:
            continue
        symbol = f"{info.name}.{method_name}"
        for fn, confined in _reachable(info, entry):
            diagnostics.extend(
                _check_candidate(target, info, symbol, fn, confined)
            )
    return diagnostics


def _check_candidate(
    target: CheckTarget, info, symbol: str, fn, confined: bool
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    file = relative_to(fn.file, target.repo_root)
    scan = scan_calls(info, fn, target.registry)
    states = _boundary_states(fn)
    for site in scan.sites:
        state = states.get(id(site.node))
        if state == "hole" or (state is None and confined):
            continue  # recomputed per request, never enters the value
        source = _unstable_source(site, target)
        if source is not None:
            diagnostics.append(
                Diagnostic(
                    rule="RC05",
                    file=file,
                    line=site.line,
                    symbol=symbol,
                    message=(
                        f"method-cache candidate reads {source}; the "
                        f"method:// key carries only the arguments, so "
                        f"the cached result would be replayed across "
                        f"requests that differ in this hidden state"
                    ),
                )
            )
    return diagnostics


def _unstable_source(site, target: CheckTarget) -> str | None:
    """What makes this call site unsafe to key on arguments, if anything."""
    if site.receiver_type in _REQUEST_TYPES:
        return f"request state via {site.receiver_type}.{site.method}"
    entropy = _entropy_source(site, target)
    if entropy is not None:
        return entropy
    return None
