"""Gossip-style membership: heartbeats, suspicion, failure detection.

PR 2's router changed membership only through explicit ``add_node`` /
``remove_node`` calls executed under bus quiescence -- fine for planned
operations, useless for *crashes*: a node that stops responding never
announces its own death.  This module adds the standard SWIM-flavoured
detector the replication tier needs:

- every node keeps a **heartbeat counter** it increments while alive;
- counters disseminate **epidemically**: each gossip step, every live
  observer pushes its table to ``fanout`` random peers, and receivers
  adopt any higher counter they see;
- an observer that has not seen a peer's counter advance within
  ``suspicion_timeout`` marks it SUSPECT, and DEAD after
  ``death_timeout`` -- a *local* verdict, reached without any global
  coordination (and therefore without quiescing the invalidation bus).

The router participates as one more observer (``ROUTER``): its view is
the authoritative one for routing decisions (read failover, replica
write-through skips).  Determinism: the gossip peer choice is driven by
a seeded RNG and the clock is injectable, so tests and the simulator
can replay convergence exactly.

States are monotone per incident -- ALIVE -> SUSPECT -> DEAD -- but a
counter advance revives a SUSPECT (false alarm) while DEAD is sticky:
a dead node missed bus messages, so it must rejoin through the router
(fresh shard, fresh bus subscription), never silently reappear.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ClusterError

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: The router's observer name (not a cache node, never gossiped about).
ROUTER = "<router>"


@dataclass
class PeerView:
    """One observer's knowledge of one peer."""

    counter: int
    #: Local time the counter last advanced *in this observer's view*.
    last_advance: float
    state: str = ALIVE


@dataclass(frozen=True)
class Transition:
    """One membership state change in one observer's view."""

    observer: str
    peer: str
    state: str


class GossipMembership:
    """Heartbeat-counter gossip with per-observer suspicion verdicts.

    Thread-safety: one leaf lock guards all views; no callback runs
    under it (``step`` *returns* transitions, the caller acts on them),
    so it can never participate in a lock-order cycle with the router
    or bus locks.
    """

    def __init__(
        self,
        suspicion_timeout: float = 2.0,
        death_timeout: float = 6.0,
        fanout: int = 2,
        clock: Callable[[], float] = time.time,
        seed: int = 0,
    ) -> None:
        if death_timeout <= suspicion_timeout:
            raise ClusterError(
                "death_timeout must exceed suspicion_timeout "
                f"({death_timeout} <= {suspicion_timeout})"
            )
        self.suspicion_timeout = suspicion_timeout
        self.death_timeout = death_timeout
        self.fanout = fanout
        self.clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: observer -> peer -> view.  The router observer exists from
        #: construction; node observers appear on :meth:`register`.
        self._views: dict[str, dict[str, PeerView]] = {ROUTER: {}}
        #: Authoritative self-counters (a real deployment would keep
        #: each on its own host; in-process they live here, but only
        #: :meth:`beat` for that node may advance one).
        self._counters: dict[str, int] = {}
        #: When the previous :meth:`step` ran -- the suspicion sweep
        #: only counts silence observed while the protocol was
        #: actually stepping (see the outage credit in ``step``).
        self._last_step: float | None = None

    # -- membership of the membership -------------------------------------------------

    def register(self, name: str) -> None:
        """Add ``name`` as a live, gossiping node known to everyone."""
        now = self.clock()
        with self._lock:
            if name in self._counters:
                raise ClusterError(f"{name!r} is already a gossip member")
            self._counters[name] = 0
            self._views[name] = {
                peer: PeerView(view.counter, now, view.state)
                for peer, view in self._views[ROUTER].items()
            }
            for observer in self._views:
                if observer != name:
                    self._views[observer][name] = PeerView(0, now)

    def forget(self, name: str) -> None:
        """Remove ``name`` entirely (a planned leave, not a death)."""
        with self._lock:
            self._counters.pop(name, None)
            self._views.pop(name, None)
            for table in self._views.values():
                table.pop(name, None)

    def members(self) -> list[str]:
        with self._lock:
            return sorted(self._counters)

    # -- the protocol ------------------------------------------------------------------

    def beat(self, name: str) -> None:
        """``name`` increments its own heartbeat counter (it is alive).

        The advance is only visible to observers after gossip carries
        it -- except to ``name`` itself, whose own row updates here.
        """
        now = self.clock()
        with self._lock:
            if name not in self._counters:
                return  # crashed/removed nodes no longer beat
            self._counters[name] += 1
            own = self._views[name].get(name)
            counter = self._counters[name]
            if own is None:
                self._views[name][name] = PeerView(counter, now)
            else:
                own.counter = counter
                own.last_advance = now
                if own.state == SUSPECT:
                    own.state = ALIVE

    def silence(self, name: str) -> None:
        """Simulate a crash: ``name`` stops beating and gossiping.

        Its counter freezes, so every observer's suspicion timer for it
        starts running out.  (Tests and the router's ``fail_node`` use
        this; a real crash is just the absence of calls.)
        """
        with self._lock:
            self._counters.pop(name, None)
            self._views.pop(name, None)

    def step(self, now: float | None = None) -> list[Transition]:
        """One protocol round: gossip exchange, then suspicion sweep.

        Returns every state transition the round produced, across all
        observers -- the router reacts to transitions in *its* view and
        ignores the rest (they model what each node locally believes).
        """
        transitions: list[Transition] = []
        with self._lock:
            if now is None:
                now = self.clock()
            # Outage credit: suspicion measures *observed* silence, in
            # the spirit of SWIM's protocol-period clock.  If the
            # detector itself was not stepping (idle caller, paused
            # process), that gap says nothing about any peer -- without
            # this credit, the first tick after an idle stretch longer
            # than the timeouts would declare every peer DEAD at once,
            # healthy beating nodes included (their fresh counters
            # have not gossiped anywhere yet), collapsing the ring.
            # Shifting every timer by the gap restarts detection:
            # a genuinely dead peer is still caught within
            # ``death_timeout`` of resumed stepping.
            if self._last_step is None:
                # First step ever: observation starts now, so no
                # silence has been observed yet -- registration may
                # have happened arbitrarily long ago.
                for table in self._views.values():
                    for view in table.values():
                        view.last_advance = now
            else:
                idle = now - self._last_step
                if idle > self.suspicion_timeout:
                    for table in self._views.values():
                        for view in table.values():
                            view.last_advance = min(
                                view.last_advance + idle, now
                            )
            self._last_step = now
            # Gossip: each live observer pushes its table to `fanout`
            # random peers (push-only epidemic dissemination).
            gossipers = sorted(self._views)
            for observer in gossipers:
                if observer != ROUTER and observer not in self._counters:
                    continue  # silenced mid-iteration
                peers = [
                    peer
                    for peer in gossipers
                    if peer != observer and peer in self._views
                ]
                if not peers:
                    continue
                for target in self._rng.sample(
                    peers, min(self.fanout, len(peers))
                ):
                    self._merge(observer, target, now)
            # Suspicion sweep: every observer judges every peer by the
            # age of the last counter advance it has *seen*.
            for observer, table in self._views.items():
                for peer, view in table.items():
                    if peer == observer or view.state == DEAD:
                        continue
                    age = now - view.last_advance
                    if view.state == ALIVE and age >= self.suspicion_timeout:
                        view.state = SUSPECT
                        transitions.append(Transition(observer, peer, SUSPECT))
                    if view.state == SUSPECT and age >= self.death_timeout:
                        view.state = DEAD
                        transitions.append(Transition(observer, peer, DEAD))
        return transitions

    def _merge(self, source: str, target: str, now: float) -> None:
        """Push ``source``'s table into ``target`` (lock held)."""
        source_table = self._views[source]
        target_table = self._views[target]
        for peer, seen in source_table.items():
            if peer == target:
                continue
            mine = target_table.get(peer)
            if mine is None:
                target_table[peer] = PeerView(seen.counter, now, seen.state)
            elif seen.counter > mine.counter:
                mine.counter = seen.counter
                mine.last_advance = now
                if mine.state == SUSPECT:
                    mine.state = ALIVE  # false alarm: it beat after all

    # -- verdicts ---------------------------------------------------------------------

    def state(self, peer: str, observer: str = ROUTER) -> str:
        with self._lock:
            view = self._views.get(observer, {}).get(peer)
            if view is None:
                raise ClusterError(
                    f"{observer!r} has no view of {peer!r}"
                )
            return view.state

    def is_alive(self, peer: str, observer: str = ROUTER) -> bool:
        """Routable?  ALIVE and SUSPECT both route (suspicion is a
        *hint*; only DEAD redirects traffic -- SWIM's standard hedge
        against false positives)."""
        with self._lock:
            view = self._views.get(observer, {}).get(peer)
            return view is not None and view.state != DEAD

    def snapshot(self, observer: str = ROUTER) -> dict[str, dict]:
        """Observer's table for observability exposition."""
        now = self.clock()
        with self._lock:
            table = self._views.get(observer, {})
            return {
                peer: {
                    "state": view.state,
                    "counter": view.counter,
                    "silence_seconds": max(0.0, now - view.last_advance),
                }
                for peer, view in sorted(table.items())
            }
