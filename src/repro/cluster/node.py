"""One cluster member: a per-node ``Cache`` plus bus replay state.

A :class:`CacheNode` owns a full PR-1 cache stack -- page store,
dependency table, analysis cache, invalidator, single-flight table,
statistics -- for the slice of the key space the ring assigns to it.
The node subscribes to the invalidation bus and replays every message
in sequence order through :meth:`apply`, which funnels into
``Cache.apply_writes`` so the node-local staleness window (open flights
buffer the writes they overlap) extends to writes that arrived via
*other* nodes.

Lifecycle: ``joined -> draining -> left``.  The router drives the
transitions; ``draining`` exists so a leave can move (rather than drop)
its entries while lookups still route elsewhere.
"""

from __future__ import annotations


from repro.cache.api import Cache
from repro.cache.entry import PageEntry
from repro.cluster.bus import BusMessage
from repro.errors import ClusterError
from repro.locks import NamedRLock

JOINED = "joined"
DRAINING = "draining"
LEFT = "left"


class CacheNode:
    """A named cache shard with ordered invalidation replay."""

    def __init__(self, name: str, cache: Cache) -> None:
        self.name = name
        self.cache = cache
        self.state = JOINED
        #: Sequence number of the last bus message applied; messages
        #: must arrive strictly ascending (the bus guarantees it).
        self.last_applied_seq = 0
        #: Entries drained into this node when it joined the ring.
        self.moved_in = 0
        #: Replica copies written through to this node (it is a
        #: secondary for their keys), and the entries those copies
        #: displaced -- kept separate from ``cache.stats.inserts`` so
        #: a node's insert count still means "pages computed here".
        self.replica_copies = 0
        self.replica_evictions = 0
        self._lock = NamedRLock("cache-node")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CacheNode {self.name} {self.state} pages={len(self.cache)}"
            f" seq={self.last_applied_seq}>"
        )

    # -- bus replay --------------------------------------------------------------------

    def apply(self, message: BusMessage) -> set:
        """Replay one invalidation message; returns doomed page keys.

        Rejecting out-of-order or replayed sequence numbers turns any
        bus-ordering bug into a loud error instead of silent staleness.
        """
        with self._lock:
            if message.seq <= self.last_applied_seq:
                raise ClusterError(
                    f"node {self.name}: bus message {message.seq} arrived "
                    f"after {self.last_applied_seq} was already applied"
                )
            self.last_applied_seq = message.seq
            if self.state == LEFT:
                return set()
            return self.cache.apply_writes(list(message.writes))

    def rebase(self, seq: int) -> None:
        """Adopt the bus position at (re-)subscription time."""
        with self._lock:
            self.last_applied_seq = seq

    # -- replication -------------------------------------------------------------------

    def copy_in(self, entry: PageEntry) -> bool:
        """Store a replica copy of ``entry`` (write-through replication).

        The copy is an **independent** :class:`PageEntry`: replicas
        sharing one object would let one node's capacity eviction
        ``doom()`` the wire buffer out from under every other copy.
        The page store re-registers the clone's dependencies locally,
        so later bus messages doom the copy through the normal per-node
        protocol, and byte accounting stays exact per replica.
        """
        with self._lock:
            if self.state != JOINED:
                return False
            clone = PageEntry(
                key=entry.key,
                body=entry.body,
                status=entry.status,
                headers=dict(entry.headers),
                dependencies=entry.dependencies,
                created_at=entry.created_at,
                expires_at=entry.expires_at,
                semantic=entry.semantic,
                fragments=entry.fragments,
            )
            evicted = self.cache.pages.insert(clone)
            self.cache.fragments.register(clone.key, clone.fragments)
            self.replica_copies += 1
            self.replica_evictions += len(evicted)
            return True

    # -- lifecycle ---------------------------------------------------------------------

    def mark_draining(self) -> None:
        with self._lock:
            if self.state != JOINED:
                raise ClusterError(
                    f"node {self.name} cannot drain from state {self.state!r}"
                )
            self.state = DRAINING

    def mark_left(self) -> None:
        with self._lock:
            self.state = LEFT

    # -- observability -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Per-node accounting for the cluster-level aggregate."""
        with self._lock:
            return {
                "name": self.name,
                "state": self.state,
                "last_applied_seq": self.last_applied_seq,
                "pages": len(self.cache.pages),
                "bytes": self.cache.pages.total_bytes,
                "open_flights": self.cache.open_flights,
                "replica_copies": self.replica_copies,
                "replica_evictions": self.replica_evictions,
                "stats": self.cache.stats.snapshot(),
            }
