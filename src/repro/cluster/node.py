"""One cluster member: a per-node ``Cache`` plus bus replay state.

A :class:`CacheNode` owns a full PR-1 cache stack -- page store,
dependency table, analysis cache, invalidator, single-flight table,
statistics -- for the slice of the key space the ring assigns to it.
The node subscribes to the invalidation bus and replays every message
in sequence order through :meth:`apply`, which funnels into
``Cache.apply_writes`` so the node-local staleness window (open flights
buffer the writes they overlap) extends to writes that arrived via
*other* nodes.

Lifecycle: ``joined -> draining -> left``.  The router drives the
transitions; ``draining`` exists so a leave can move (rather than drop)
its entries while lookups still route elsewhere.
"""

from __future__ import annotations


from repro.cache.api import Cache
from repro.cluster.bus import BusMessage
from repro.errors import ClusterError
from repro.locks import NamedRLock

JOINED = "joined"
DRAINING = "draining"
LEFT = "left"


class CacheNode:
    """A named cache shard with ordered invalidation replay."""

    def __init__(self, name: str, cache: Cache) -> None:
        self.name = name
        self.cache = cache
        self.state = JOINED
        #: Sequence number of the last bus message applied; messages
        #: must arrive strictly ascending (the bus guarantees it).
        self.last_applied_seq = 0
        #: Entries drained into this node when it joined the ring.
        self.moved_in = 0
        self._lock = NamedRLock("cache-node")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CacheNode {self.name} {self.state} pages={len(self.cache)}"
            f" seq={self.last_applied_seq}>"
        )

    # -- bus replay --------------------------------------------------------------------

    def apply(self, message: BusMessage) -> set:
        """Replay one invalidation message; returns doomed page keys.

        Rejecting out-of-order or replayed sequence numbers turns any
        bus-ordering bug into a loud error instead of silent staleness.
        """
        with self._lock:
            if message.seq <= self.last_applied_seq:
                raise ClusterError(
                    f"node {self.name}: bus message {message.seq} arrived "
                    f"after {self.last_applied_seq} was already applied"
                )
            self.last_applied_seq = message.seq
            if self.state == LEFT:
                return set()
            return self.cache.apply_writes(list(message.writes))

    def rebase(self, seq: int) -> None:
        """Adopt the bus position at (re-)subscription time."""
        with self._lock:
            self.last_applied_seq = seq

    # -- lifecycle ---------------------------------------------------------------------

    def mark_draining(self) -> None:
        with self._lock:
            if self.state != JOINED:
                raise ClusterError(
                    f"node {self.name} cannot drain from state {self.state!r}"
                )
            self.state = DRAINING

    def mark_left(self) -> None:
        with self._lock:
            self.state = LEFT

    # -- observability -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Per-node accounting for the cluster-level aggregate."""
        with self._lock:
            return {
                "name": self.name,
                "state": self.state,
                "last_applied_seq": self.last_applied_seq,
                "pages": len(self.cache.pages),
                "bytes": self.cache.pages.total_bytes,
                "open_flights": self.cache.open_flights,
                "stats": self.cache.stats.snapshot(),
            }
