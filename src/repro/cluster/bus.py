"""The invalidation bus: totally ordered write broadcast.

One woven node observes a write request and knows exactly which
``QueryInstance`` set it executed (PR-1's invalidation information).
Every *other* node, however, may hold pages computed from the rows that
write just changed -- the sharded router places a page on exactly one
node, but the underlying database is shared.  The bus closes that gap:
every write's invalidation information is broadcast to all nodes, each
message carrying a monotonically increasing **cluster sequence number**
assigned under the bus lock, and subscribers receive messages in
sequence order.

Two properties matter for the consistency argument (docs/cluster.md):

1. **Total order** -- sequence assignment and delivery happen under one
   lock, so every node observes the same write order, and a node's
   ``last_applied_seq`` is a complete summary of what it has seen.
2. **Synchronous delivery** -- ``publish`` returns only after every
   subscriber has run its invalidation pass.  The write request
   therefore does not complete (and its response is not sent) until the
   whole cluster is consistent, which is exactly the paper's
   invalidation-before-response rule extended to N nodes.  In-flight
   computations overlapping the write are handled by each node's own
   staleness window (``Cache.apply_writes`` buffers the message for its
   open flights).
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cache.entry import QueryInstance
from repro.cache.invalidation import dedupe_writes
from repro.errors import ClusterError
from repro.locks import NamedRLock

#: A subscriber: called with each message, returns the page keys it
#: invalidated locally.
Subscriber = Callable[["BusMessage"], set]


@dataclass(frozen=True)
class BusMessage:
    """One broadcast invalidation event."""

    #: Cluster-wide sequence number (1-based, gap-free).
    seq: int
    #: Node (or front-end) that observed the write request.
    origin: str
    #: Request URI the write arrived under (statistics only).
    uri: str
    #: The write's invalidation information.
    writes: tuple[QueryInstance, ...]
    #: Opaque trace propagation ids ``(trace_id, span_id)`` stamped by
    #: the publisher's observability advice, if any is woven.  The bus
    #: carries but never interprets them: subscribers on other nodes
    #: use the pair to stitch their invalidation work into the
    #: originating request's trace.
    trace: tuple[str, str] | None = None


@dataclass
class BusStats:
    """Counters for one bus (all mutated under the bus lock)."""

    published: int = 0
    #: Individual deliveries (published x subscribers at publish time).
    delivered: int = 0
    #: Union-size of page keys doomed per publish, accumulated.
    pages_invalidated: int = 0
    #: Duplicate write instances dropped before broadcast (each would
    #: have been re-analysed by every subscriber under the bus lock).
    writes_deduped: int = 0
    #: Group-commit drain rounds (batched mode only): each is one bus
    #: lock hold that delivered >= 1 queued publishes.  ``published``
    #: divided by ``batches`` is the achieved batching factor.
    batches: int = 0


@dataclass
class _PendingPublish:
    """One queued publish awaiting a group-commit leader (batched mode)."""

    origin: str
    uri: str
    writes: tuple[QueryInstance, ...]
    dropped: int
    trace: tuple[str, str] | None
    done: threading.Event = field(default_factory=threading.Event)
    message: BusMessage | None = None
    doomed: set = field(default_factory=set)


class InvalidationBus:
    """Sequence-numbered broadcast channel between cache nodes.

    With ``batched=True`` publishes group-commit: concurrent callers
    enqueue their write under a small leaf lock, the first of them
    becomes *leader* and drains the queue under one bus-lock hold while
    the rest park on per-item events.  Each queued write still gets its
    own sequence number, its own :class:`BusMessage` (the caller's
    trace ids included) and a full synchronous delivery pass, in queue
    order -- total order and invalidation-before-response are
    unchanged; only the number of bus-lock handoffs shrinks.  Default
    off: unbatched behaviour is bit-for-bit the PR-2 bus.
    """

    def __init__(self, batched: bool = False) -> None:
        self._lock = NamedRLock("invalidation-bus")
        self._seq = 0
        #: name -> subscriber, in subscription order (dicts preserve it).
        self._subscribers: dict[str, Subscriber] = {}
        self.stats = BusStats()
        #: Bounded tail of recent messages (observability/tests).
        self._recent: list[BusMessage] = []
        self._recent_limit = 64
        #: Group-commit mode (see class docstring).
        self.batched = batched
        # Leaf lock guarding only the pending queue + leader flag; it is
        # never held while the bus lock is being *acquired* (the leader
        # re-takes it inside the bus lock, a strict bus -> queue order),
        # so it cannot participate in a cycle with the named locks.
        self._queue_lock = threading.Lock()
        self._pending: list[_PendingPublish] = []
        self._draining = False

    @property
    def seq(self) -> int:
        """The sequence number of the last published message."""
        with self._lock:
            return self._seq

    @property
    def subscriber_names(self) -> list[str]:
        with self._lock:
            return list(self._subscribers)

    def subscribe(self, name: str, subscriber: Subscriber) -> int:
        """Register ``subscriber``; returns the current sequence number.

        The returned value is the join point: the subscriber has, by
        definition, seen nothing up to and including it, and will see
        every message after it.
        """
        with self._lock:
            if name in self._subscribers:
                raise ClusterError(f"{name!r} is already subscribed to the bus")
            self._subscribers[name] = subscriber
            return self._seq

    def unsubscribe(self, name: str) -> None:
        with self._lock:
            if name not in self._subscribers:
                raise ClusterError(f"{name!r} is not subscribed to the bus")
            del self._subscribers[name]

    def publish(
        self,
        origin: str,
        uri: str,
        writes: list[QueryInstance],
        trace: tuple[str, str] | None = None,
    ) -> tuple[BusMessage, set]:
        """Broadcast one write's invalidation information.

        Returns the stamped message and the **union** of page keys
        invalidated across all subscribers.  Delivery runs under the
        bus lock: sequence order equals delivery order on every node.
        Duplicate write instances are dropped before delivery -- the
        publish lock serialises every write in the cluster, so each
        duplicate would add a full per-node invalidation pass to the
        bus hold time for provably identical doomed sets.

        In batched mode the call still blocks until *this* write's
        delivery pass has run everywhere (the group-commit leader may
        run it on the caller's behalf); the return value is identical.
        """
        unique = tuple(dedupe_writes(writes))
        dropped = len(writes) - len(unique)
        if not self.batched:
            with self._lock:
                item = _PendingPublish(origin, uri, unique, dropped, trace)
                self._deliver(item)
                return item.message, item.doomed
        item = _PendingPublish(origin, uri, unique, dropped, trace)
        with self._queue_lock:
            self._pending.append(item)
            lead = not self._draining
            if lead:
                self._draining = True
        if not lead:
            item.done.wait()
            return item.message, item.doomed
        with self._lock:
            while True:
                with self._queue_lock:
                    batch = self._pending
                    if not batch:
                        self._draining = False
                        break
                    self._pending = []
                self.stats.batches += 1
                for queued in batch:
                    self._deliver(queued)
                    queued.done.set()
        return item.message, item.doomed

    def _deliver(self, item: _PendingPublish) -> None:
        """Stamp, broadcast and record one publish (bus lock held)."""
        self._seq += 1
        self.stats.writes_deduped += item.dropped
        message = BusMessage(
            seq=self._seq,
            origin=item.origin,
            uri=item.uri,
            writes=item.writes,
            trace=item.trace,
        )
        self._recent.append(message)
        del self._recent[: -self._recent_limit]
        doomed: set = set()
        self.stats.published += 1
        for subscriber in self._subscribers.values():
            self.stats.delivered += 1
            doomed |= subscriber(message)
        self.stats.pages_invalidated += len(doomed)
        item.message = message
        item.doomed = doomed

    @property
    def pending_publishes(self) -> int:
        """Queued publishes not yet drained (batched mode diagnostics)."""
        with self._queue_lock:
            return len(self._pending)

    def recent(self) -> list[BusMessage]:
        with self._lock:
            return list(self._recent)

    @contextlib.contextmanager
    def quiesced(self) -> Iterator[None]:
        """Hold the bus silent while the body runs.

        Ring membership changes move entries between nodes; a publish
        interleaving with the move could invalidate an entry on the old
        node after it was released but before it landed on the new one,
        missing it entirely.  Running the migration under ``quiesced``
        (the publish lock) closes that window.
        """
        with self._lock:
            yield
