"""The invalidation bus: totally ordered write broadcast.

One woven node observes a write request and knows exactly which
``QueryInstance`` set it executed (PR-1's invalidation information).
Every *other* node, however, may hold pages computed from the rows that
write just changed -- the sharded router places a page on exactly one
node, but the underlying database is shared.  The bus closes that gap:
every write's invalidation information is broadcast to all nodes, each
message carrying a monotonically increasing **cluster sequence number**
assigned under the bus lock, and subscribers receive messages in
sequence order.

Two properties matter for the consistency argument (docs/cluster.md):

1. **Total order** -- sequence assignment happens under one lock and
   each node's queue is FIFO, so every node observes the same write
   order, and a node's ``last_applied_seq`` is a complete summary of
   what it has seen.
2. **Synchronous delivery** (strong mode, the default) -- ``publish``
   returns only after every subscriber has run its invalidation pass.
   The write request therefore does not complete (and its response is
   not sent) until the whole cluster is consistent, which is exactly
   the paper's invalidation-before-response rule extended to N nodes.
   In-flight computations overlapping the write are handled by each
   node's own staleness window (``Cache.apply_writes`` buffers the
   message for its open flights).

**Bounded-staleness mode** (``mode="bounded"``) trades property 2 for
write latency that no longer grows with cluster size: ``publish``
returns after the message is durably enqueued on every node's FIFO
(sequence stamped, order fixed); delivery happens asynchronously -- a
pump thread, an explicit :meth:`flush`, or inline *shedding* when a
queue saturates or its head message approaches the staleness bound.
No invalidation is ever lost or reordered; it is only *late*, by a
measured, bounded amount: per-node delivery lag is recorded at every
delivery and the maximum observed lag must stay under
``staleness_bound`` (asserted end-to-end by the
``TriggerInvalidationBridge`` staleness oracle, see
docs/replication.md for why this bound composes with PR-1's
write-sequence staleness window).
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cache.entry import QueryInstance
from repro.cache.invalidation import dedupe_writes
from repro.errors import ClusterError
from repro.locks import NamedRLock

#: A subscriber: called with each message, returns the page keys it
#: invalidated locally.
Subscriber = Callable[["BusMessage"], set]

#: Delivery observer (bounded mode): called *outside* the bus lock
#: after a message was applied on one node, with the keys that node
#: doomed.  The router uses it for cross-shard containment closure and
#: the deferred doomed-key ledger.
DeliveryObserver = Callable[["BusMessage", set], None]

STRONG = "strong"
BOUNDED = "bounded"


@dataclass(frozen=True)
class BusMessage:
    """One broadcast invalidation event."""

    #: Cluster-wide sequence number (1-based, gap-free).
    seq: int
    #: Node (or front-end) that observed the write request.
    origin: str
    #: Request URI the write arrived under (statistics only).
    uri: str
    #: The write's invalidation information.
    writes: tuple[QueryInstance, ...]
    #: Opaque trace propagation ids ``(trace_id, span_id)`` stamped by
    #: the publisher's observability advice, if any is woven.  The bus
    #: carries but never interprets them: subscribers on other nodes
    #: use the pair to stitch their invalidation work into the
    #: originating request's trace.
    trace: tuple[str, str] | None = None


@dataclass
class BusStats:
    """Counters for one bus (all mutated under the bus lock)."""

    published: int = 0
    #: Individual deliveries (published x subscribers at publish time).
    delivered: int = 0
    #: Union-size of page keys doomed per publish, accumulated.
    pages_invalidated: int = 0
    #: Duplicate write instances dropped before broadcast (each would
    #: have been re-analysed by every subscriber under the bus lock).
    writes_deduped: int = 0
    #: Group-commit drain rounds (batched mode only): each is one bus
    #: lock hold that delivered >= 1 queued publishes.  ``published``
    #: divided by ``batches`` is the achieved batching factor.
    batches: int = 0
    #: Bounded mode: enqueue events (published x queues at publish).
    enqueued: int = 0
    #: Bounded mode: backpressure events -- a publish found a node's
    #: queue at capacity (or its head near the bound) and drained it
    #: synchronously before returning.  The shed-to-sync fallback.
    sheds: int = 0
    #: Bounded mode: maximum observed publish -> delivery lag (the
    #: measured staleness the oracle checks against the bound).
    max_staleness: float = 0.0


@dataclass
class _PendingPublish:
    """One queued publish awaiting a group-commit leader (batched mode)."""

    origin: str
    uri: str
    writes: tuple[QueryInstance, ...]
    dropped: int
    trace: tuple[str, str] | None
    done: threading.Event = field(default_factory=threading.Event)
    message: BusMessage | None = None
    doomed: set = field(default_factory=set)


@dataclass
class _QueueStats:
    """Per-node delivery accounting (bounded mode, bus lock held)."""

    delivered: int = 0
    last_lag: float = 0.0
    max_lag: float = 0.0


class InvalidationBus:
    """Sequence-numbered broadcast channel between cache nodes.

    With ``batched=True`` publishes group-commit: concurrent callers
    enqueue their write under a small leaf lock, the first of them
    becomes *leader* and drains the queue under one bus-lock hold while
    the rest park on per-item events.  Each queued write still gets its
    own sequence number, its own :class:`BusMessage` (the caller's
    trace ids included) and a full synchronous delivery pass, in queue
    order -- total order and invalidation-before-response are
    unchanged; only the number of bus-lock handoffs shrinks.  Default
    off: unbatched behaviour is bit-for-bit the PR-2 bus.

    With ``mode="bounded"`` (incompatible with batching) publishes
    enqueue instead of delivering; see the module docstring.  The
    ``pump`` flag starts a daemon drain thread on first subscription
    (real deployments); the simulator passes ``pump=False`` and drives
    :meth:`flush` from virtual time.
    """

    def __init__(
        self,
        batched: bool = False,
        mode: str = STRONG,
        staleness_bound: float = 0.5,
        queue_capacity: int = 512,
        clock: Callable[[], float] = time.time,
        pump: bool = True,
    ) -> None:
        if mode not in (STRONG, BOUNDED):
            raise ClusterError(f"unknown bus mode {mode!r}")
        if mode == BOUNDED and batched:
            raise ClusterError(
                "bounded-staleness mode already amortises bus-lock "
                "handoffs through its queues; batching is a strong-mode "
                "optimisation and cannot be combined with it"
            )
        if mode == BOUNDED and staleness_bound <= 0:
            raise ClusterError("staleness_bound must be positive")
        if queue_capacity <= 0:
            raise ClusterError("queue_capacity must be positive")
        self._lock = NamedRLock("invalidation-bus")
        self._seq = 0
        #: name -> subscriber, in subscription order (dicts preserve it).
        self._subscribers: dict[str, Subscriber] = {}
        self.stats = BusStats()
        #: Bounded tail of recent messages (observability/tests).
        self._recent: list[BusMessage] = []
        self._recent_limit = 64
        #: Group-commit mode (see class docstring).
        self.batched = batched
        self.mode = mode
        self.staleness_bound = staleness_bound
        self.queue_capacity = queue_capacity
        self.clock = clock
        #: Bounded mode: per-node FIFO of (message, enqueued_at).
        self._queues: dict[str, deque] = {}
        self._queue_stats: dict[str, _QueueStats] = {}
        #: Bounded mode: per-node applied-sequence watermark (the seq
        #: of the last message drained to that subscriber).
        self._applied: dict[str, int] = {}
        #: Delivery observer (router closure hook), bounded mode only.
        self.on_delivered: DeliveryObserver | None = None
        # Leaf lock guarding only the pending queue + leader flag; it is
        # never held while the bus lock is being *acquired* (the leader
        # re-takes it inside the bus lock, a strict bus -> queue order),
        # so it cannot participate in a cycle with the named locks.
        self._queue_lock = threading.Lock()
        self._pending: list[_PendingPublish] = []
        self._draining = False
        # Pump thread (bounded mode, pump=True): lazily started.
        self._pump_wanted = pump and mode == BOUNDED
        self._pump_thread: threading.Thread | None = None
        self._pump_stop = threading.Event()

    @property
    def seq(self) -> int:
        """The sequence number of the last published message."""
        with self._lock:
            return self._seq

    @property
    def subscriber_names(self) -> list[str]:
        with self._lock:
            return list(self._subscribers)

    def applied_seq(self, name: str) -> int:
        """Highest sequence number ``name`` has applied.

        Bounded mode tracks a per-node watermark advanced at drain
        time; in strong mode delivery runs synchronously under the
        publish lock, so every subscriber is always at the bus head.
        The replica write-through audit compares watermarks instead of
        forcing a cluster-wide drain (see ``ClusterRouter._replicate``):
        a fresh copy is safe unless its secondary has applied a message
        the primary has not.
        """
        with self._lock:
            if self.mode == BOUNDED and name in self._applied:
                return self._applied[name]
            return self._seq

    def subscribe(self, name: str, subscriber: Subscriber) -> int:
        """Register ``subscriber``; returns the current sequence number.

        The returned value is the join point: the subscriber has, by
        definition, seen nothing up to and including it, and will see
        every message after it.
        """
        with self._lock:
            if name in self._subscribers:
                raise ClusterError(f"{name!r} is already subscribed to the bus")
            self._subscribers[name] = subscriber
            if self.mode == BOUNDED:
                self._queues[name] = deque()
                self._queue_stats.setdefault(name, _QueueStats())
                self._applied[name] = self._seq
            seq = self._seq
        if self._pump_wanted:
            self._ensure_pump()
        return seq

    def unsubscribe(self, name: str) -> None:
        """Drop ``name``; any messages still queued for it are dropped
        too (its cache is unreachable after a leave/crash -- a rejoin
        starts from an empty shard, so nothing can go stale)."""
        with self._lock:
            if name not in self._subscribers:
                raise ClusterError(f"{name!r} is not subscribed to the bus")
            del self._subscribers[name]
            self._queues.pop(name, None)
            self._applied.pop(name, None)

    def publish(
        self,
        origin: str,
        uri: str,
        writes: list[QueryInstance],
        trace: tuple[str, str] | None = None,
    ) -> tuple[BusMessage, set]:
        """Broadcast one write's invalidation information.

        Strong mode returns the stamped message and the **union** of
        page keys invalidated across all subscribers; delivery runs
        under the bus lock, so sequence order equals delivery order on
        every node, and the write response cannot be sent before the
        cluster is consistent.  Duplicate write instances are dropped
        before broadcast -- the publish lock serialises every write in
        the cluster, so each duplicate would add a full per-node
        invalidation pass to the bus hold time for provably identical
        doomed sets.

        In batched mode the call still blocks until *this* write's
        delivery pass has run everywhere (the group-commit leader may
        run it on the caller's behalf); the return value is identical.

        Bounded mode returns after durable enqueue with an **empty**
        doomed set (dooming happens at delivery; the router's
        ``on_delivered`` hook observes it).  Backpressure: a queue at
        capacity, or whose head message has aged past half the
        staleness bound, is drained synchronously before returning --
        the shed-to-sync fallback that keeps the bound honest even if
        the pump stalls.
        """
        unique = tuple(dedupe_writes(writes))
        dropped = len(writes) - len(unique)
        if self.mode == BOUNDED:
            return self._publish_bounded(origin, uri, unique, dropped, trace)
        if not self.batched:
            with self._lock:
                item = _PendingPublish(origin, uri, unique, dropped, trace)
                self._deliver(item)
                return item.message, item.doomed
        item = _PendingPublish(origin, uri, unique, dropped, trace)
        with self._queue_lock:
            self._pending.append(item)
            lead = not self._draining
            if lead:
                self._draining = True
        if not lead:
            item.done.wait()
            return item.message, item.doomed
        with self._lock:
            while True:
                with self._queue_lock:
                    batch = self._pending
                    if not batch:
                        self._draining = False
                        break
                    self._pending = []
                self.stats.batches += 1
                for queued in batch:
                    self._deliver(queued)
                    queued.done.set()
        return item.message, item.doomed

    def _deliver(self, item: _PendingPublish) -> None:
        """Stamp, broadcast and record one publish (bus lock held)."""
        self._seq += 1
        self.stats.writes_deduped += item.dropped
        message = BusMessage(
            seq=self._seq,
            origin=item.origin,
            uri=item.uri,
            writes=item.writes,
            trace=item.trace,
        )
        self._recent.append(message)
        del self._recent[: -self._recent_limit]
        doomed: set = set()
        self.stats.published += 1
        for subscriber in self._subscribers.values():
            self.stats.delivered += 1
            doomed |= subscriber(message)
        self.stats.pages_invalidated += len(doomed)
        item.message = message
        item.doomed = doomed

    # -- bounded-staleness mode --------------------------------------------------------

    def _publish_bounded(
        self,
        origin: str,
        uri: str,
        unique: tuple[QueryInstance, ...],
        dropped: int,
        trace: tuple[str, str] | None,
    ) -> tuple[BusMessage, set]:
        notifications: list[tuple[BusMessage, set]] = []
        with self._lock:
            self._seq += 1
            self.stats.writes_deduped += dropped
            message = BusMessage(
                seq=self._seq,
                origin=origin,
                uri=uri,
                writes=unique,
                trace=trace,
            )
            self._recent.append(message)
            del self._recent[: -self._recent_limit]
            self.stats.published += 1
            now = self.clock()
            for queue in self._queues.values():
                queue.append((message, now))
                self.stats.enqueued += 1
            # Backpressure / bound enforcement: a saturated queue, or
            # one whose head has been waiting for half the bound, is
            # drained before this publish returns.
            shed_threshold = self.staleness_bound / 2.0
            for name, queue in self._queues.items():
                if not queue:
                    continue
                over_capacity = len(queue) > self.queue_capacity
                head_age = now - queue[0][1]
                if over_capacity or head_age >= shed_threshold:
                    self.stats.sheds += 1
                    self._drain_node_locked(name, notifications)
        self._notify(notifications)
        return message, set()

    def _drain_node_locked(
        self, name: str, notifications: list[tuple[BusMessage, set]]
    ) -> None:
        """Deliver everything queued for ``name`` (bus lock held)."""
        queue = self._queues.get(name)
        subscriber = self._subscribers.get(name)
        if queue is None or subscriber is None:
            return
        accounting = self._queue_stats.setdefault(name, _QueueStats())
        while queue:
            message, enqueued_at = queue.popleft()
            doomed = subscriber(message)
            self._applied[name] = message.seq
            now = self.clock()
            lag = max(0.0, now - enqueued_at)
            accounting.delivered += 1
            accounting.last_lag = lag
            accounting.max_lag = max(accounting.max_lag, lag)
            self.stats.delivered += 1
            self.stats.max_staleness = max(self.stats.max_staleness, lag)
            self.stats.pages_invalidated += len(doomed)
            if doomed or self.on_delivered is not None:
                notifications.append((message, doomed))

    def _notify(self, notifications: list[tuple[BusMessage, set]]) -> None:
        """Run the delivery observer outside the bus lock.

        The observer takes the router lock (containment closure routes
        through shard owners); running it under the bus lock would
        invert the documented router -> bus order.
        """
        observer = self.on_delivered
        if observer is None:
            return
        for message, doomed in notifications:
            observer(message, doomed)

    def flush(self, names: list[str] | None = None) -> None:
        """Deliver everything queued (bounded mode; strong is a no-op
        beyond the lock barrier -- acquiring the bus lock joins any
        in-flight delivery pass, which is exactly the memory barrier
        the replica write-through protocol needs)."""
        notifications: list[tuple[BusMessage, set]] = []
        with self._lock:
            if self.mode == BOUNDED:
                targets = (
                    list(self._queues) if names is None else list(names)
                )
                for name in targets:
                    self._drain_node_locked(name, notifications)
        self._notify(notifications)

    def oldest_age(self, now: float | None = None) -> float:
        """Age of the oldest queued, undelivered message (0.0 if none).

        The simulator polls this to honour the staleness bound in
        virtual time; the pump thread keeps it near zero in real time.
        """
        with self._lock:
            oldest: float | None = None
            for queue in self._queues.values():
                if queue:
                    enqueued_at = queue[0][1]
                    oldest = (
                        enqueued_at
                        if oldest is None
                        else min(oldest, enqueued_at)
                    )
            if oldest is None:
                return 0.0
            return max(0.0, (now if now is not None else self.clock()) - oldest)

    def queue_depths(self) -> dict[str, int]:
        """Per-node undelivered message counts (bounded mode gauges)."""
        with self._lock:
            return {name: len(queue) for name, queue in self._queues.items()}

    def delivery_lags(self) -> dict[str, dict[str, float]]:
        """Per-node last/max delivery lag in seconds (bounded mode)."""
        with self._lock:
            return {
                name: {"last": s.last_lag, "max": s.max_lag}
                for name, s in self._queue_stats.items()
            }

    # -- pump thread -------------------------------------------------------------------

    def _ensure_pump(self) -> None:
        with self._queue_lock:
            if self._pump_thread is not None and self._pump_thread.is_alive():
                return
            self._pump_stop.clear()
            interval = min(0.05, self.staleness_bound / 4.0)
            thread = threading.Thread(
                target=self._pump_loop,
                args=(interval,),
                name="invalidation-bus-pump",
                daemon=True,
            )
            self._pump_thread = thread
            thread.start()

    def _pump_loop(self, interval: float) -> None:
        while not self._pump_stop.wait(interval):
            self.flush()

    def close(self) -> None:
        """Stop the pump and deliver any residue (idempotent)."""
        self._pump_stop.set()
        thread = self._pump_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._pump_thread = None
        self.flush()

    @property
    def pending_publishes(self) -> int:
        """Queued publishes not yet drained (batched mode diagnostics)."""
        with self._queue_lock:
            return len(self._pending)

    def recent(self) -> list[BusMessage]:
        with self._lock:
            return list(self._recent)

    @contextlib.contextmanager
    def quiesced(self) -> Iterator[None]:
        """Hold the bus silent while the body runs.

        Ring membership changes move entries between nodes; a publish
        interleaving with the move could invalidate an entry on the old
        node after it was released but before it landed on the new one,
        missing it entirely.  Running the migration under ``quiesced``
        (the publish lock) closes that window.  In bounded mode the
        queues are drained first, so the body sees a fully consistent
        cluster; delivery observers for that residue run after the
        body (they take the router lock, which the body's caller may
        hold).
        """
        notifications: list[tuple[BusMessage, set]] = []
        with self._lock:
            if self.mode == BOUNDED:
                for name in list(self._queues):
                    self._drain_node_locked(name, notifications)
            yield
        self._notify(notifications)
