"""``repro.cluster``: the sharded multi-node cache tier.

AutoWebCache (the paper) proves page/database consistency on a single
woven server.  This package scales that guarantee to N nodes:

- :mod:`repro.cluster.ring` -- consistent-hash placement of page keys
  onto nodes (virtual nodes, minimal remapping on join/leave);
- :mod:`repro.cluster.bus` -- sequence-numbered invalidation broadcast,
  totally ordered and delivered before the write request completes;
- :mod:`repro.cluster.node` -- per-node cache shard with ordered replay
  and join/drain/leave lifecycle;
- :mod:`repro.cluster.router` -- the Cache-shaped front-end the caching
  aspects are woven against;
- :mod:`repro.cluster.awc` -- the ``ClusterAutoWebCache`` facade.

See ``docs/cluster.md`` for the consistency argument (how PR-1's
write-sequence staleness window extends across nodes).
"""

from repro.cluster.awc import ClusterAutoWebCache, default_node_names
from repro.cluster.bus import BusMessage, BusStats, InvalidationBus
from repro.cluster.node import CacheNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.cluster.router import ClusterRouter, ClusterStats, make_cache_factory

__all__ = [
    "BusMessage",
    "BusStats",
    "CacheNode",
    "ClusterAutoWebCache",
    "ClusterRouter",
    "ClusterStats",
    "DEFAULT_VNODES",
    "HashRing",
    "InvalidationBus",
    "default_node_names",
    "make_cache_factory",
    "stable_hash",
]
