"""``repro.cluster``: the sharded, replicated multi-node cache tier.

AutoWebCache (the paper) proves page/database consistency on a single
woven server.  This package scales that guarantee to N nodes:

- :mod:`repro.cluster.ring` -- consistent-hash placement of page keys
  onto nodes (virtual nodes, minimal remapping on join/leave) and
  successor-placement replica sets (``nodes_for``);
- :mod:`repro.cluster.bus` -- sequence-numbered invalidation broadcast;
  strong mode delivers before the write request completes, bounded mode
  trades that for enqueue-and-return with a measured, bounded delivery
  lag and shed-to-sync backpressure;
- :mod:`repro.cluster.membership` -- gossip heartbeats with suspicion
  timeouts, so join/leave/crash detection needs no bus quiescence;
- :mod:`repro.cluster.node` -- per-node cache shard with ordered replay,
  join/drain/leave lifecycle and replica write-through (``copy_in``);
- :mod:`repro.cluster.router` -- the Cache-shaped front-end the caching
  aspects are woven against (replication, read failover, crash
  eviction);
- :mod:`repro.cluster.awc` -- the ``ClusterAutoWebCache`` facade.

See ``docs/cluster.md`` for the consistency argument (how PR-1's
write-sequence staleness window extends across nodes) and
``docs/replication.md`` for the replication/bounded-staleness half.
"""

from repro.cluster.awc import ClusterAutoWebCache, default_node_names
from repro.cluster.bus import (
    BOUNDED,
    STRONG,
    BusMessage,
    BusStats,
    InvalidationBus,
)
from repro.cluster.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    GossipMembership,
    Transition,
)
from repro.cluster.node import CacheNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.cluster.router import ClusterRouter, ClusterStats, make_cache_factory

__all__ = [
    "ALIVE",
    "BOUNDED",
    "BusMessage",
    "BusStats",
    "CacheNode",
    "ClusterAutoWebCache",
    "ClusterRouter",
    "ClusterStats",
    "DEAD",
    "DEFAULT_VNODES",
    "GossipMembership",
    "HashRing",
    "InvalidationBus",
    "STRONG",
    "SUSPECT",
    "Transition",
    "default_node_names",
    "make_cache_factory",
    "stable_hash",
]
