"""The cluster facade: AutoWebCache over N sharded nodes.

Mirrors :class:`~repro.cache.autowebcache.AutoWebCache` exactly -- same
constructor knobs, same ``install``/``uninstall`` weaving lifecycle --
but the aspects are bound to a :class:`~repro.cluster.router.
ClusterRouter` instead of a single :class:`~repro.cache.api.Cache`.
The woven application is unchanged either way: sharding, like caching
itself, stays a crosscutting concern.

Typical use::

    awc = ClusterAutoWebCache(n_nodes=4)
    awc.install(container.servlet_classes)
    ...  # serve traffic; awc.stats aggregates across nodes
    print(awc.cluster_snapshot())
    awc.uninstall()
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.admission.aspects import (
    DEFAULT_METHOD_POINTCUT,
    MethodCacheAspect,
    method_cache_aspect_class,
)
from repro.admission.policy import AdmissionPolicy
from repro.aop.weaver import WeaveReport, Weaver
from repro.cache.analysis import InvalidationPolicy
from repro.cache.aspects import (
    JdbcConsistencyAspect,
    ReadServletAspect,
    WriteServletAspect,
)
from repro.cache.aspects_fragment import FragmentCacheAspect
from repro.cache.consistency import ConsistencyCollector
from repro.cache.semantics import SemanticsRegistry
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.router import ClusterRouter, make_cache_factory
from repro.db.dbapi import Statement
from repro.errors import CacheError


def default_node_names(n_nodes: int) -> list[str]:
    return [f"node-{i}" for i in range(n_nodes)]


class ClusterAutoWebCache:
    """Bundles router, collector, aspects and weaver for a cluster."""

    def __init__(
        self,
        n_nodes: int = 4,
        node_names: list[str] | None = None,
        policy: InvalidationPolicy = InvalidationPolicy.EXTRA_QUERY,
        replacement: str = "unbounded",
        capacity: int | None = None,
        max_bytes: int | None = None,
        semantics: SemanticsRegistry | None = None,
        clock: Callable[[], float] = time.time,
        forced_miss: bool = False,
        coalesce: bool = True,
        flight_timeout: float = 30.0,
        vnodes: int = DEFAULT_VNODES,
        fragments: bool = True,
        admission: AdmissionPolicy | None = None,
        method_cache_targets: Iterable[type] = (),
        method_cache_pointcut: str | None = None,
        bus_batching: bool = False,
        replication: int = 1,
        bus_mode: str = "strong",
        staleness_bound: float = 0.5,
        bus_queue_capacity: int = 512,
        bus_pump: bool = True,
    ) -> None:
        names = node_names if node_names is not None else default_node_names(n_nodes)
        # One shared registry: cacheability and TTL windows are
        # cluster-wide policy, identical on every shard.
        shared_semantics = semantics or SemanticsRegistry()
        # Likewise one shared admission policy: every shard consults the
        # same cost model, so a class demoted on one node is demoted
        # cluster-wide (admission is placement-independent policy).
        factory = make_cache_factory(
            invalidation_policy=policy,
            replacement=replacement,
            capacity=capacity,
            max_bytes=max_bytes,
            semantics=shared_semantics,
            clock=clock,
            forced_miss=forced_miss,
            coalesce=coalesce,
            flight_timeout=flight_timeout,
            admission=admission,
        )
        self.router = ClusterRouter(
            names,
            factory,
            vnodes=vnodes,
            batched_bus=bus_batching,
            replication=replication,
            bus_mode=bus_mode,
            staleness_bound=staleness_bound,
            bus_queue_capacity=bus_queue_capacity,
            bus_pump=bus_pump,
        )
        self.collector = ConsistencyCollector()
        self.read_aspect = ReadServletAspect(self.router, self.collector)
        self.write_aspect = WriteServletAspect(self.router, self.collector)
        self.jdbc_aspect = JdbcConsistencyAspect(self.router, self.collector)
        self.fragments_enabled = fragments
        self.fragment_aspect = (
            FragmentCacheAspect(self.router, self.collector) if fragments else None
        )
        self.method_cache_targets = tuple(method_cache_targets)
        self.method_aspect = None
        if self.method_cache_targets:
            aspect_cls = (
                method_cache_aspect_class(method_cache_pointcut)
                if method_cache_pointcut is not None
                and method_cache_pointcut != DEFAULT_METHOD_POINTCUT
                else MethodCacheAspect
            )
            self.method_aspect = aspect_cls(self.router, self.collector)
        self._weaver: Weaver | None = None
        self.weave_report: WeaveReport | None = None

    @property
    def cache(self) -> ClusterRouter:
        """The facade the aspects (and work meters) talk to."""
        return self.router

    @property
    def semantics(self) -> SemanticsRegistry:
        return self.router.semantics

    @property
    def stats(self):
        return self.router.stats

    @property
    def bus(self):
        return self.router.bus

    @property
    def installed(self) -> bool:
        return self._weaver is not None

    def cluster_snapshot(self) -> dict:
        """Aggregate + per-node + bus accounting, one consistent read
        per node (see :meth:`repro.cache.stats.CacheStats.snapshot`)."""
        return self.router.snapshot()

    def install(
        self,
        servlet_classes: Iterable[type],
        driver_classes: Iterable[type] = (Statement,),
        extra_aspects: Iterable[object] = (),
    ) -> WeaveReport:
        """Weave the caching aspects, bound to the cluster router."""
        if self._weaver is not None:
            raise CacheError("ClusterAutoWebCache is already installed")
        weaver = Weaver()
        weaver.add_aspect(self.read_aspect)
        weaver.add_aspect(self.write_aspect)
        weaver.add_aspect(self.jdbc_aspect)
        targets = list(servlet_classes) + list(driver_classes)
        if self.fragment_aspect is not None:
            from repro.apps.html import PageComposer

            weaver.add_aspect(self.fragment_aspect)
            if PageComposer not in targets:
                targets.append(PageComposer)
        if self.method_aspect is not None:
            weaver.add_aspect(self.method_aspect)
            for owner in self.method_cache_targets:
                if owner not in targets:
                    targets.append(owner)
        for aspect in extra_aspects:
            weaver.add_aspect(aspect)
        self.weave_report = weaver.weave(targets)
        self._weaver = weaver
        return self.weave_report

    def uninstall(self) -> None:
        if self._weaver is None:
            return
        self._weaver.unweave()
        self._weaver = None
        # Stop the bounded-mode bus pump (a daemon thread) and deliver
        # any queued residue; a no-op for the strong-mode bus.
        self.router.close()

    def __enter__(self) -> "ClusterAutoWebCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
