"""Consistent-hash ring: deterministic key -> node placement.

The front-end router shards the page-cache key space over N nodes.  A
plain ``hash(key) % N`` placement remaps nearly every key whenever N
changes; the classic consistent-hashing construction (Karger et al.)
instead places each node at many pseudo-random points ("virtual nodes")
on a 2^32 ring and assigns a key to the first node point clockwise from
the key's own hash.  Adding or removing one node then remaps only the
arcs adjacent to that node's points -- roughly ``1/N`` of the keys --
which is what makes online join/leave (``repro.cluster.node``) cheap.

Hashing uses MD5 (of all things) purely as a cheap, *stable* mixer:
Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), and a
cluster whose placement changes across restarts would invalidate every
key on every deploy.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable

from repro.errors import ClusterError

#: Points per node on the ring.  More points -> smoother balance at
#: slightly higher add/remove cost; 64 keeps the max/mean key-share
#: skew under ~30% for small clusters, plenty for this tier.
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """A process-independent 32-bit hash of ``text``."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class HashRing:
    """The ring: node names at ``vnodes`` points each.

    Not thread-safe by itself; the router serialises membership changes
    and lookups racing them behind its own lock.
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes <= 0:
            raise ClusterError("a ring needs at least one virtual node per node")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        #: Sorted ring positions and the node owning each.
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ClusterError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for point in self._points_for(node):
            index = bisect.bisect(self._points, point)
            # Ties between distinct nodes' points are broken by insert
            # order; MD5 collisions on 32 bits are possible but harmless
            # (both orders are valid placements).
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ClusterError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _owner in keep]
        self._owners = [owner for _point, owner in keep]

    def _points_for(self, node: str) -> list[int]:
        return [stable_hash(f"{node}#{i}") for i in range(self.vnodes)]

    # -- placement ---------------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        return self.nodes_for(key, 1)[0]

    def nodes_for(self, key: str, n: int) -> list[str]:
        """The replica set for ``key``: the first ``n`` *distinct* nodes
        clockwise from the key's hash (successor placement).

        Element 0 is the primary (identical to :meth:`node_for`); the
        rest are the replicas in ring order.  With fewer than ``n``
        nodes on the ring every node is returned, so a caller asking
        for replication factor R degrades gracefully on tiny rings.
        Successor placement keeps the classic minimal-remapping
        property per *set member*: a join or leave only touches replica
        sets whose clockwise walk crosses the changed node's points.
        """
        if not self._points:
            raise ClusterError(
                "the ring is empty: no cache node is available for "
                f"key {key!r}"
            )
        if n <= 0:
            raise ClusterError("a replica set needs at least one node")
        start = bisect.bisect(self._points, stable_hash(key))
        total = len(self._points)
        want = min(n, len(self._nodes))
        replicas: list[str] = []
        for offset in range(total):
            owner = self._owners[(start + offset) % total]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == want:
                    break
        return replicas

    def spread(self, keys: Iterable[str]) -> Counter:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: Counter = Counter({node: 0 for node in self._nodes})
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
