"""The cluster front-end: a ``Cache``-shaped router over N shards.

:class:`ClusterRouter` implements the exact operation set the caching
aspects call on a single-node :class:`~repro.cache.api.Cache` --
``is_cacheable`` / ``check`` / ``insert`` / ``join_flight`` /
``wait_flight`` / ``finish_flight`` / ``process_write_request`` -- so
the woven application cannot tell whether it is talking to one cache or
a cluster.  Reads route by consistent hash to the owning node's cache
(reusing that node's single-flight machinery untouched); writes are
broadcast to *every* node through the sequence-numbered invalidation
bus, which is what extends PR-1's write-sequence staleness window
cluster-wide: a page computed on node A while a write lands via node B
is discarded at insert, exactly as intra-node overlapping flights are.

Flight pinning: a single-flight computation must ``insert`` and
``finish`` on the node where it was opened, even if ring membership
changes mid-flight.  The router therefore pins ``key -> node`` for the
duration of each flight; membership changes additionally poison flights
whose key is re-homed, so their inserts are discarded rather than
orphaned on a node that no longer owns the key.

**Replication** (``replication=R``): each key's entry is written
through to the first R distinct nodes clockwise on the ring
(:meth:`HashRing.nodes_for`); reads route to the first *live* member of
that set, so losing a node degrades the shard to its replicas instead
of cold-starting it.  Replica copies are independent ``PageEntry``
objects (one node's eviction must not doom another's wire buffer) with
their dependencies re-registered locally, so bus-driven invalidation
dooms every copy through the normal per-node protocol -- the
consistency argument is per copy, not per key (docs/replication.md).

**Membership** (:class:`~repro.cluster.membership.GossipMembership`):
join/leave/crash no longer quiesces the bus.  Planned changes migrate
entries under a sequence-number audit -- if any publish interleaved
with the move, the moved keys are conservatively invalidated (a miss,
never staleness).  Crashes are detected by gossip suspicion; a node the
router's view declares DEAD is evicted from the ring and its keys fail
over to their surviving replicas.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.cache.api import Cache
from repro.cache.entry import PageEntry, QueryInstance
from repro.cache.flight import Flight
from repro.cache.fragments import FragmentContainment
from repro.cache.invalidation import dedupe_writes
from repro.cache.stats import CacheStats
from repro.cluster.bus import BOUNDED, STRONG, BusMessage, InvalidationBus
from repro.cluster.membership import GossipMembership
from repro.cluster.node import JOINED, CacheNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import ClusterError
from repro.locks import NamedRLock
from repro.web.http import HttpRequest

CacheFactory = Callable[[], Cache]


class ClusterStats:
    """Cluster-wide view over per-node :class:`CacheStats`.

    Per-node counters stay the source of truth (each node's accounting
    must be exact on its own); this object sums them on read and adds a
    front-end ledger for events that belong to the router rather than
    any shard: write requests (processed once, broadcast everywhere)
    and coalesced serves (recorded by the aspect against the facade).
    """

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router
        #: Front-end events: write requests and coalesced serves.
        self.frontend = CacheStats()

    def _sum(self, attribute: str) -> int:
        total = getattr(self.frontend, attribute)
        for node in self._router.nodes():
            total += getattr(node.cache.stats, attribute)
        return total

    # -- aggregated counters (the CacheStats read interface) -------------------------

    lookups = property(lambda self: self._sum("lookups"))
    hits = property(lambda self: self._sum("hits"))
    semantic_hits = property(lambda self: self._sum("semantic_hits"))
    misses_cold = property(lambda self: self._sum("misses_cold"))
    misses_invalidation = property(
        lambda self: self._sum("misses_invalidation")
    )
    misses_capacity = property(lambda self: self._sum("misses_capacity"))
    misses_expired = property(lambda self: self._sum("misses_expired"))
    uncacheable = property(lambda self: self._sum("uncacheable"))
    inserts = property(lambda self: self._sum("inserts"))
    evictions = property(lambda self: self._sum("evictions"))
    invalidated_pages = property(lambda self: self._sum("invalidated_pages"))
    write_requests = property(lambda self: self._sum("write_requests"))
    pair_analyses = property(lambda self: self._sum("pair_analyses"))
    intersection_tests = property(lambda self: self._sum("intersection_tests"))
    templates_skipped_by_index = property(
        lambda self: self._sum("templates_skipped_by_index")
    )
    instances_skipped_by_index = property(
        lambda self: self._sum("instances_skipped_by_index")
    )
    templates_skipped_by_lineage = property(
        lambda self: self._sum("templates_skipped_by_lineage")
    )
    column_plans_built = property(
        lambda self: self._sum("column_plans_built")
    )
    extra_queries = property(lambda self: self._sum("extra_queries"))
    coalesced_hits = property(lambda self: self._sum("coalesced_hits"))
    stale_inserts = property(lambda self: self._sum("stale_inserts"))
    hole_skips = property(lambda self: self._sum("hole_skips"))
    admitted = property(lambda self: self._sum("admitted"))
    denied = property(lambda self: self._sum("denied"))
    shadow_denied = property(lambda self: self._sum("shadow_denied"))

    @property
    def misses(self) -> int:
        return (
            self.misses_cold
            + self.misses_invalidation
            + self.misses_capacity
            + self.misses_expired
        )

    @property
    def hit_rate(self) -> float:
        cacheable = self.hits + self.semantic_hits + self.misses
        if not cacheable:
            return 0.0
        return (self.hits + self.semantic_hits) / cacheable

    # -- recording (aspect-facing) ----------------------------------------------------

    def record_coalesced(self, uri: str) -> None:
        self.frontend.record_coalesced(uri)

    def record_write(self, uri: str) -> None:
        self.frontend.record_write(uri)

    def record_extra_query(self) -> None:
        # Pre-image capture happens in the aspect, before any shard is
        # involved: a front-end event like write requests.
        self.frontend.record_extra_query()

    def record_hole_skip(self) -> None:
        # The hole guard fires in the aspect before any shard insert.
        self.frontend.record_hole_skip()

    def snapshot(self) -> dict:
        """Cluster aggregate plus the per-node snapshots it sums."""
        nodes = [node.snapshot() for node in self._router.nodes()]
        aggregate = self.frontend.snapshot()
        aggregate.pop("by_type")
        for node_snapshot in nodes:
            stats = node_snapshot["stats"]
            for key, value in stats.items():
                if key in ("by_type", "hit_rate"):
                    continue
                if isinstance(value, dict):
                    # dict-valued counters (dooms_by_template, per-class
                    # byte totals): merge by sub-key, never +=.
                    bucket = aggregate.setdefault(key, {})
                    for sub_key, count in value.items():
                        bucket[sub_key] = bucket.get(sub_key, 0) + count
                    continue
                aggregate[key] += value
        cacheable = (
            aggregate["hits"] + aggregate["semantic_hits"] + aggregate["misses"]
        )
        aggregate["hit_rate"] = (
            (aggregate["hits"] + aggregate["semantic_hits"]) / cacheable
            if cacheable
            else 0.0
        )
        bus = self._router.bus
        return {
            "cluster": aggregate,
            "nodes": nodes,
            "bus": {
                "seq": bus.seq,
                "mode": bus.mode,
                "published": bus.stats.published,
                "delivered": bus.stats.delivered,
                "writes_deduped": bus.stats.writes_deduped,
                "pages_invalidated": bus.stats.pages_invalidated,
                "batches": bus.stats.batches,
                "enqueued": bus.stats.enqueued,
                "sheds": bus.stats.sheds,
                "max_staleness": bus.stats.max_staleness,
                "queue_depths": bus.queue_depths(),
                "delivery_lags": bus.delivery_lags(),
            },
            "membership": self._router.membership.snapshot(),
        }


class ClusterRouter:
    """Routes the cache facade operations across the ring."""

    def __init__(
        self,
        node_names: list[str],
        cache_factory: CacheFactory,
        vnodes: int = DEFAULT_VNODES,
        batched_bus: bool = False,
        replication: int = 1,
        bus_mode: str = STRONG,
        staleness_bound: float = 0.5,
        bus_queue_capacity: int = 512,
        bus_pump: bool = True,
        membership: GossipMembership | None = None,
    ) -> None:
        if not node_names:
            raise ClusterError("a cluster needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ClusterError("duplicate node names")
        if replication < 1:
            raise ClusterError("replication factor must be at least 1")
        self._cache_factory = cache_factory
        self._lock = NamedRLock("cluster-router")
        self.ring = HashRing(vnodes=vnodes)
        self._template = cache_factory()  # config donor, never serves
        self.semantics = self._template.semantics
        self.replication = replication
        self.bus = InvalidationBus(
            batched=batched_bus,
            mode=bus_mode,
            staleness_bound=staleness_bound,
            queue_capacity=bus_queue_capacity,
            clock=self._template.clock,
            pump=bus_pump,
        )
        # Bounded mode dooms at delivery, not publish: the router hears
        # about the casualties through this hook (outside the bus lock)
        # and runs the cross-shard containment closure then.
        self.bus.on_delivered = self._on_bus_delivered
        #: Cumulative keys doomed by asynchronous deliveries, drained by
        #: :meth:`take_async_doomed` (differential harness, oracles).
        self._async_doomed: set[str] = set()
        self.membership = membership or GossipMembership(
            clock=self._template.clock
        )
        self._nodes: dict[str, CacheNode] = {}
        #: Read-balancing cursor over replica sets (see :meth:`_owner`).
        self._read_rotation = 0
        #: key -> node pinned for the duration of an open flight.
        self._flight_nodes: dict[str, CacheNode] = {}
        #: window -> node pinned for a solo computation (by identity:
        #: several windows for one key may be open on one node at once).
        self._window_nodes: dict[Flight, CacheNode] = {}
        self.stats = ClusterStats(self)
        #: Cluster-wide containment: a page and the fragments it embeds
        #: usually hash to *different* nodes, so each node's local
        #: containment table cannot see the edge.  The router keeps the
        #: global view and routes closure invalidations to the owners.
        self.fragments = FragmentContainment()
        for name in node_names:
            self.add_node(name)

    # -- facade attributes the aspects read --------------------------------------------

    @property
    def coalesce(self) -> bool:
        return self._template.coalesce

    @property
    def invalidation_policy(self):
        return self._template.invalidation_policy

    @property
    def clock(self) -> Callable[[], float]:
        return self._template.clock

    @property
    def admission(self):
        """The admission policy (shared by reference across all nodes,
        like the semantics registry: admission is cluster-wide policy)."""
        return self._template.admission

    # -- membership --------------------------------------------------------------------

    def nodes(self) -> list[CacheNode]:
        with self._lock:
            return list(self._nodes.values())

    def node(self, name: str) -> CacheNode:
        with self._lock:
            try:
                return self._nodes[name]
            except KeyError:
                raise ClusterError(f"no node named {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        with self._lock:
            return sorted(self._nodes)

    def add_node(self, name: str, drain: bool = True) -> CacheNode:
        """Join ``name``: remap its key arc, move or drop the entries.

        With ``drain`` (default) pages whose key now hashes to the new
        node are *moved* there, dependencies intact; with ``drain=False``
        they are simply dropped (re-fetched on next miss).  Flights
        whose key is re-homed are poisoned either way: their insert no
        longer has a legitimate home.

        The move runs **without quiescing the bus** (writes keep
        flowing).  Correctness audit: the bus sequence number is
        snapshotted before the migration; if any publish interleaved, a
        moved entry may have been in transit (released from its old
        node, not yet inserted at its new one) when the invalidation
        pass ran, so every moved key is conservatively invalidated --
        an extra miss, never a stale page.
        """
        node = CacheNode(name, self._cache_factory())
        with self._lock:
            if name in self._nodes:
                raise ClusterError(f"node {name!r} already joined")
            # Drain queued deliveries first (bounded mode): a message
            # queued-but-undelivered at an old node would never reach
            # the new one (it subscribes after the message's seq).
            self.bus.flush()
            seq_before = self.bus.seq
            self.ring.add_node(name)
            self.membership.register(name)
            # Subscribe through a late-binding callable, not the bound
            # method: a bound method freezes the function at subscribe
            # time, which would bypass any advice woven onto
            # ``CacheNode.apply`` afterwards (delivery is a join point).
            node.rebase(
                self.bus.subscribe(
                    name, lambda message, _node=node: _node.apply(message)
                )
            )
            moved = 0
            moved_keys: list[str] = []
            for other in self._nodes.values():
                remapped = [
                    key
                    for key in other.cache.pages.keys()
                    if self.ring.node_for(key) == name
                ]
                for key in remapped:
                    entry = other.cache.pages.release(key)
                    if entry is None:
                        continue
                    if drain:
                        node.cache.pages.insert(entry)
                        moved += 1
                        moved_keys.append(key)
                poisoned = {
                    key
                    for key in other.cache.open_flight_keys()
                    if self.ring.node_for(key) == name
                }
                other.cache.poison_flights(poisoned)
            self._nodes[name] = node
            node.moved_in = moved
            if self.bus.seq != seq_before:
                for key in moved_keys:
                    node.cache.invalidate_key(key)
        return node

    def remove_node(self, name: str, drain: bool = True) -> CacheNode:
        """Leave ``name``: drain (or drop) its entries to the new owners.

        Open flights on the leaving node are poisoned but stay pinned to
        it, so their inserts land in the dead cache's staleness check
        (and are discarded) instead of polluting a live node.  Removing
        the last node empties the ring; subsequent routed operations
        raise :class:`ClusterError`.

        Like :meth:`add_node` the drain runs without bus quiescence,
        under the same sequence-number audit: an interleaved publish
        conservatively invalidates the moved keys at their destinations.
        """
        with self._lock:
            node = self.node(name)
            node.mark_draining()
            self.bus.flush()
            seq_before = self.bus.seq
            self.bus.unsubscribe(name)
            self.ring.remove_node(name)
            self.membership.forget(name)
            node.cache.poison_flights(set(node.cache.open_flight_keys()))
            moved: list[tuple[CacheNode, str]] = []
            for key in node.cache.pages.keys():
                entry = node.cache.pages.release(key)
                if entry is None or not drain or not len(self.ring):
                    continue
                target = self._nodes[self.ring.node_for(key)]
                target.cache.pages.insert(entry)
                moved.append((target, key))
            node.mark_left()
            del self._nodes[name]
            if self.bus.seq != seq_before:
                for target, key in moved:
                    target.cache.invalidate_key(key)
        return node

    def silence_node(self, name: str) -> CacheNode:
        """Simulate a crash of ``name``: it stops serving, beating and
        gossiping, but nothing is *announced* -- detection is the gossip
        protocol's job.  Reads fail over immediately (the router can see
        the node is unreachable: ``state != JOINED``); the ring slot and
        bus subscription linger until :meth:`tick` observes the
        router-view DEAD verdict and calls :meth:`evict_node`.
        """
        with self._lock:
            node = self.node(name)
            node.mark_left()
            self.membership.silence(name)
        return node

    def evict_node(self, name: str) -> CacheNode | None:
        """Drop a crashed node from ring, bus and routing -- no drain
        (its memory is gone; that is what the replicas are for).  Open
        flights pinned to it stay pinned: their inserts land in the dead
        cache and are discarded with it, exactly as for a leave."""
        with self._lock:
            node = self._nodes.pop(name, None)
            if node is None:
                return None
            node.mark_left()
            if name in self.bus.subscriber_names:
                self.bus.unsubscribe(name)
            if name in self.ring:
                self.ring.remove_node(name)
            self.membership.silence(name)
            node.cache.poison_flights(set(node.cache.open_flight_keys()))
            # Model the crash faithfully: the node's memory is gone.
            # This also closes a detection race -- a reader that
            # resolved this node as owner just before the eviction
            # would otherwise probe a cache that can no longer hear
            # the bus (unsubscribed above) and could serve an entry
            # missing a post-eviction write.  An empty store turns
            # that probe into a miss.
            node.cache.clear()
        return node

    def fail_node(self, name: str) -> CacheNode:
        """Crash ``name`` with immediate detection (tests, stress
        oracles): :meth:`silence_node` + :meth:`evict_node` in one step.
        Gossip-paced detection is the :meth:`silence_node` +
        :meth:`tick` pair."""
        node = self.silence_node(name)
        self.evict_node(name)
        return node

    def tick(self, now: float | None = None) -> list:
        """One membership round: heartbeat every serving node, run a
        gossip step, and act on *this router's* DEAD verdicts by
        evicting the peer from routing.  Returns the step's transitions
        (all observers) for tests and observability."""
        with self._lock:
            serving = [
                node.name
                for node in self._nodes.values()
                if node.state == JOINED
            ]
        for name in serving:
            self.membership.beat(name)
        transitions = self.membership.step(now)
        from repro.cluster.membership import DEAD, ROUTER

        for transition in transitions:
            if transition.observer == ROUTER and transition.state == DEAD:
                self.evict_node(transition.peer)
        return transitions

    def _owner(self, key: str) -> CacheNode:
        with self._lock:
            for node in self._replica_nodes(key):
                return node
            # Every replica is unreachable: walk the rest of the ring
            # (detection may simply not have caught up; any consistent
            # stand-in preserves safety -- the bus reaches it too).
            for name in self.ring.nodes_for(key, len(self._nodes)):
                node = self._nodes.get(name)
                if node is not None and node.state == JOINED:
                    return node
            raise ClusterError(
                f"no live cache node is reachable for key {key!r}"
            )

    def _replica_nodes(self, key: str) -> list[CacheNode]:
        """The live members of ``key``'s replica set, primary first.

        Caller holds the router lock.  Failover is positional: if the
        primary is down, its first surviving successor serves the key
        (and receives its inserts), so a crash degrades a shard to its
        replicas instead of cold-starting it.
        """
        live: list[CacheNode] = []
        for name in self.ring.nodes_for(key, self.replication):
            node = self._nodes.get(name)
            if (
                node is not None
                and node.state == JOINED
                and self.membership.is_alive(name)
            ):
                live.append(node)
        return live

    def _read_target(self, key: str) -> CacheNode:
        """The node a *read probe* routes to.

        Replication doubles as read load-balancing: every live replica
        holds the entry (write-through), hears the bus, and passes the
        same staleness checks, so a hot key's reads rotate over its
        whole replica set instead of pinning one node at R times the
        mean load.  Only the probe rotates -- flights, inserts and
        windows keep their deterministic home (:meth:`_owner`, the
        first live replica), so one request's miss path never straddles
        replicas and concurrent misses still coalesce on one node.
        """
        with self._lock:
            live = self._replica_nodes(key)
            if len(live) > 1:
                self._read_rotation += 1
                return live[self._read_rotation % len(live)]
        return self._owner(key)

    def owner_name(self, key: str) -> str:
        """Which node a key's next read routes to (diagnostics, sim,
        tests).  With replication this rotates like the read path
        itself, so virtual-time load charging matches real placement."""
        with self._lock:
            return self._read_target(key).name

    def replica_names(self, key: str) -> list[str]:
        """The live replica set for ``key``, read target first."""
        with self._lock:
            return [node.name for node in self._replica_nodes(key)]

    def sync_catalog(self, database) -> None:
        """Mirror the schema catalog into every node's analysis engine.

        Nodes analyse invalidation independently, so all of them must
        share the same schema knowledge or two replicas could disagree
        on a column-disjointness proof.
        """
        with self._lock:
            nodes = list(self._nodes.values())
        for node in nodes:
            node.cache.sync_catalog(database)

    # -- read path ---------------------------------------------------------------------

    def is_cacheable(self, request: HttpRequest) -> bool:
        return self.semantics.is_cacheable(request)

    def check(self, request: HttpRequest) -> PageEntry | None:
        return self._read_target(request.cache_key()).cache.check(request)

    def check_key(self, key: str, stat_uri: str) -> PageEntry | None:
        """Fragment-capable check: route by key to a holding shard."""
        return self._read_target(key).cache.check_key(key, stat_uri)

    def fast_check(self, request: HttpRequest) -> PageEntry | None:
        """Event-loop fast-path probe, routed to the owning shard.

        Same contract as :meth:`Cache.fast_check`: hit-or-nothing, a
        miss records no statistics and leaves the shard's miss taxonomy
        intact for the woven check that follows.
        """
        return self._read_target(request.cache_key()).cache.fast_check(request)

    def insert(
        self,
        request: HttpRequest,
        body: str,
        reads: list[QueryInstance],
        status: int = 200,
        window: Flight | None = None,
        fragments: tuple[str, ...] = (),
        guard_reads: tuple[QueryInstance, ...] = (),
    ) -> PageEntry:
        entry, _stored = self.insert_key(
            request.cache_key(),
            body,
            reads,
            status=status,
            window=window,
            ttl_uri=request.uri,
            fragments=fragments,
            guard_reads=guard_reads,
        )
        return entry

    def insert_key(
        self,
        key: str,
        body: str,
        reads: list[QueryInstance],
        status: int = 200,
        window: Flight | None = None,
        ttl_uri: str | None = None,
        fragments: tuple[str, ...] = (),
        guard_reads: tuple[QueryInstance, ...] = (),
    ) -> tuple[PageEntry, bool]:
        """Key-level insert, pinned to the computing node like inserts.

        Containment edges are recorded in the *router's* table: the
        entry and its fragments typically live on different shards.

        With ``replication > 1`` a stored entry is written through to
        the other live members of the key's replica set, then the
        write-through is *audited*: the primary is re-checked after a
        strong-mode lock barrier (joining any in-flight delivery pass)
        or a bounded-mode applied-seq watermark comparison -- if an
        invalidation doomed the primary entry, or reached a secondary
        ahead of its copy, the copies are doomed too.  See
        docs/replication.md for the full interleaving argument.
        """
        with self._lock:
            node = (
                (self._window_nodes.get(window) if window is not None else None)
                or self._flight_nodes.get(key)
                or self._owner(key)
            )
        entry, stored = node.cache.insert_key(
            key,
            body,
            reads,
            status=status,
            window=window,
            ttl_uri=ttl_uri,
            fragments=fragments,
            guard_reads=guard_reads,
        )
        if stored:
            self.fragments.register(key, fragments)
            if self.replication > 1:
                self._replicate(key, entry, node)
        return entry, stored

    def _replicate(
        self, key: str, entry: PageEntry, primary: CacheNode
    ) -> None:
        """Write ``entry`` through to the rest of the replica set."""
        with self._lock:
            secondaries = [
                replica
                for replica in self._replica_nodes(key)
                if replica is not primary
            ]
        if not secondaries:
            return
        # The hazard: a bus message applied at a secondary *before* its
        # copy landed (but after the primary stored) would miss the
        # copy forever.  Bounded mode audits with watermarks -- if the
        # secondary's applied seq has passed the primary's, the copy
        # may have escaped one of those deliveries, so it is doomed
        # conservatively (an extra miss, never staleness).  A global
        # bus.flush() here would also be sound but collapses bounded
        # staleness into strong delivery: write-throughs happen at the
        # cluster miss rate, so every queued invalidation would drain
        # almost immediately and hot pages would be re-doomed at the
        # full cluster-wide write rate.
        primary_applied = (
            self.bus.applied_seq(primary.name)
            if self.bus.mode == BOUNDED
            else None
        )
        for replica in secondaries:
            replica.copy_in(entry)
            if primary_applied is not None and (
                self.bus.applied_seq(replica.name) > primary_applied
            ):
                replica.cache.invalidate_key(entry.key)
        if self.bus.mode != BOUNDED:
            # Strong mode: the flush is a pure lock barrier (nothing is
            # queued) that joins any in-flight delivery pass, so every
            # message sequenced before it is applied at the primary by
            # the time the re-check below runs.
            self.bus.flush()
        if entry.key not in primary.cache.pages:
            for replica in secondaries:
                replica.cache.invalidate_key(entry.key)

    def record_uncacheable(self, request: HttpRequest) -> None:
        self._owner(request.cache_key()).cache.record_uncacheable(request)

    # -- single-flight (per owning node) ----------------------------------------------

    def join_flight(self, key: str) -> tuple[Flight, bool]:
        with self._lock:
            node = self._flight_nodes.get(key) or self._owner(key)
            flight, is_leader = node.cache.join_flight(key)
            if is_leader:
                self._flight_nodes[key] = node
            return flight, is_leader

    def wait_flight(self, flight: Flight) -> PageEntry | None:
        with self._lock:
            node = self._flight_nodes.get(flight.key) or self._owner(flight.key)
        # Block outside the router lock: waiting must not stall routing.
        return node.cache.wait_flight(flight)

    def finish_flight(self, flight: Flight) -> None:
        with self._lock:
            node = self._flight_nodes.pop(flight.key, None) or self._owner(
                flight.key
            )
        node.cache.finish_flight(flight)

    def begin_window(self, key: str) -> Flight:
        """Open a solo-computation staleness window on the owning node.

        Pinned like a flight: the eventual ``insert`` and
        ``end_window`` must land on the node whose write buffer the
        window is registered with, even if ring membership changes
        mid-computation (re-homing poisons the window instead).
        """
        with self._lock:
            node = self._flight_nodes.get(key) or self._owner(key)
            window = node.cache.begin_window(key)
            self._window_nodes[window] = node
            return window

    def end_window(self, window: Flight) -> None:
        with self._lock:
            node = self._window_nodes.pop(window, None)
        if node is not None:
            node.cache.end_window(window)

    @property
    def open_flights(self) -> int:
        return sum(node.cache.open_flights for node in self.nodes())

    # -- write path --------------------------------------------------------------------

    def process_write_request(
        self, uri: str, writes: list[QueryInstance]
    ) -> set[str]:
        """Broadcast one write's invalidation information cluster-wide.

        Returns the **union** of page keys invalidated across all
        nodes -- a page for the same logical query can only live on its
        owning node, but callers (and the consistency argument) care
        about every casualty, not just the local shard's.

        In bounded bus mode the returned set is empty by construction:
        publishes return after durable enqueue, and the casualties are
        observed at delivery (:meth:`take_async_doomed` drains the
        ledger after a :meth:`InvalidationBus.flush`).
        """
        self.stats.record_write(uri)
        if not writes:
            return set()
        if not len(self.ring):
            raise ClusterError("cannot process a write on an empty cluster")
        # Dedupe once at the front-end: every node would otherwise
        # re-analyse each duplicate while the bus publish lock is held,
        # multiplying the redundant work by node count.
        _message, doomed = self.bus.publish("router", uri, dedupe_writes(writes))
        return self._doom_containers(doomed)

    def _on_bus_delivered(self, message: BusMessage, doomed: set) -> None:
        """Bounded-mode delivery observer (runs outside the bus lock).

        Closes the cross-shard containment edges over the keys this
        delivery doomed and records everything in the asynchronous
        doomed-key ledger.  Closure distributes over set union, so
        per-delivery calls compute the same closure a strong-mode
        publish computes over the whole union.
        """
        if not doomed:
            return
        closed = self._doom_containers(set(doomed))
        with self._lock:
            self._async_doomed |= closed

    def take_async_doomed(self) -> set[str]:
        """Drain the ledger of keys doomed by asynchronous deliveries.

        Meaningful after quiescing/flushing the bus: the differential
        harness and the staleness oracles compare doomed sets only at
        points where delivery has provably caught up.
        """
        with self._lock:
            doomed = self._async_doomed
            self._async_doomed = set()
            return doomed

    def _doom_containers(self, doomed: set[str]) -> set[str]:
        """Cross-node containment closure over freshly doomed keys.

        Each node already closed over its *local* containment edges; the
        router's table adds the cross-shard edges (page on node A built
        from a fragment on node B).  Routed through every live replica's
        ``invalidate_key`` so each copy of the container is doomed and
        its open flights are marked stale exactly as for a direct
        invalidation.
        """
        extra = self.fragments.containing(doomed)
        for key in extra:
            for node in self._all_holders(key):
                node.cache.invalidate_key(key)
        return doomed | extra

    def _all_holders(self, key: str) -> list[CacheNode]:
        """Every node that may hold a copy of ``key`` (replica set plus
        the failover stand-in reads route to when the set is empty)."""
        with self._lock:
            holders = self._replica_nodes(key)
            if not holders:
                try:
                    holders = [self._owner(key)]
                except ClusterError:
                    holders = []
            return holders

    def invalidate_key(self, key: str) -> bool:
        """External single-key invalidation, routed to every replica."""
        removed = False
        for node in self._all_holders(key):
            removed = node.cache.invalidate_key(key) or removed
        self._doom_containers({key})
        return removed

    # -- management --------------------------------------------------------------------

    def clear(self) -> None:
        for node in self.nodes():
            node.cache.clear()

    def close(self) -> None:
        """Stop the bus pump and deliver any queued residue."""
        self.bus.close()

    def __len__(self) -> int:
        return sum(len(node.cache) for node in self.nodes())

    def snapshot(self) -> dict:
        return self.stats.snapshot()


def make_cache_factory(**cache_kwargs) -> CacheFactory:
    """A factory of identically configured per-node caches.

    The semantics registry (if given) is shared by reference: TTL
    windows and cacheability rules are cluster-wide policy, not
    per-shard state.
    """
    cache_kwargs.setdefault("clock", time.time)
    return lambda: Cache(**cache_kwargs)
