"""The cluster front-end: a ``Cache``-shaped router over N shards.

:class:`ClusterRouter` implements the exact operation set the caching
aspects call on a single-node :class:`~repro.cache.api.Cache` --
``is_cacheable`` / ``check`` / ``insert`` / ``join_flight`` /
``wait_flight`` / ``finish_flight`` / ``process_write_request`` -- so
the woven application cannot tell whether it is talking to one cache or
a cluster.  Reads route by consistent hash to the owning node's cache
(reusing that node's single-flight machinery untouched); writes are
broadcast to *every* node through the sequence-numbered invalidation
bus, which is what extends PR-1's write-sequence staleness window
cluster-wide: a page computed on node A while a write lands via node B
is discarded at insert, exactly as intra-node overlapping flights are.

Flight pinning: a single-flight computation must ``insert`` and
``finish`` on the node where it was opened, even if ring membership
changes mid-flight.  The router therefore pins ``key -> node`` for the
duration of each flight; membership changes additionally poison flights
whose key is re-homed, so their inserts are discarded rather than
orphaned on a node that no longer owns the key.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.cache.api import Cache
from repro.cache.entry import PageEntry, QueryInstance
from repro.cache.flight import Flight
from repro.cache.fragments import FragmentContainment
from repro.cache.invalidation import dedupe_writes
from repro.cache.stats import CacheStats
from repro.cluster.bus import InvalidationBus
from repro.cluster.node import CacheNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import ClusterError
from repro.locks import NamedRLock
from repro.web.http import HttpRequest

CacheFactory = Callable[[], Cache]


class ClusterStats:
    """Cluster-wide view over per-node :class:`CacheStats`.

    Per-node counters stay the source of truth (each node's accounting
    must be exact on its own); this object sums them on read and adds a
    front-end ledger for events that belong to the router rather than
    any shard: write requests (processed once, broadcast everywhere)
    and coalesced serves (recorded by the aspect against the facade).
    """

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router
        #: Front-end events: write requests and coalesced serves.
        self.frontend = CacheStats()

    def _sum(self, attribute: str) -> int:
        total = getattr(self.frontend, attribute)
        for node in self._router.nodes():
            total += getattr(node.cache.stats, attribute)
        return total

    # -- aggregated counters (the CacheStats read interface) -------------------------

    lookups = property(lambda self: self._sum("lookups"))
    hits = property(lambda self: self._sum("hits"))
    semantic_hits = property(lambda self: self._sum("semantic_hits"))
    misses_cold = property(lambda self: self._sum("misses_cold"))
    misses_invalidation = property(
        lambda self: self._sum("misses_invalidation")
    )
    misses_capacity = property(lambda self: self._sum("misses_capacity"))
    misses_expired = property(lambda self: self._sum("misses_expired"))
    uncacheable = property(lambda self: self._sum("uncacheable"))
    inserts = property(lambda self: self._sum("inserts"))
    evictions = property(lambda self: self._sum("evictions"))
    invalidated_pages = property(lambda self: self._sum("invalidated_pages"))
    write_requests = property(lambda self: self._sum("write_requests"))
    pair_analyses = property(lambda self: self._sum("pair_analyses"))
    intersection_tests = property(lambda self: self._sum("intersection_tests"))
    templates_skipped_by_index = property(
        lambda self: self._sum("templates_skipped_by_index")
    )
    instances_skipped_by_index = property(
        lambda self: self._sum("instances_skipped_by_index")
    )
    extra_queries = property(lambda self: self._sum("extra_queries"))
    coalesced_hits = property(lambda self: self._sum("coalesced_hits"))
    stale_inserts = property(lambda self: self._sum("stale_inserts"))
    hole_skips = property(lambda self: self._sum("hole_skips"))
    admitted = property(lambda self: self._sum("admitted"))
    denied = property(lambda self: self._sum("denied"))
    shadow_denied = property(lambda self: self._sum("shadow_denied"))

    @property
    def misses(self) -> int:
        return (
            self.misses_cold
            + self.misses_invalidation
            + self.misses_capacity
            + self.misses_expired
        )

    @property
    def hit_rate(self) -> float:
        cacheable = self.hits + self.semantic_hits + self.misses
        if not cacheable:
            return 0.0
        return (self.hits + self.semantic_hits) / cacheable

    # -- recording (aspect-facing) ----------------------------------------------------

    def record_coalesced(self, uri: str) -> None:
        self.frontend.record_coalesced(uri)

    def record_write(self, uri: str) -> None:
        self.frontend.record_write(uri)

    def record_extra_query(self) -> None:
        # Pre-image capture happens in the aspect, before any shard is
        # involved: a front-end event like write requests.
        self.frontend.record_extra_query()

    def record_hole_skip(self) -> None:
        # The hole guard fires in the aspect before any shard insert.
        self.frontend.record_hole_skip()

    def snapshot(self) -> dict:
        """Cluster aggregate plus the per-node snapshots it sums."""
        nodes = [node.snapshot() for node in self._router.nodes()]
        aggregate = self.frontend.snapshot()
        aggregate.pop("by_type")
        for node_snapshot in nodes:
            stats = node_snapshot["stats"]
            for key, value in stats.items():
                if key in ("by_type", "hit_rate"):
                    continue
                if isinstance(value, dict):
                    # dict-valued counters (dooms_by_template, per-class
                    # byte totals): merge by sub-key, never +=.
                    bucket = aggregate.setdefault(key, {})
                    for sub_key, count in value.items():
                        bucket[sub_key] = bucket.get(sub_key, 0) + count
                    continue
                aggregate[key] += value
        cacheable = (
            aggregate["hits"] + aggregate["semantic_hits"] + aggregate["misses"]
        )
        aggregate["hit_rate"] = (
            (aggregate["hits"] + aggregate["semantic_hits"]) / cacheable
            if cacheable
            else 0.0
        )
        return {
            "cluster": aggregate,
            "nodes": nodes,
            "bus": {
                "seq": self._router.bus.seq,
                "published": self._router.bus.stats.published,
                "delivered": self._router.bus.stats.delivered,
                "writes_deduped": self._router.bus.stats.writes_deduped,
                "pages_invalidated": self._router.bus.stats.pages_invalidated,
                "batches": self._router.bus.stats.batches,
            },
        }


class ClusterRouter:
    """Routes the cache facade operations across the ring."""

    def __init__(
        self,
        node_names: list[str],
        cache_factory: CacheFactory,
        vnodes: int = DEFAULT_VNODES,
        batched_bus: bool = False,
    ) -> None:
        if not node_names:
            raise ClusterError("a cluster needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ClusterError("duplicate node names")
        self._cache_factory = cache_factory
        self._lock = NamedRLock("cluster-router")
        self.ring = HashRing(vnodes=vnodes)
        self.bus = InvalidationBus(batched=batched_bus)
        self._nodes: dict[str, CacheNode] = {}
        #: key -> node pinned for the duration of an open flight.
        self._flight_nodes: dict[str, CacheNode] = {}
        #: window -> node pinned for a solo computation (by identity:
        #: several windows for one key may be open on one node at once).
        self._window_nodes: dict[Flight, CacheNode] = {}
        self.stats = ClusterStats(self)
        self._template = cache_factory()  # config donor, never serves
        self.semantics = self._template.semantics
        #: Cluster-wide containment: a page and the fragments it embeds
        #: usually hash to *different* nodes, so each node's local
        #: containment table cannot see the edge.  The router keeps the
        #: global view and routes closure invalidations to the owners.
        self.fragments = FragmentContainment()
        for name in node_names:
            self.add_node(name)

    # -- facade attributes the aspects read --------------------------------------------

    @property
    def coalesce(self) -> bool:
        return self._template.coalesce

    @property
    def invalidation_policy(self):
        return self._template.invalidation_policy

    @property
    def clock(self) -> Callable[[], float]:
        return self._template.clock

    @property
    def admission(self):
        """The admission policy (shared by reference across all nodes,
        like the semantics registry: admission is cluster-wide policy)."""
        return self._template.admission

    # -- membership --------------------------------------------------------------------

    def nodes(self) -> list[CacheNode]:
        with self._lock:
            return list(self._nodes.values())

    def node(self, name: str) -> CacheNode:
        with self._lock:
            try:
                return self._nodes[name]
            except KeyError:
                raise ClusterError(f"no node named {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        with self._lock:
            return sorted(self._nodes)

    def add_node(self, name: str, drain: bool = True) -> CacheNode:
        """Join ``name``: remap its key arc, move or drop the entries.

        With ``drain`` (default) pages whose key now hashes to the new
        node are *moved* there, dependencies intact; with ``drain=False``
        they are simply dropped (re-fetched on next miss).  Flights
        whose key is re-homed are poisoned either way: their insert no
        longer has a legitimate home.
        """
        node = CacheNode(name, self._cache_factory())
        with self._lock, self.bus.quiesced():
            if name in self._nodes:
                raise ClusterError(f"node {name!r} already joined")
            self.ring.add_node(name)
            # Subscribe through a late-binding callable, not the bound
            # method: a bound method freezes the function at subscribe
            # time, which would bypass any advice woven onto
            # ``CacheNode.apply`` afterwards (delivery is a join point).
            node.rebase(
                self.bus.subscribe(
                    name, lambda message, _node=node: _node.apply(message)
                )
            )
            moved = 0
            for other in self._nodes.values():
                remapped = [
                    key
                    for key in other.cache.pages.keys()
                    if self.ring.node_for(key) == name
                ]
                for key in remapped:
                    entry = other.cache.pages.release(key)
                    if entry is None:
                        continue
                    if drain:
                        node.cache.pages.insert(entry)
                        moved += 1
                poisoned = {
                    key
                    for key in other.cache.open_flight_keys()
                    if self.ring.node_for(key) == name
                }
                other.cache.poison_flights(poisoned)
            self._nodes[name] = node
            node.moved_in = moved
        return node

    def remove_node(self, name: str, drain: bool = True) -> CacheNode:
        """Leave ``name``: drain (or drop) its entries to the new owners.

        Open flights on the leaving node are poisoned but stay pinned to
        it, so their inserts land in the dead cache's staleness check
        (and are discarded) instead of polluting a live node.  Removing
        the last node empties the ring; subsequent routed operations
        raise :class:`ClusterError`.
        """
        with self._lock, self.bus.quiesced():
            node = self.node(name)
            node.mark_draining()
            self.bus.unsubscribe(name)
            self.ring.remove_node(name)
            node.cache.poison_flights(set(node.cache.open_flight_keys()))
            for key in node.cache.pages.keys():
                entry = node.cache.pages.release(key)
                if entry is None or not drain or not len(self.ring):
                    continue
                self._nodes[self.ring.node_for(key)].cache.pages.insert(entry)
            node.mark_left()
            del self._nodes[name]
        return node

    def _owner(self, key: str) -> CacheNode:
        with self._lock:
            return self._nodes[self.ring.node_for(key)]

    def owner_name(self, key: str) -> str:
        """Which node a key routes to (diagnostics, sim, tests)."""
        with self._lock:
            return self.ring.node_for(key)

    # -- read path ---------------------------------------------------------------------

    def is_cacheable(self, request: HttpRequest) -> bool:
        return self.semantics.is_cacheable(request)

    def check(self, request: HttpRequest) -> PageEntry | None:
        return self._owner(request.cache_key()).cache.check(request)

    def check_key(self, key: str, stat_uri: str) -> PageEntry | None:
        """Fragment-capable check: route by key to the owning shard."""
        return self._owner(key).cache.check_key(key, stat_uri)

    def fast_check(self, request: HttpRequest) -> PageEntry | None:
        """Event-loop fast-path probe, routed to the owning shard.

        Same contract as :meth:`Cache.fast_check`: hit-or-nothing, a
        miss records no statistics and leaves the shard's miss taxonomy
        intact for the woven check that follows.
        """
        return self._owner(request.cache_key()).cache.fast_check(request)

    def insert(
        self,
        request: HttpRequest,
        body: str,
        reads: list[QueryInstance],
        status: int = 200,
        window: Flight | None = None,
        fragments: tuple[str, ...] = (),
        guard_reads: tuple[QueryInstance, ...] = (),
    ) -> PageEntry:
        entry, _stored = self.insert_key(
            request.cache_key(),
            body,
            reads,
            status=status,
            window=window,
            ttl_uri=request.uri,
            fragments=fragments,
            guard_reads=guard_reads,
        )
        return entry

    def insert_key(
        self,
        key: str,
        body: str,
        reads: list[QueryInstance],
        status: int = 200,
        window: Flight | None = None,
        ttl_uri: str | None = None,
        fragments: tuple[str, ...] = (),
        guard_reads: tuple[QueryInstance, ...] = (),
    ) -> tuple[PageEntry, bool]:
        """Key-level insert, pinned to the computing node like inserts.

        Containment edges are recorded in the *router's* table: the
        entry and its fragments typically live on different shards.
        """
        with self._lock:
            node = (
                (self._window_nodes.get(window) if window is not None else None)
                or self._flight_nodes.get(key)
                or self._owner(key)
            )
        entry, stored = node.cache.insert_key(
            key,
            body,
            reads,
            status=status,
            window=window,
            ttl_uri=ttl_uri,
            fragments=fragments,
            guard_reads=guard_reads,
        )
        if stored:
            self.fragments.register(key, fragments)
        return entry, stored

    def record_uncacheable(self, request: HttpRequest) -> None:
        self._owner(request.cache_key()).cache.record_uncacheable(request)

    # -- single-flight (per owning node) ----------------------------------------------

    def join_flight(self, key: str) -> tuple[Flight, bool]:
        with self._lock:
            node = self._flight_nodes.get(key) or self._owner(key)
            flight, is_leader = node.cache.join_flight(key)
            if is_leader:
                self._flight_nodes[key] = node
            return flight, is_leader

    def wait_flight(self, flight: Flight) -> PageEntry | None:
        with self._lock:
            node = self._flight_nodes.get(flight.key) or self._owner(flight.key)
        # Block outside the router lock: waiting must not stall routing.
        return node.cache.wait_flight(flight)

    def finish_flight(self, flight: Flight) -> None:
        with self._lock:
            node = self._flight_nodes.pop(flight.key, None) or self._owner(
                flight.key
            )
        node.cache.finish_flight(flight)

    def begin_window(self, key: str) -> Flight:
        """Open a solo-computation staleness window on the owning node.

        Pinned like a flight: the eventual ``insert`` and
        ``end_window`` must land on the node whose write buffer the
        window is registered with, even if ring membership changes
        mid-computation (re-homing poisons the window instead).
        """
        with self._lock:
            node = self._flight_nodes.get(key) or self._owner(key)
            window = node.cache.begin_window(key)
            self._window_nodes[window] = node
            return window

    def end_window(self, window: Flight) -> None:
        with self._lock:
            node = self._window_nodes.pop(window, None)
        if node is not None:
            node.cache.end_window(window)

    @property
    def open_flights(self) -> int:
        return sum(node.cache.open_flights for node in self.nodes())

    # -- write path --------------------------------------------------------------------

    def process_write_request(
        self, uri: str, writes: list[QueryInstance]
    ) -> set[str]:
        """Broadcast one write's invalidation information cluster-wide.

        Returns the **union** of page keys invalidated across all
        nodes -- a page for the same logical query can only live on its
        owning node, but callers (and the consistency argument) care
        about every casualty, not just the local shard's.
        """
        self.stats.record_write(uri)
        if not writes:
            return set()
        if not len(self.ring):
            raise ClusterError("cannot process a write on an empty cluster")
        # Dedupe once at the front-end: every node would otherwise
        # re-analyse each duplicate while the bus publish lock is held,
        # multiplying the redundant work by node count.
        _message, doomed = self.bus.publish("router", uri, dedupe_writes(writes))
        return self._doom_containers(doomed)

    def _doom_containers(self, doomed: set[str]) -> set[str]:
        """Cross-node containment closure over freshly doomed keys.

        Each node already closed over its *local* containment edges; the
        router's table adds the cross-shard edges (page on node A built
        from a fragment on node B).  Routed through the owner's
        ``invalidate_key`` so the container's open flights are marked
        stale exactly as for a direct invalidation.
        """
        extra = self.fragments.containing(doomed)
        for key in extra:
            self._owner(key).cache.invalidate_key(key)
        return doomed | extra

    def invalidate_key(self, key: str) -> bool:
        """External single-key invalidation, routed to the owner."""
        removed = self._owner(key).cache.invalidate_key(key)
        self._doom_containers({key})
        return removed

    # -- management --------------------------------------------------------------------

    def clear(self) -> None:
        for node in self.nodes():
            node.cache.clear()

    def __len__(self) -> int:
        return sum(len(node.cache) for node in self.nodes())

    def snapshot(self) -> dict:
        return self.stats.snapshot()


def make_cache_factory(**cache_kwargs) -> CacheFactory:
    """A factory of identically configured per-node caches.

    The semantics registry (if given) is shared by reference: TTL
    windows and cacheability rules are cluster-wide policy, not
    per-shard state.
    """
    cache_kwargs.setdefault("clock", time.time)
    return lambda: Cache(**cache_kwargs)
