"""Join points: identifiable execution points advice can attach to."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Signature:
    """Static description of a join point: defining class and method."""

    class_name: str
    method_name: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.method_name}"


class JoinPoint:
    """A single method execution.

    Around advice receives the join point and drives the underlying
    computation with :meth:`proceed`; ``args``/``kwargs`` may be replaced
    before proceeding.  ``result`` and ``exception`` are populated for
    after-advice.
    """

    def __init__(
        self,
        signature: Signature,
        target: object,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        invoke: Callable[..., Any],
    ) -> None:
        self.signature = signature
        self.target = target
        self.args = args
        self.kwargs = kwargs
        self._invoke = invoke
        self.result: Any = None
        self.exception: BaseException | None = None
        self.proceeded = False

    def proceed(self) -> Any:
        """Run the next advice in the chain (or the original method).

        Around advice may call this zero times (bypassing the method
        entirely -- how the cache-hit path works), once (the normal
        case), or multiple times.
        """
        self.proceeded = True
        return self._invoke(self.target, *self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JoinPoint({self.signature})"
